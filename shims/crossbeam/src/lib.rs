//! Vendored shim for the subset of
//! [crossbeam](https://crates.io/crates/crossbeam) this workspace uses:
//! `crossbeam::channel::unbounded` with cloneable senders. Backed by
//! `std::sync::mpsc`.

/// Multi-producer channels (`crossbeam::channel` subset).
pub mod channel {
    /// Error returned when the receiving side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; fails when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive of any already-queued message.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn fan_in_from_clones() {
            let (tx, rx) = super::unbounded();
            let handles: Vec<_> = (0..4u32)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
