//! Vendored shim for the subset of [rand](https://crates.io/crates/rand) this
//! workspace uses: `StdRng::seed_from_u64` plus `random_range` over `usize`,
//! `u64` and `f64` ranges. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, which is all the matrix generators and
//! the fault injector require.

use std::ops::Range;

/// Deterministic pseudo-random generators.
pub mod rngs {
    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as the xoshiro authors suggest.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Stand-in for `rand::SeedableRng` (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)`.
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for usize {
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
        let span = (hi - lo) as u64;
        lo + (rng.next_u64() % span) as usize
    }
}

impl SampleUniform for u64 {
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
        lo + rng.next_u64() % (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Stand-in for the `rand::RngExt` extension trait (only `random_range`).
pub trait RngExt {
    /// Draws a value uniformly from the half-open `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
}

impl RngExt for rngs::StdRng {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "random_range: empty range");
        T::sample_range(self, range.start, range.end)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100)
            .any(|_| a.random_range(0usize..1_000_000) != c.random_range(0usize..1_000_000));
        assert!(differs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
