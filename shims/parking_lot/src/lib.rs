//! Vendored shim for the subset of
//! [parking_lot](https://crates.io/crates/parking_lot) this workspace uses:
//! `Mutex`, `RwLock` and `Condvar` with the parking_lot calling convention
//! (guards returned directly, no poison `Result`s, `Condvar::wait` taking
//! `&mut MutexGuard`). Backed by the std primitives; a poisoned std lock
//! (possible only if a panic escaped while holding it) is propagated as a
//! panic here too.

use std::ops::{Deref, DerefMut};

/// Mutex with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily hand the std guard back to
    // the std condvar; it is always `Some` outside that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().expect("parking_lot shim: mutex poisoned")),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .expect("parking_lot shim: mutex poisoned");
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .expect("parking_lot shim: rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .expect("parking_lot shim: rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        assert!(*ready);
        drop(ready);
        handle.join().unwrap();
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let lock = RwLock::new(5usize);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 10);
        }
        *lock.write() = 7;
        assert_eq!(*lock.read(), 7);
    }
}
