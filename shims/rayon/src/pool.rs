//! The work-stealing thread pool behind the shim's parallel iterators.
//!
//! Layout: one OS worker thread per configured slot, each with its own FIFO
//! job queue. Callers push batches of chunk jobs round-robin across the
//! queues (a deterministic initial assignment); an idle worker first drains
//! its own queue and then steals from the others, so load imbalance is
//! absorbed without any caller-side rebalancing. Workers park on a condvar
//! when every queue is empty.
//!
//! Blocking rules (the part that makes nested parallelism deadlock-free):
//! a caller that is itself a pool worker *helps* — it keeps executing queued
//! jobs while it waits for its batch latch — whereas an external caller
//! parks on the latch and lets the workers do all the work. `join` runs its
//! first closure on the calling thread and ships the second to the pool, so
//! the two genuinely overlap even with a single worker.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased unit of work. Lifetimes are erased by [`PoolInner::run_scoped`],
/// which guarantees completion before the borrowed frame unwinds.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fallback park timeout: a belt-and-braces bound on wake-up latency should a
/// notification ever race with a queue push.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// Shared state of one pool.
pub(crate) struct PoolInner {
    /// One FIFO queue per worker; batch jobs are dealt round-robin.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet taken (fast idle check without locking queues).
    pending: AtomicUsize,
    /// Round-robin cursor for external submissions.
    next_queue: AtomicUsize,
    /// Per-worker count of executed jobs (observability for tests/benches).
    executed: Vec<AtomicUsize>,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    shutdown: AtomicBool,
}

thread_local! {
    /// Innermost (pool, worker-slot) binding of this thread. Workers push
    /// their own pool at startup; `ThreadPool::install` pushes an entry with
    /// `None` for the slot.
    static CURRENT: RefCell<Vec<(Arc<PoolInner>, Option<usize>)>> = const { RefCell::new(Vec::new()) };
}

impl PoolInner {
    /// Number of worker threads.
    pub(crate) fn num_threads(&self) -> usize {
        self.queues.len()
    }

    /// Jobs executed so far, per worker slot.
    pub(crate) fn job_counts(&self) -> Vec<usize> {
        self.executed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    fn push_job(&self, job: Job) {
        let slot = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.pending.fetch_add(1, Ordering::Release);
        self.queues[slot]
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
    }

    fn notify(&self) {
        let _guard = self.idle_lock.lock().expect("pool idle lock poisoned");
        self.idle_cv.notify_all();
    }

    /// Pops a job, preferring the queue at `home` and stealing otherwise.
    fn take_job(&self, home: usize) -> Option<Job> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        let n = self.queues.len();
        for k in 0..n {
            let q = (home + k) % n;
            let job = self.queues[q]
                .lock()
                .expect("pool queue poisoned")
                .pop_front();
            if let Some(job) = job {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(self: Arc<Self>, index: usize) {
        CURRENT.with(|c| c.borrow_mut().push((Arc::clone(&self), Some(index))));
        loop {
            if let Some(job) = self.take_job(index) {
                self.executed[index].fetch_add(1, Ordering::Relaxed);
                job();
                continue;
            }
            let guard = self.idle_lock.lock().expect("pool idle lock poisoned");
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if self.pending.load(Ordering::Acquire) > 0 {
                continue;
            }
            let _ = self
                .idle_cv
                .wait_timeout(guard, PARK_TIMEOUT)
                .expect("pool idle lock poisoned");
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
        }
    }

    /// Runs a batch of borrowing jobs to completion before returning.
    ///
    /// The jobs may borrow the caller's stack frame: their lifetimes are
    /// erased, which is sound because this function does not return (normally
    /// or by unwinding) until every job has finished. The first panic among
    /// the jobs is re-raised on the caller.
    pub(crate) fn run_scoped<'scope>(
        self: &Arc<Self>,
        jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>,
    ) {
        takeable_scope(self, jobs, || {});
    }

    /// Blocks until the latch opens. Worker threads of this pool help by
    /// executing queued jobs meanwhile; external threads park.
    fn wait_latch(&self, latch: &Latch) {
        let helper_slot = CURRENT.with(|c| {
            c.borrow().last().and_then(|(pool, slot)| {
                if std::ptr::eq(Arc::as_ptr(pool), self) {
                    *slot
                } else {
                    None
                }
            })
        });
        if let Some(home) = helper_slot {
            let mut empty_polls = 0u32;
            while !latch.is_open() {
                match self.take_job(home) {
                    Some(job) => {
                        empty_polls = 0;
                        self.executed[home].fetch_add(1, Ordering::Relaxed);
                        job();
                    }
                    None => {
                        // Nothing stealable: yield briefly, then park on the
                        // latch with a short timeout instead of burning the
                        // core against the worker running the final job. The
                        // timeout bounds how late we notice *new* pool jobs
                        // (which only signal the idle condvar).
                        empty_polls += 1;
                        if empty_polls < 64 {
                            std::thread::yield_now();
                        } else {
                            let guard = latch.lock.lock().expect("latch lock poisoned");
                            if latch.is_open() {
                                return;
                            }
                            let _ = latch
                                .cv
                                .wait_timeout(guard, Duration::from_millis(1))
                                .expect("latch lock poisoned");
                        }
                    }
                }
            }
        } else {
            loop {
                let guard = latch.lock.lock().expect("latch lock poisoned");
                if latch.is_open() {
                    return;
                }
                let _ = latch
                    .cv
                    .wait_timeout(guard, PARK_TIMEOUT)
                    .expect("latch lock poisoned");
                if latch.is_open() {
                    return;
                }
            }
        }
    }
}

/// SAFETY: the caller must guarantee the closure finishes before any borrow
/// it captures goes out of scope (here: the completion latch in `run_scoped`).
unsafe fn erase_lifetime<'scope>(job: Box<dyn FnOnce() + Send + 'scope>) -> Job {
    std::mem::transmute(job)
}

/// Countdown latch with a condvar for external waiters.
struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn is_open(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock().expect("latch lock poisoned");
            self.cv.notify_all();
        }
    }
}

/// An owned thread pool. Dropping it shuts the workers down.
///
/// Mirrors `rayon::ThreadPool`: [`ThreadPool::install`] runs a closure with
/// this pool as the ambient pool for every `par_*` call it makes.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    fn build(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let inner = Arc::new(PoolInner {
            queues: (0..num_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
            next_queue: AtomicUsize::new(0),
            executed: (0..num_threads).map(|_| AtomicUsize::new(0)).collect(),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..num_threads)
            .map(|i| {
                let pool = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("feir-rayon-{i}"))
                    .spawn(move || pool.worker_loop(i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.inner.num_threads()
    }

    /// Jobs executed so far per worker (test/bench observability).
    pub fn job_counts(&self) -> Vec<usize> {
        self.inner.job_counts()
    }

    /// Runs `op` with this pool as the ambient pool of the calling thread:
    /// every `par_iter` / `join` under `op` fans out to this pool's workers.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        CURRENT.with(|c| c.borrow_mut().push((Arc::clone(&self.inner), None)));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        op()
    }

    pub(crate) fn inner(&self) -> &Arc<PoolInner> {
        &self.inner
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.notify();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers exit on shutdown without draining their queues; run any
        // abandoned jobs here so a concurrent `run_scoped` waiter (the pool
        // is shareable through `&self`) cannot hang on a latch that would
        // otherwise never open.
        while let Some(job) = self.inner.take_job(0) {
            job();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.current_num_threads())
            .finish()
    }
}

/// Error returned when a pool cannot be (re)built.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the subset we support.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 or unset = automatic: the
    /// `FEIR_NUM_THREADS` / `RAYON_NUM_THREADS` environment variables, then
    /// the machine's available parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = if num_threads == 0 {
            None
        } else {
            Some(num_threads)
        };
        self
    }

    /// Builds an owned pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool::build(
            self.num_threads.unwrap_or_else(default_num_threads),
        ))
    }

    /// Installs this configuration as the global pool. Fails if the global
    /// pool has already been initialized (lazily or explicitly).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let pool = self.build()?;
        GLOBAL.set(pool).map_err(|_| ThreadPoolBuildError {
            message: "the global thread pool has already been initialized",
        })
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Pool size used when nothing is configured explicitly: `FEIR_NUM_THREADS`,
/// then `RAYON_NUM_THREADS`, then the machine's available parallelism.
fn default_num_threads() -> usize {
    for var in ["FEIR_NUM_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::build(default_num_threads()))
}

/// The pool ambient on this thread: the innermost `install` / worker binding,
/// falling back to the lazily-initialized global pool.
pub(crate) fn current_pool() -> Arc<PoolInner> {
    CURRENT
        .with(|c| c.borrow().last().map(|(pool, _)| Arc::clone(pool)))
        .unwrap_or_else(|| Arc::clone(global_pool().inner()))
}

/// Number of worker threads in the ambient pool.
pub fn current_num_threads() -> usize {
    current_pool().num_threads()
}

/// Per-worker executed-job counts of the ambient pool, in worker order.
/// Zero-allocation observability hook used by the parallel-execution tests
/// and the benchmark snapshot tool; not part of the real rayon API.
pub fn worker_job_counts() -> Vec<usize> {
    current_pool().job_counts()
}

/// Runs two closures, potentially in parallel, and returns both results.
///
/// `oper_a` runs on the calling thread while `oper_b` is shipped to the
/// ambient pool, so the two overlap in time even with a single worker — the
/// property the AFEIR recovery path (reduction ∥ recovery planning) relies
/// on. The caller then waits for `b`, helping the pool if it is itself a
/// worker thread (which keeps nested joins deadlock-free).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_pool();
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let rb_slot = SendPtr(&mut rb as *mut Option<RB>);
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            // Capture the whole wrapper (not the raw-pointer field) so the
            // closure inherits SendPtr's Send impl.
            let slot = rb_slot;
            let value = oper_b();
            // SAFETY: the slot outlives the batch (the scope waits for it)
            // and is written by exactly this job.
            unsafe { *slot.0 = Some(value) };
        });
        takeable_scope(&pool, vec![job], || ra = Some(oper_a()));
    }
    (
        ra.expect("join: first closure did not run"),
        rb.expect("join: second closure did not run"),
    )
}

/// Runs `jobs` on the pool while executing `local` on the calling thread,
/// returning only when both are done.
fn takeable_scope<'scope>(
    pool: &Arc<PoolInner>,
    jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>,
    local: impl FnOnce(),
) {
    // run_scoped pushes the jobs and then waits; we need the local closure to
    // run *between* push and wait. Reimplement the small sequence here.
    let latch = Arc::new(Latch::new(jobs.len()));
    let panic_slot: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));
    for job in jobs {
        let latch = Arc::clone(&latch);
        let panic_slot = Arc::clone(&panic_slot);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = result {
                let mut slot = panic_slot.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            latch.complete_one();
        });
        // SAFETY: the latch wait below runs before this frame unwinds.
        let wrapped: Job = unsafe { erase_lifetime(wrapped) };
        pool.push_job(wrapped);
    }
    pool.notify();
    let local_result = catch_unwind(AssertUnwindSafe(local));
    pool.wait_latch(&latch);
    let payload = panic_slot.lock().expect("panic slot poisoned").take();
    if let Err(local_panic) = local_result {
        resume_unwind(local_panic);
    }
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

struct SendPtr<T>(*mut T);
// SAFETY: the pointer is only dereferenced by the single job that owns it,
// strictly before the owning stack frame is released.
unsafe impl<T> Send for SendPtr<T> {}
