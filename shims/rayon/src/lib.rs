//! Vendored shim for the subset of [rayon](https://crates.io/crates/rayon)
//! this workspace uses. The build environment has no registry access, so the
//! real crate cannot be fetched; this shim keeps the exact call-site API
//! (`par_iter`, `par_iter_mut`, `par_chunks_mut`, `into_par_iter`, `join`,
//! `current_num_threads`) while executing the data-parallel iterators
//! sequentially. `join` still runs its two closures on separate OS threads so
//! the AFEIR reduction/recovery overlap remains genuinely concurrent.
//!
//! Swapping this shim for the real rayon is a one-line change in the root
//! `Cargo.toml` and requires no source edits.

/// Runs two closures, potentially in parallel, and returns both results.
///
/// Unlike the data-parallel iterator shims (which are sequential), this uses a
/// real scoped thread for `b` because the AFEIR recovery path depends on the
/// reduction and the recovery planning actually overlapping in time.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle.join().expect("rayon shim: join closure panicked");
        (ra, rb)
    })
}

/// Number of threads the (shimmed) global pool would use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Drop-in replacement for `rayon::prelude`.
pub mod prelude {
    /// Sequential stand-ins for rayon's parallel iterators over shared slices.
    pub trait ParallelSliceExt<T> {
        /// Shim for `par_iter`: a plain sequential iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Shim for `par_chunks`: plain sequential chunks.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T: Sync> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Sequential stand-ins for rayon's parallel iterators over mutable slices.
    pub trait ParallelSliceMutExt<T> {
        /// Shim for `par_iter_mut`: a plain sequential iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Shim for `par_chunks_mut`: plain sequential chunks.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMutExt<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// Shim for `IntoParallelIterator`: yields the ordinary iterator.
    pub trait IntoParallelIterator {
        /// The sequential iterator standing in for the parallel one.
        type Iter: Iterator<Item = Self::Item>;
        /// Items produced by the iterator.
        type Item;
        /// Shim for `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_runs_both_closures_concurrently() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_iter_shims_match_sequential() {
        let v = [1.0f64, 2.0, 3.0];
        let s: f64 = v.par_iter().sum();
        assert_eq!(s, 6.0);
        let mut w = vec![0.0f64; 4];
        w.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as f64);
        assert_eq!(w, vec![0.0, 1.0, 2.0, 3.0]);
        let chunks: Vec<usize> = (0..10usize).into_par_iter().collect();
        assert_eq!(chunks.len(), 10);
        let mut y = vec![0u8; 7];
        assert_eq!(y.par_chunks_mut(3).count(), 3);
        assert_eq!(y.as_slice().par_chunks(3).count(), 3);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
