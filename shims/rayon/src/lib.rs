//! Vendored shim for the subset of [rayon](https://crates.io/crates/rayon)
//! this workspace uses. The build environment has no registry access, so the
//! real crate cannot be fetched; this shim keeps the exact call-site API
//! (`par_iter`, `par_iter_mut`, `par_chunks(_mut)`, `into_par_iter`, `join`,
//! `current_num_threads`, `ThreadPoolBuilder`) and backs it with a real
//! work-stealing thread pool: a lazily-initialized global pool (sized by
//! `FEIR_NUM_THREADS` / `RAYON_NUM_THREADS` / available parallelism) with
//! per-worker queues, chunk-based scheduling, caller-helping waits for
//! deadlock-free nesting, and panic propagation.
//!
//! Parallel reductions combine fixed-length per-chunk partial sums in chunk
//! order, so `sum()` is bitwise-deterministic for every thread count — see
//! [`iter`] for the contract.
//!
//! Swapping this shim for the real rayon is a one-line change in the root
//! `Cargo.toml`; solver code needs no edits, only the shim-specific
//! observability hooks ([`worker_job_counts`], [`ThreadPool::job_counts`])
//! used by tests would need gating. The real crate also weakens the
//! determinism guarantee: rayon reduces in an unspecified association order.

pub mod iter;
mod pool;

pub use pool::{
    current_num_threads, join, worker_job_counts, ThreadPool, ThreadPoolBuildError,
    ThreadPoolBuilder,
};

/// Drop-in replacement for `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::ParIter;
    use crate::iter::{
        ChunksMutProducer, ChunksProducer, RangeProducer, SliceMutProducer, SliceProducer,
        VecProducer,
    };

    /// Parallel iterators over shared slices.
    pub trait ParallelSliceExt<T: Sync> {
        /// Parallel iterator over the elements.
        fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
        /// Parallel iterator over contiguous `chunk_size`-element sub-slices.
        fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
    }

    impl<T: Sync> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
            ParIter::new(SliceProducer::new(self))
        }

        fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
            ParIter::new(ChunksProducer::new(self, chunk_size))
        }
    }

    /// Parallel iterators over mutable slices.
    pub trait ParallelSliceMutExt<T: Send> {
        /// Parallel iterator over mutable elements.
        fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
        /// Parallel iterator over mutable `chunk_size`-element sub-slices.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
    }

    impl<T: Send> ParallelSliceMutExt<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
            ParIter::new(SliceMutProducer::new(self))
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
            ParIter::new(ChunksMutProducer::new(self, chunk_size))
        }
    }

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// The parallel iterator type.
        type Iter;
        /// Items produced by the iterator.
        type Item;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = ParIter<RangeProducer>;
        type Item = usize;

        fn into_par_iter(self) -> Self::Iter {
            ParIter::new(RangeProducer::new(self))
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = ParIter<VecProducer<T>>;
        type Item = T;

        fn into_par_iter(self) -> Self::Iter {
            ParIter::new(VecProducer::new(self))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_iter_shims_match_sequential() {
        let v = [1.0f64, 2.0, 3.0];
        let s: f64 = v.par_iter().sum();
        assert_eq!(s, 6.0);
        let mut w = vec![0.0f64; 4];
        w.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as f64);
        assert_eq!(w, vec![0.0, 1.0, 2.0, 3.0]);
        let chunks: Vec<usize> = (0..10usize).into_par_iter().collect();
        assert_eq!(chunks, (0..10).collect::<Vec<_>>());
        let mut y = vec![0u8; 7];
        assert_eq!(y.par_chunks_mut(3).count(), 3);
        assert_eq!(y.as_slice().par_chunks(3).count(), 3);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn map_sum_zip_pipeline() {
        let x: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..10_000).map(|i| (i * 2) as f64).collect();
        let dot: f64 = x.par_iter().zip(y.par_iter()).map(|(a, b)| a * b).sum();
        let reference: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(dot, reference);
    }

    #[test]
    fn enumerate_offsets_survive_splitting() {
        let mut v = vec![0usize; 50_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn collect_preserves_order_on_large_ranges() {
        let out: Vec<usize> = (0..100_000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out.len(), 100_000);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let a = [1.0f64; 10];
        let b = [2.0f64; 7];
        let s: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(s, 14.0);
    }

    #[test]
    fn par_chunks_mut_items_cover_the_slice() {
        let mut v = vec![0i64; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(p, chunk)| {
            for item in chunk.iter_mut() {
                *item = p as i64;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[63], 0);
        assert_eq!(v[64], 1);
        assert_eq!(v[999], 15);
    }

    #[test]
    fn for_each_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            (0..50_000)
                .into_par_iter()
                .for_each(|i| assert!(i < 49_999, "boom"));
        });
        assert!(result.is_err());
    }
}
