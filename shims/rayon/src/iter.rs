//! Chunk-splitting parallel iterators over slices, ranges and vectors.
//!
//! Everything is built on one abstraction: a [`Producer`] is an exactly-sized
//! source that can be split at an index and lowered to a sequential iterator.
//! Terminal operations split the producer into contiguous chunks, run one
//! pool job per chunk, and combine per-chunk results **in chunk order**.
//!
//! ## Determinism
//!
//! Reductions ([`ParIter::sum`]) use a *fixed* chunk length
//! ([`REDUCE_CHUNK`]) that does not depend on the pool size, and the partial
//! sums are folded left-to-right in chunk order. A reduction over the same
//! data therefore produces bitwise-identical results for **every** thread
//! count (including 1) — the shared-memory mirror of the rank-ordered
//! allreduce in `feir-dist`. Work distribution (which worker runs which
//! chunk) is free to vary; the combination order never does.

use crate::pool::current_pool;
use std::sync::Mutex;

/// Fixed chunk length (in items) for order-deterministic reductions.
pub const REDUCE_CHUNK: usize = 4096;

/// Oversubscription factor: chunks per worker for splittable for-each work,
/// so work stealing can absorb load imbalance between chunks.
const CHUNKS_PER_WORKER: usize = 4;

/// An exactly-sized, splittable source of items.
pub trait Producer: Send + Sized {
    /// Item type produced.
    type Item: Send;
    /// Sequential iterator over one chunk.
    type IntoSeq: Iterator<Item = Self::Item>;

    /// Number of items.
    fn len(&self) -> usize;
    /// True if no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Splits into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Lowers to a sequential iterator.
    fn into_seq(self) -> Self::IntoSeq;
    /// Minimum worthwhile chunk length in items: 1 for sources whose items
    /// are already coarse (page-sized chunks, page indices), larger for
    /// element-grained sources where per-job overhead must be amortized.
    fn min_chunk(&self) -> usize {
        1024
    }
}

/// Splits `producer` into contiguous chunks of `chunk_len` items (the last
/// chunk may be shorter), preserving order.
fn split_chunks<P: Producer>(mut producer: P, chunk_len: usize) -> Vec<P> {
    let mut remaining = producer.len();
    let mut parts = Vec::with_capacity(remaining.div_ceil(chunk_len.max(1)));
    while remaining > chunk_len {
        let (head, tail) = producer.split_at(chunk_len);
        parts.push(head);
        producer = tail;
        remaining -= chunk_len;
    }
    parts.push(producer);
    parts
}

/// Runs `per_chunk` over `parts`, in parallel when the ambient pool has more
/// than one worker, and returns the results in chunk order.
fn run_ordered<P, R, F>(parts: Vec<P>, per_chunk: F) -> Vec<R>
where
    P: Producer,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let pool = current_pool();
    if pool.num_threads() <= 1 || parts.len() <= 1 {
        return parts.into_iter().map(per_chunk).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = parts.iter().map(|_| Mutex::new(None)).collect();
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = parts
        .into_iter()
        .enumerate()
        .map(|(i, part)| {
            let slot = &slots[i];
            let per_chunk = &per_chunk;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let value = per_chunk(part);
                *slot.lock().expect("result slot poisoned") = Some(value);
            });
            job
        })
        .collect();
    pool.run_scoped(jobs);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("pool job did not produce a result")
        })
        .collect()
}

/// Chunk length for splittable (non-reduction) work over `len` items with a
/// per-item minimum worthwhile chunk: aim for `CHUNKS_PER_WORKER` chunks
/// per worker of the ambient pool, never below `min_chunk`, and one single
/// chunk on a single-worker pool (where splitting is pure overhead).
///
/// Public (shim extension, not part of real rayon) so kernels that pre-chunk
/// their data with `par_chunks(_mut)` can size those chunks from the same
/// heuristic every other `par_*` operation uses.
pub fn pool_chunk_len(len: usize, min_chunk: usize) -> usize {
    let threads = current_pool().num_threads();
    if threads <= 1 {
        return len.max(1);
    }
    len.div_ceil(threads * CHUNKS_PER_WORKER)
        .max(min_chunk)
        .min(len.max(1))
}

fn adaptive_chunk_len(len: usize, min_chunk: usize) -> usize {
    pool_chunk_len(len, min_chunk)
}

/// A parallel iterator over a [`Producer`].
#[derive(Debug)]
pub struct ParIter<P> {
    producer: P,
}

impl<P: Producer> ParIter<P> {
    pub(crate) fn new(producer: P) -> Self {
        Self { producer }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.producer.len()
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.producer.is_empty()
    }

    /// Pairs items positionally with `other`, truncating to the shorter side.
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<ZipProducer<P, Q>> {
        ParIter::new(ZipProducer {
            a: self.producer,
            b: other.producer,
        })
    }

    /// Attaches the item index.
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter::new(EnumerateProducer {
            base: 0,
            inner: self.producer,
        })
    }

    /// Maps each item through `map_op`.
    pub fn map<R, F>(self, map_op: F) -> ParIter<MapProducer<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Clone + Send + Sync,
    {
        ParIter::new(MapProducer {
            inner: self.producer,
            map_op,
        })
    }

    /// Calls `op` on every item, fanning chunks out across the pool.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        let len = self.producer.len();
        if len == 0 {
            return;
        }
        let chunk_len = adaptive_chunk_len(len, self.producer.min_chunk());
        let parts = split_chunks(self.producer, chunk_len);
        run_ordered(parts, |part| part.into_seq().for_each(&op));
    }

    /// Order-deterministic parallel sum: fixed-length chunks are reduced
    /// independently and the partial sums are folded in chunk order, so the
    /// result is bitwise-identical for every pool size.
    ///
    /// Chunk length depends only on the producer's granularity, never on the
    /// pool: element-grained producers reduce [`REDUCE_CHUNK`] items per
    /// partial sum; coarse producers (`min_chunk() == 1`, whose items are
    /// already whole sub-slices or page indices) reduce one item per partial
    /// sum, so a pre-chunked reduction like `par_chunks(k).map(..).sum()`
    /// still fans out across the workers.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let chunk_len = if self.producer.min_chunk() <= 1 {
            1
        } else {
            REDUCE_CHUNK
        };
        let parts = split_chunks(self.producer, chunk_len);
        run_ordered(parts, |part| part.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Collects items into `C`, preserving sequential order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<P::Item>,
    {
        let len = self.producer.len();
        if len == 0 {
            return std::iter::empty().collect();
        }
        let chunk_len = adaptive_chunk_len(len, self.producer.min_chunk());
        let parts = split_chunks(self.producer, chunk_len);
        run_ordered(parts, |part| part.into_seq().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Number of items (all producers are exactly sized).
    pub fn count(self) -> usize {
        self.producer.len()
    }
}

// ----- sources ---------------------------------------------------------------

/// Shared-slice source (`par_iter`).
#[derive(Debug)]
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T> SliceProducer<'a, T> {
    pub(crate) fn new(slice: &'a [T]) -> Self {
        Self { slice }
    }
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoSeq = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at(mid);
        (Self { slice: left }, Self { slice: right })
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.slice.iter()
    }
}

/// Mutable-slice source (`par_iter_mut`).
#[derive(Debug)]
pub struct SliceMutProducer<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T> SliceMutProducer<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        Self { slice }
    }
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoSeq = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at_mut(mid);
        (Self { slice: left }, Self { slice: right })
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.slice.iter_mut()
    }
}

/// Shared chunked-slice source (`par_chunks`). Items are whole sub-slices, so
/// one item is already a coarse unit of work.
#[derive(Debug)]
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T> ChunksProducer<'a, T> {
    pub(crate) fn new(slice: &'a [T], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "par_chunks: chunk size must be non-zero");
        Self { slice, chunk_size }
    }
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoSeq = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.chunk_size).min(self.slice.len());
        let (left, right) = self.slice.split_at(at);
        (
            Self {
                slice: left,
                chunk_size: self.chunk_size,
            },
            Self {
                slice: right,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.slice.chunks(self.chunk_size)
    }

    fn min_chunk(&self) -> usize {
        1
    }
}

/// Mutable chunked-slice source (`par_chunks_mut`).
#[derive(Debug)]
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T> ChunksMutProducer<'a, T> {
    pub(crate) fn new(slice: &'a mut [T], chunk_size: usize) -> Self {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be non-zero"
        );
        Self { slice, chunk_size }
    }
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoSeq = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.chunk_size).min(self.slice.len());
        let (left, right) = self.slice.split_at_mut(at);
        (
            Self {
                slice: left,
                chunk_size: self.chunk_size,
            },
            Self {
                slice: right,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.slice.chunks_mut(self.chunk_size)
    }

    fn min_chunk(&self) -> usize {
        1
    }
}

/// Index-range source (`(a..b).into_par_iter()`). In this workspace ranges
/// iterate page/block indices whose per-item work is large, so the minimum
/// chunk is a single item.
#[derive(Debug)]
pub struct RangeProducer {
    start: usize,
    end: usize,
}

impl RangeProducer {
    pub(crate) fn new(range: std::ops::Range<usize>) -> Self {
        Self {
            start: range.start,
            end: range.end.max(range.start),
        }
    }
}

impl Producer for RangeProducer {
    type Item = usize;
    type IntoSeq = std::ops::Range<usize>;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (self.start + mid).min(self.end);
        (
            Self {
                start: self.start,
                end: at,
            },
            Self {
                start: at,
                end: self.end,
            },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.start..self.end
    }

    fn min_chunk(&self) -> usize {
        1
    }
}

/// Owned-vector source (`vec.into_par_iter()`).
#[derive(Debug)]
pub struct VecProducer<T> {
    data: Vec<T>,
}

impl<T> VecProducer<T> {
    pub(crate) fn new(data: Vec<T>) -> Self {
        Self { data }
    }
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoSeq = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.data.len()
    }

    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.data.split_off(mid);
        (self, Self { data: tail })
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.data.into_iter()
    }
}

// ----- combinators -----------------------------------------------------------

/// Positional pairing of two producers.
#[derive(Debug)]
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoSeq = std::iter::Zip<A::IntoSeq, B::IntoSeq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a_left, a_right) = self.a.split_at(mid);
        let (b_left, b_right) = self.b.split_at(mid);
        (
            Self {
                a: a_left,
                b: b_left,
            },
            Self {
                a: a_right,
                b: b_right,
            },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.a.into_seq().zip(self.b.into_seq())
    }

    fn min_chunk(&self) -> usize {
        self.a.min_chunk().max(self.b.min_chunk())
    }
}

/// Index attachment; `base` tracks the split offset so indices stay global.
#[derive(Debug)]
pub struct EnumerateProducer<P> {
    base: usize,
    inner: P,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoSeq = std::iter::Zip<std::ops::Range<usize>, P::IntoSeq>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.inner.split_at(mid);
        (
            Self {
                base: self.base,
                inner: left,
            },
            Self {
                base: self.base + mid,
                inner: right,
            },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        let len = self.inner.len();
        (self.base..self.base + len).zip(self.inner.into_seq())
    }

    fn min_chunk(&self) -> usize {
        self.inner.min_chunk()
    }
}

/// Item mapping. The map closure is cloned into each chunk.
#[derive(Debug)]
pub struct MapProducer<P, F> {
    inner: P,
    map_op: F,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Clone + Send + Sync,
{
    type Item = R;
    type IntoSeq = std::iter::Map<P::IntoSeq, F>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (left, right) = self.inner.split_at(mid);
        (
            Self {
                inner: left,
                map_op: self.map_op.clone(),
            },
            Self {
                inner: right,
                map_op: self.map_op,
            },
        )
    }

    fn into_seq(self) -> Self::IntoSeq {
        self.inner.into_seq().map(self.map_op)
    }

    fn min_chunk(&self) -> usize {
        self.inner.min_chunk()
    }
}
