//! Integration tests for the work-stealing pool: genuine multi-threaded
//! execution, bitwise-deterministic reductions across thread counts, join
//! overlap, panic propagation and nested parallelism.
//!
//! The CI/dev container may expose a single core, so these tests build
//! explicit pools with `ThreadPoolBuilder::num_threads` rather than relying
//! on `available_parallelism`.

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

fn pool(threads: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction failed")
}

#[test]
fn for_each_executes_on_multiple_distinct_threads() {
    let pool = pool(4);
    let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    // Retry loop: on a single hardware core the OS decides when workers get
    // scheduled, so keep submitting batches until two distinct workers have
    // demonstrably run items (in practice the first batch suffices).
    for _ in 0..50 {
        pool.install(|| {
            (0..4096).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            });
        });
        if ids.lock().unwrap().len() > 1 {
            break;
        }
    }
    let distinct = ids.lock().unwrap().len();
    assert!(
        distinct > 1,
        "expected work on >1 distinct thread, observed {distinct}"
    );
    // The external caller parks while the batch runs, so every item above ran
    // on pool workers — the job counters must agree.
    let active_workers = pool.job_counts().iter().filter(|&&c| c > 0).count();
    assert!(
        active_workers > 1,
        "expected >1 active worker, counters: {:?}",
        pool.job_counts()
    );
}

#[test]
fn reduction_is_bitwise_deterministic_across_thread_counts() {
    let n = 100_000;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 1e3).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos() / 7.0).collect();
    let dot = |pool: &rayon::ThreadPool| -> f64 {
        pool.install(|| x.par_iter().zip(y.par_iter()).map(|(a, b)| a * b).sum())
    };
    let reference = dot(&pool(1));
    for threads in [2usize, 3, 4, 8] {
        let p = pool(threads);
        for run in 0..5 {
            let value = dot(&p);
            assert_eq!(
                value.to_bits(),
                reference.to_bits(),
                "threads={threads} run={run}: {value} != {reference}"
            );
        }
    }
}

#[test]
fn sum_matches_fixed_chunk_serial_reference() {
    // The determinism contract: sum == left-to-right fold of per-chunk sums
    // with the fixed REDUCE_CHUNK length, independent of the pool.
    let n = 50_000;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sqrt() * 0.01).collect();
    let reference: f64 = x
        .chunks(rayon::iter::REDUCE_CHUNK)
        .map(|c| c.iter().sum::<f64>())
        .sum();
    let p = pool(4);
    let value: f64 = p.install(|| x.par_iter().map(|v| *v).sum());
    assert_eq!(value.to_bits(), reference.to_bits());
}

#[test]
fn join_closures_overlap_in_time() {
    // Regression test for the old shim's per-call thread spawn and for any
    // future sequentialization: each closure waits (with a timeout) until the
    // other has started. If join ran them one after the other, the first
    // would time out.
    let p = pool(2);
    let a_started = AtomicBool::new(false);
    let b_started = AtomicBool::new(false);
    let deadline = Duration::from_secs(20);
    let wait_for = |flag: &AtomicBool| -> bool {
        let start = Instant::now();
        while !flag.load(Ordering::Acquire) {
            if start.elapsed() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    };
    let (a_saw_b, b_saw_a) = p.install(|| {
        rayon::join(
            || {
                a_started.store(true, Ordering::Release);
                wait_for(&b_started)
            },
            || {
                b_started.store(true, Ordering::Release);
                wait_for(&a_started)
            },
        )
    });
    assert!(a_saw_b, "first join closure never saw the second start");
    assert!(b_saw_a, "second join closure never saw the first start");
}

#[test]
fn join_returns_both_results_and_propagates_panics() {
    let p = pool(2);
    let (a, b) = p.install(|| rayon::join(|| 21 * 2, || "ok".to_string()));
    assert_eq!(a, 42);
    assert_eq!(b, "ok");

    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        p.install(|| rayon::join(|| 1, || panic!("pool-side panic")));
    }));
    assert!(caught.is_err(), "panic in join closure must propagate");
    // The pool must stay usable after a propagated panic.
    let (a, b) = p.install(|| rayon::join(|| 1, || 2));
    assert_eq!((a, b), (1, 2));
}

#[test]
fn nested_parallelism_does_not_deadlock() {
    let p = pool(2);
    let total: f64 = p.install(|| {
        let (left, right) = rayon::join(
            || {
                let v: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
                v.par_iter().map(|x| x * 2.0).sum::<f64>()
            },
            || {
                let v: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
                v.par_iter().map(|x| x * 3.0).sum::<f64>()
            },
        );
        left + right
    });
    let expected: f64 = (0..20_000).map(|i| i as f64).sum::<f64>() * 5.0;
    assert!((total - expected).abs() < 1e-6);
}

#[test]
fn install_reports_pool_size_and_restores_ambient_pool() {
    let p2 = pool(2);
    let p5 = pool(5);
    assert_eq!(p2.install(rayon::current_num_threads), 2);
    assert_eq!(p5.install(rayon::current_num_threads), 5);
    // Nested installs: innermost wins, outer restored afterwards.
    let (inner, outer) = p2.install(|| {
        let inner = p5.install(rayon::current_num_threads);
        (inner, rayon::current_num_threads())
    });
    assert_eq!(inner, 5);
    assert_eq!(outer, 2);
}

#[test]
fn mutation_through_par_iter_mut_is_complete_and_parallel() {
    let p = pool(4);
    let n = 200_000;
    let mut v = vec![0.0f64; n];
    p.install(|| {
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = (i as f64) * 0.5);
    });
    assert!(v.iter().enumerate().all(|(i, &x)| x == i as f64 * 0.5));
    let active = p.job_counts().iter().filter(|&&c| c > 0).count();
    assert!(active >= 1, "no worker executed any job");
}
