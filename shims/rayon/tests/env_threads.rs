//! `FEIR_NUM_THREADS` must size the lazily-initialized global pool. This
//! lives in its own integration-test binary so the env var can be set before
//! the global pool's first use without racing other tests.

#[test]
fn feir_num_threads_overrides_global_pool_size() {
    // SAFETY: no other thread is running in this test binary yet, and the
    // global pool has not been touched.
    unsafe { std::env::set_var("FEIR_NUM_THREADS", "3") };
    assert_eq!(rayon::current_num_threads(), 3);

    // Once the global pool exists its size is fixed; later env changes are
    // intentionally ignored.
    unsafe { std::env::set_var("FEIR_NUM_THREADS", "7") };
    assert_eq!(rayon::current_num_threads(), 3);

    // build_global must now report the pool as already initialized.
    let result = rayon::ThreadPoolBuilder::new()
        .num_threads(2)
        .build_global();
    assert!(result.is_err());
}
