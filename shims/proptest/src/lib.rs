//! Vendored shim for the subset of
//! [proptest](https://crates.io/crates/proptest) this workspace uses: the
//! `proptest!` macro over named strategies, range strategies, tuple
//! strategies, `prop_map`, `ProptestConfig::with_cases` and the
//! `prop_assert!` family. Cases are generated from a deterministic per-case
//! seed, so failures are reproducible; there is no shrinking — the failing
//! inputs are reported as-is through the panic message.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generates one value from the deterministic `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.start, self.end)
        }
    }

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.u64_in(self.start, self.end)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.f64_in(self.start, self.end)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
}

/// Test-case configuration and deterministic RNG.
pub mod test_runner {
    /// Subset of proptest's `ProptestConfig`: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case generator (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case` of a property.
        pub fn for_case(case: u32) -> Self {
            Self {
                state: 0x5EED_0000_0000_0000
                    ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty usize range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }

        /// Uniform draw in `[lo, hi)`.
        pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty u64 range");
            lo + self.next_u64() % (hi - lo)
        }

        /// Uniform draw in `[lo, hi)`.
        pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            assert!(lo < hi, "empty f64 range");
            let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + unit * (hi - lo)
        }
    }
}

/// Runs each property against `config.cases` deterministic cases.
///
/// Supported form (the one this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn property(x in 0usize..10, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )+
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::test_runner::ProptestConfig::default();
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

/// Property assertion; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($left, $right $(, $($fmt)+)?)
    };
}

/// Everything a `proptest!` call site needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = (usize, usize)> {
        (1usize..50).prop_map(|n| (n, 2 * n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0, s in 5u64..6) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f = {f}");
            prop_assert_eq!(s, 5);
        }

        #[test]
        fn mapped_tuples_hold_their_invariant((n, d) in doubled()) {
            prop_assert_eq!(d, 2 * n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        assert_eq!(a.usize_in(0, 1000), b.usize_in(0, 1000));
    }
}
