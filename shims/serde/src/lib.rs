//! Vendored shim for the subset of [serde](https://crates.io/crates/serde)
//! this workspace uses. The workspace only ever *derives* `Serialize` /
//! `Deserialize` (no code calls a serializer — see the note in
//! `feir-core::experiment`), so the shim provides the two marker traits plus
//! no-op derive macros. Swapping in the real serde is a one-line change in the
//! root `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

#[cfg(test)]
mod tests {
    #[derive(Debug, Clone, PartialEq, super::Serialize, super::Deserialize)]
    struct Probe {
        value: u32,
    }

    #[derive(Debug, Clone, Copy, PartialEq, super::Serialize, super::Deserialize)]
    enum ProbeEnum {
        A,
        B { interval: usize },
    }

    #[test]
    fn derives_compile_on_structs_and_enums() {
        let p = Probe { value: 7 };
        assert_eq!(p.clone(), p);
        let e = ProbeEnum::B { interval: 3 };
        assert_ne!(e, ProbeEnum::A);
    }
}
