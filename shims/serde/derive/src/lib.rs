//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros backing the
//! vendored serde shim. The workspace never calls a serializer, so deriving
//! nothing is sufficient — the derive just has to resolve and expand cleanly.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
