//! Vendored shim for the subset of
//! [criterion](https://crates.io/crates/criterion) this workspace uses:
//! `Criterion`, benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros. It
//! times each benchmark with `std::time::Instant` and prints mean iteration
//! time — enough for `cargo bench` to produce useful numbers without the real
//! crate's statistics machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(300);

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 20, f);
        self
    }
}

/// A named benchmark group (subset of criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timer handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibration pass: one iteration, to size the measurement loop.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = TARGET_MEASURE.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total += bencher.elapsed;
        total_iters += bencher.iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("{label:<48} time: {}", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function calling each target with a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(shim_group, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        shim_group();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(512).to_string(), "512");
    }
}
