//! Parallel-kernel acceptance tests: `spmv_parallel` / `dot_parallel`
//! (1) match the serial kernels to round-off, (2) are bitwise-deterministic
//! across repeated runs and across thread counts, and (3) demonstrably
//! execute on more than one pool worker for large inputs.
//!
//! The container may expose a single hardware core, so every test builds its
//! pools explicitly with `ThreadPoolBuilder::num_threads` instead of relying
//! on `available_parallelism`.

use feir_sparse::generators::poisson_2d;
use feir_sparse::vecops;

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction failed")
}

fn test_vectors(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() / 5.0).collect();
    (x, y)
}

#[test]
fn dot_parallel_matches_serial_to_roundoff() {
    let (x, y) = test_vectors(100_000);
    let serial = vecops::dot(&x, &y);
    for threads in [1usize, 2, 8] {
        let parallel = pool(threads).install(|| vecops::dot_parallel(&x, &y));
        let tol = 1e-12 * serial.abs().max(1.0);
        assert!(
            (serial - parallel).abs() < tol,
            "threads={threads}: serial {serial} vs parallel {parallel}"
        );
    }
}

#[test]
fn dot_parallel_is_bitwise_deterministic_across_runs_and_thread_counts() {
    let (x, y) = test_vectors(150_000);
    // The documented contract: the left-to-right fold of fixed DOT_CHUNK
    // partial sums, independent of the pool.
    let reference: f64 = x
        .chunks(vecops::DOT_CHUNK)
        .zip(y.chunks(vecops::DOT_CHUNK))
        .map(|(xc, yc)| vecops::dot(xc, yc))
        .sum();
    for threads in [1usize, 2, 4, 8] {
        let p = pool(threads);
        for run in 0..5 {
            let value = p.install(|| vecops::dot_parallel(&x, &y));
            assert_eq!(
                value.to_bits(),
                reference.to_bits(),
                "threads={threads} run={run}"
            );
        }
    }
}

#[test]
fn spmv_parallel_is_bitwise_identical_to_serial_at_any_thread_count() {
    let a = poisson_2d(96); // 9216 rows: several chunks at every pool size
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).sin()).collect();
    let mut serial = vec![0.0; a.rows()];
    a.spmv(&x, &mut serial);
    for threads in [1usize, 2, 8] {
        let p = pool(threads);
        for run in 0..3 {
            let mut parallel = vec![0.0; a.rows()];
            p.install(|| a.spmv_parallel(&x, &mut parallel));
            assert!(
                serial
                    .iter()
                    .zip(&parallel)
                    .all(|(s, q)| s.to_bits() == q.to_bits()),
                "threads={threads} run={run}: spmv_parallel diverged from serial"
            );
        }
    }
}

#[test]
fn axpy_and_xpay_parallel_are_bitwise_identical_to_serial() {
    let (x, base) = test_vectors(80_000);
    for threads in [1usize, 2, 8] {
        let p = pool(threads);
        let mut serial = base.clone();
        let mut parallel = base.clone();
        vecops::axpy(0.731, &x, &mut serial);
        p.install(|| vecops::axpy_parallel(0.731, &x, &mut parallel));
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(s, q)| s.to_bits() == q.to_bits()));

        let mut serial = base.clone();
        let mut parallel = base.clone();
        vecops::xpay(&x, -1.25, &mut serial);
        p.install(|| vecops::xpay_parallel(&x, -1.25, &mut parallel));
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(s, q)| s.to_bits() == q.to_bits()));
    }
}

/// Runs `kernel` repeatedly on a fresh 4-worker pool until at least two
/// distinct workers have executed jobs, and asserts that they did. The caller
/// parks while its chunks run, so every chunk executes on a pool worker; the
/// retry bounds scheduling noise on a single hardware core.
fn assert_runs_on_multiple_workers(name: &str, mut kernel: impl FnMut()) {
    let p = pool(4);
    let mut counts = Vec::new();
    for _ in 0..50 {
        p.install(&mut kernel);
        counts = p.job_counts();
        if counts.iter().filter(|&&c| c > 0).count() > 1 {
            break;
        }
    }
    let active = counts.iter().filter(|&&c| c > 0).count();
    assert!(
        active > 1,
        "{name}: expected chunks on >1 worker, job counts: {counts:?}"
    );
}

#[test]
fn spmv_executes_on_multiple_workers_for_large_inputs() {
    let a = poisson_2d(96);
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).cos()).collect();
    let mut y = vec![0.0; a.rows()];
    assert_runs_on_multiple_workers("spmv_parallel", || {
        a.spmv_parallel(&x, &mut y);
        std::hint::black_box(&mut y);
    });
}

#[test]
fn dot_executes_on_multiple_workers_for_large_inputs() {
    // Isolated from spmv so a silently-sequential dot_parallel cannot hide
    // behind another kernel's pool jobs.
    let (u, v) = test_vectors(200_000);
    assert_runs_on_multiple_workers("dot_parallel", || {
        std::hint::black_box(vecops::dot_parallel(&u, &v));
    });
}

#[test]
fn axpy_executes_on_multiple_workers_for_large_inputs() {
    let (x, mut y) = test_vectors(200_000);
    assert_runs_on_multiple_workers("axpy_parallel", || {
        vecops::axpy_parallel(1.0000001, &x, &mut y);
        std::hint::black_box(&mut y);
    });
}

#[test]
fn norm_parallel_agrees_with_serial() {
    let (x, _) = test_vectors(64_000);
    let p = pool(3);
    let serial = vecops::norm2(&x);
    let parallel = p.install(|| vecops::norm2_parallel(&x));
    assert!((serial - parallel).abs() < 1e-12 * serial.max(1.0));
    let serial_sq = vecops::norm2_squared(&x);
    let parallel_sq = p.install(|| vecops::norm2_squared_parallel(&x));
    assert!((serial_sq - parallel_sq).abs() < 1e-11 * serial_sq.max(1.0));
}

// ----- fused-kernel acceptance (ISSUE 5) ------------------------------------
//
// Every fused kernel must be bitwise-identical to the unfused composition it
// replaces at 1, 2, 4 and 8 threads, and bitwise-identical across those
// thread counts. These are the guarantees that let the classic solver paths
// adopt the fused hot path without changing a single output bit.

#[test]
fn fused_kernels_are_bitwise_identical_to_unfused_across_thread_counts() {
    use feir_sparse::fused;

    let a = poisson_2d(72); // 5184 rows: above every serial gate.
    let n = a.rows();
    let (x, w) = test_vectors(n);
    let y0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).cos() * 2.0).collect();

    // Reference bits from the single-thread pool.
    let reference = pool(1).install(|| {
        let mut sy = vec![0.0; n];
        a.spmv_parallel(&x, &mut sy);
        let spmv_dot_ref = vecops::dot_parallel(&x, &sy);
        let mut ay = y0.clone();
        vecops::axpy_parallel(0.375, &x, &mut ay);
        let axpy_norm2_ref = vecops::norm2_squared_parallel(&ay);
        let dotn_ref = [vecops::dot_parallel(&x, &w), vecops::dot_parallel(&x, &x)];
        (sy, spmv_dot_ref, ay, axpy_norm2_ref, dotn_ref)
    });

    for threads in [1usize, 2, 4, 8] {
        let p = pool(threads);
        // spmv_dot vs spmv_parallel + dot_parallel.
        let (fused_y, fused_dot) = p.install(|| {
            let mut y = vec![0.0; n];
            let d = fused::spmv_dot_parallel(&a, &x, &mut y);
            (y, d)
        });
        assert_eq!(fused_y, reference.0, "spmv_dot y at {threads} threads");
        assert_eq!(
            fused_dot.to_bits(),
            reference.1.to_bits(),
            "spmv_dot at {threads} threads"
        );
        // axpy_norm2 vs axpy_parallel + norm2_squared_parallel.
        let (fused_ay, fused_norm) = p.install(|| {
            let mut y = y0.clone();
            let nrm = fused::axpy_norm2_parallel(0.375, &x, &mut y);
            (y, nrm)
        });
        assert_eq!(fused_ay, reference.2, "axpy_norm2 y at {threads} threads");
        assert_eq!(
            fused_norm.to_bits(),
            reference.3.to_bits(),
            "axpy_norm2 at {threads} threads"
        );
        // axpy_dot / xpay_dot vs their unfused pairs, inside the same pool.
        let (ad, xd, au, xu) = p.install(|| {
            let mut y = y0.clone();
            let ad = fused::axpy_dot_parallel(-0.25, &x, &mut y, &w);
            let mut y = y0.clone();
            let xd = fused::xpay_dot_parallel(&x, 1.5, &mut y, &w);
            let mut y = y0.clone();
            vecops::axpy_parallel(-0.25, &x, &mut y);
            let au = vecops::dot_parallel(&y, &w);
            let mut y = y0.clone();
            vecops::xpay_parallel(&x, 1.5, &mut y);
            let xu = vecops::dot_parallel(&y, &w);
            (ad, xd, au, xu)
        });
        assert_eq!(ad.to_bits(), au.to_bits(), "axpy_dot at {threads} threads");
        assert_eq!(xd.to_bits(), xu.to_bits(), "xpay_dot at {threads} threads");
        // dotn vs k separate dot_parallels.
        let folded = p.install(|| fused::dotn_parallel(&[(&x, &w), (&x, &x)]));
        assert_eq!(folded[0].to_bits(), reference.4[0].to_bits());
        assert_eq!(folded[1].to_bits(), reference.4[1].to_bits());
    }
}

// ----- SELL-C-σ format parity (ISSUE 9) -------------------------------------
//
// The SELL backend promises *bitwise* identity with CSR — not just to
// round-off — at every thread count. That promise is what lets the format
// auto-selector flip a solve to SELL without perturbing a single output bit
// (and what keeps the resilient engine's plain-vs-resilient identity tests
// meaningful regardless of the storage format in use).

#[test]
fn sell_spmv_is_bitwise_identical_to_csr_across_thread_counts() {
    use feir_sparse::SellMatrix;

    let a = poisson_2d(96); // 9216 rows: above every serial gate.
    let sell = SellMatrix::from_csr(&a).expect("conversion failed");
    let x: Vec<f64> = (0..a.cols())
        .map(|i| (i as f64 * 0.23).sin() * 2.0)
        .collect();
    let mut csr_y = vec![0.0; a.rows()];
    a.spmv(&x, &mut csr_y);

    let mut sell_y = vec![0.0; a.rows()];
    sell.spmv(&x, &mut sell_y);
    assert!(
        csr_y
            .iter()
            .zip(&sell_y)
            .all(|(c, s)| c.to_bits() == s.to_bits()),
        "serial SELL spmv diverged from CSR"
    );

    for threads in [1usize, 2, 4, 8] {
        let p = pool(threads);
        for run in 0..3 {
            let mut y = vec![0.0; a.rows()];
            p.install(|| sell.spmv_parallel(&x, &mut y));
            assert!(
                csr_y
                    .iter()
                    .zip(&y)
                    .all(|(c, s)| c.to_bits() == s.to_bits()),
                "threads={threads} run={run}: SELL spmv_parallel diverged from CSR"
            );
        }
    }
}

#[test]
fn sell_fused_spmv_dot_is_bitwise_identical_to_csr_across_thread_counts() {
    use feir_sparse::{fused, SellMatrix};

    let a = poisson_2d(96);
    let sell = SellMatrix::from_csr(&a).expect("conversion failed");
    let x: Vec<f64> = (0..a.cols())
        .map(|i| (i as f64 * 0.41).cos() * 3.0)
        .collect();

    let mut csr_y = vec![0.0; a.rows()];
    let csr_dot = fused::spmv_rows_dot(&a, 0, a.rows(), &x, &mut csr_y);

    let mut sell_y = vec![0.0; a.rows()];
    let sell_dot = sell.spmv_dot(&x, &mut sell_y);
    assert_eq!(sell_dot.to_bits(), csr_dot.to_bits(), "serial fused dot");
    assert!(csr_y
        .iter()
        .zip(&sell_y)
        .all(|(c, s)| c.to_bits() == s.to_bits()));

    // The parallel kernels fold per DOT_CHUNK (a different — but equally
    // deterministic — fold than the serial single-accumulator one), so the
    // parallel reference is CSR's parallel fused kernel in the same pool.
    for threads in [1usize, 2, 4, 8] {
        let p = pool(threads);
        let (y, d, ref_y, ref_d) = p.install(|| {
            let mut y = vec![0.0; a.rows()];
            let d = sell.spmv_dot_parallel(&x, &mut y);
            let mut ref_y = vec![0.0; a.rows()];
            let ref_d = fused::spmv_dot_parallel(&a, &x, &mut ref_y);
            (y, d, ref_y, ref_d)
        });
        assert_eq!(
            d.to_bits(),
            ref_d.to_bits(),
            "threads={threads}: SELL fused dot diverged from CSR"
        );
        assert!(
            ref_y
                .iter()
                .zip(&y)
                .all(|(c, s)| c.to_bits() == s.to_bits()),
            "threads={threads}: SELL fused y diverged from CSR"
        );
    }
}

#[test]
fn backend_dispatch_is_bitwise_identical_across_formats() {
    use feir_sparse::{SpmvBackend, SpmvFormat};

    let a = poisson_2d(80);
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.17).sin()).collect();
    let reference = {
        let op = SpmvBackend::with_format(&a, SpmvFormat::Csr);
        let mut y = vec![0.0; a.rows()];
        let d = op.spmv_dot(&a, &x, &mut y);
        (y, d)
    };
    for format in [SpmvFormat::Sell, SpmvFormat::Auto] {
        let op = SpmvBackend::with_format(&a, format);
        let mut y = vec![0.0; a.rows()];
        let d = op.spmv_dot(&a, &x, &mut y);
        assert_eq!(d.to_bits(), reference.1.to_bits(), "{format:?} fused dot");
        assert!(
            reference
                .0
                .iter()
                .zip(&y)
                .all(|(c, s)| c.to_bits() == s.to_bits()),
            "{format:?}: dispatched spmv_dot diverged from CSR"
        );
        let p = pool(4);
        let mut y = vec![0.0; a.rows()];
        p.install(|| op.spmv_parallel(&a, &x, &mut y));
        let mut csr_y = vec![0.0; a.rows()];
        p.install(|| a.spmv_parallel(&x, &mut csr_y));
        assert!(
            csr_y
                .iter()
                .zip(&y)
                .all(|(c, s)| c.to_bits() == s.to_bits()),
            "{format:?}: dispatched spmv_parallel diverged from CSR"
        );
    }
}

#[test]
fn dot_parallel_serial_gate_changes_scheduling_not_values() {
    // Above one DOT_CHUNK but below the parallel gate: the gated fast path
    // must still produce the chunk-ordered fold, at every pool size.
    let (x, y) = test_vectors(3 * vecops::DOT_CHUNK + 17);
    let reference = pool(1).install(|| vecops::dot_parallel(&x, &y));
    for threads in [2usize, 8] {
        let p = pool(threads);
        let gated = p.install(|| vecops::dot_parallel(&x, &y));
        assert_eq!(gated.to_bits(), reference.to_bits(), "{threads} threads");
    }
    // And the chunk fold is *not* the plain serial fold (the gate must not
    // silently change the reduction semantics).
    let plain = vecops::dot(&x, &y);
    assert!(
        plain.to_bits() != reference.to_bits() || (plain - reference).abs() == 0.0,
        "sanity: chunked and plain folds may only coincide by value"
    );
}
