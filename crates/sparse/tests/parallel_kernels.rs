//! Parallel-kernel acceptance tests: `spmv_parallel` / `dot_parallel`
//! (1) match the serial kernels to round-off, (2) are bitwise-deterministic
//! across repeated runs and across thread counts, and (3) demonstrably
//! execute on more than one pool worker for large inputs.
//!
//! The container may expose a single hardware core, so every test builds its
//! pools explicitly with `ThreadPoolBuilder::num_threads` instead of relying
//! on `available_parallelism`.

use feir_sparse::generators::poisson_2d;
use feir_sparse::vecops;

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction failed")
}

fn test_vectors(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() / 5.0).collect();
    (x, y)
}

#[test]
fn dot_parallel_matches_serial_to_roundoff() {
    let (x, y) = test_vectors(100_000);
    let serial = vecops::dot(&x, &y);
    for threads in [1usize, 2, 8] {
        let parallel = pool(threads).install(|| vecops::dot_parallel(&x, &y));
        let tol = 1e-12 * serial.abs().max(1.0);
        assert!(
            (serial - parallel).abs() < tol,
            "threads={threads}: serial {serial} vs parallel {parallel}"
        );
    }
}

#[test]
fn dot_parallel_is_bitwise_deterministic_across_runs_and_thread_counts() {
    let (x, y) = test_vectors(150_000);
    // The documented contract: the left-to-right fold of fixed DOT_CHUNK
    // partial sums, independent of the pool.
    let reference: f64 = x
        .chunks(vecops::DOT_CHUNK)
        .zip(y.chunks(vecops::DOT_CHUNK))
        .map(|(xc, yc)| vecops::dot(xc, yc))
        .sum();
    for threads in [1usize, 2, 4, 8] {
        let p = pool(threads);
        for run in 0..5 {
            let value = p.install(|| vecops::dot_parallel(&x, &y));
            assert_eq!(
                value.to_bits(),
                reference.to_bits(),
                "threads={threads} run={run}"
            );
        }
    }
}

#[test]
fn spmv_parallel_is_bitwise_identical_to_serial_at_any_thread_count() {
    let a = poisson_2d(96); // 9216 rows: several chunks at every pool size
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).sin()).collect();
    let mut serial = vec![0.0; a.rows()];
    a.spmv(&x, &mut serial);
    for threads in [1usize, 2, 8] {
        let p = pool(threads);
        for run in 0..3 {
            let mut parallel = vec![0.0; a.rows()];
            p.install(|| a.spmv_parallel(&x, &mut parallel));
            assert!(
                serial
                    .iter()
                    .zip(&parallel)
                    .all(|(s, q)| s.to_bits() == q.to_bits()),
                "threads={threads} run={run}: spmv_parallel diverged from serial"
            );
        }
    }
}

#[test]
fn axpy_and_xpay_parallel_are_bitwise_identical_to_serial() {
    let (x, base) = test_vectors(80_000);
    for threads in [1usize, 2, 8] {
        let p = pool(threads);
        let mut serial = base.clone();
        let mut parallel = base.clone();
        vecops::axpy(0.731, &x, &mut serial);
        p.install(|| vecops::axpy_parallel(0.731, &x, &mut parallel));
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(s, q)| s.to_bits() == q.to_bits()));

        let mut serial = base.clone();
        let mut parallel = base.clone();
        vecops::xpay(&x, -1.25, &mut serial);
        p.install(|| vecops::xpay_parallel(&x, -1.25, &mut parallel));
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(s, q)| s.to_bits() == q.to_bits()));
    }
}

/// Runs `kernel` repeatedly on a fresh 4-worker pool until at least two
/// distinct workers have executed jobs, and asserts that they did. The caller
/// parks while its chunks run, so every chunk executes on a pool worker; the
/// retry bounds scheduling noise on a single hardware core.
fn assert_runs_on_multiple_workers(name: &str, mut kernel: impl FnMut()) {
    let p = pool(4);
    let mut counts = Vec::new();
    for _ in 0..50 {
        p.install(&mut kernel);
        counts = p.job_counts();
        if counts.iter().filter(|&&c| c > 0).count() > 1 {
            break;
        }
    }
    let active = counts.iter().filter(|&&c| c > 0).count();
    assert!(
        active > 1,
        "{name}: expected chunks on >1 worker, job counts: {counts:?}"
    );
}

#[test]
fn spmv_executes_on_multiple_workers_for_large_inputs() {
    let a = poisson_2d(96);
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).cos()).collect();
    let mut y = vec![0.0; a.rows()];
    assert_runs_on_multiple_workers("spmv_parallel", || {
        a.spmv_parallel(&x, &mut y);
        std::hint::black_box(&mut y);
    });
}

#[test]
fn dot_executes_on_multiple_workers_for_large_inputs() {
    // Isolated from spmv so a silently-sequential dot_parallel cannot hide
    // behind another kernel's pool jobs.
    let (u, v) = test_vectors(200_000);
    assert_runs_on_multiple_workers("dot_parallel", || {
        std::hint::black_box(vecops::dot_parallel(&u, &v));
    });
}

#[test]
fn axpy_executes_on_multiple_workers_for_large_inputs() {
    let (x, mut y) = test_vectors(200_000);
    assert_runs_on_multiple_workers("axpy_parallel", || {
        vecops::axpy_parallel(1.0000001, &x, &mut y);
        std::hint::black_box(&mut y);
    });
}

#[test]
fn norm_parallel_agrees_with_serial() {
    let (x, _) = test_vectors(64_000);
    let p = pool(3);
    let serial = vecops::norm2(&x);
    let parallel = p.install(|| vecops::norm2_parallel(&x));
    assert!((serial - parallel).abs() < 1e-12 * serial.max(1.0));
    let serial_sq = vecops::norm2_squared(&x);
    let parallel_sq = p.install(|| vecops::norm2_squared_parallel(&x));
    assert!((serial_sq - parallel_sq).abs() < 1e-11 * serial_sq.max(1.0));
}
