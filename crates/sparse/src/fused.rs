//! Fused BLAS-1 / SpMV kernels: one memory sweep where the textbook loop
//! takes two or three.
//!
//! The paper's premise is that large-machine Krylov iterations are bound by
//! memory traffic and synchronizing reductions, not flops. Every kernel here
//! merges an update (or a matvec) with the reduction that immediately
//! consumes its output, so the hot path reads each vector once per iteration
//! instead of once per operation:
//!
//! * [`spmv_dot`] — `y = A·x` and `⟨x, y⟩` in one sweep over the rows;
//! * [`spmv_rows_dot`] — the block-row form used by the distributed solvers
//!   (`q ⇐ A·d` fused with the local `⟨d, q⟩` partial);
//! * [`axpy_norm2`] — `y ← y + α·x` fused with `‖y‖²` (the `g ⇐ g − α·q`
//!   update fused with the next iteration's `ε`);
//! * [`axpy_dot`] / [`xpay_dot`] — update fused with a dot against a third
//!   vector (the merged-CG recurrence updates that also produce the next
//!   iteration's reduction partials);
//! * [`dotn`] — `k` inner products folded in a single pass (the batched
//!   scalar vector that merged-reduction CG allreduces once per iteration).
//!
//! # Bitwise contract
//!
//! Each fused kernel is **bitwise-identical to the unfused composition it
//! replaces**, in both the serial and the parallel form:
//!
//! * the serial kernels accumulate in element order, exactly like
//!   [`vecops::dot`](crate::vecops::dot) run after the unfused update — the
//!   update of element `i` completes before element `i` enters the
//!   accumulator, and multiplication order within a term is preserved;
//! * the parallel kernels reduce over the same fixed
//!   [`DOT_CHUNK`] boundaries as
//!   [`vecops::dot_parallel`](crate::vecops::dot_parallel), folding per-chunk
//!   partials in chunk order — bitwise-identical across thread counts *and*
//!   to the unfused parallel composition;
//! * the serial gates (small inputs, single-worker pool) compute exactly the
//!   same folds on one thread, so gating changes scheduling, never values.
//!
//! This is what lets the classic CG/PCG paths adopt the fused kernels while
//! staying bitwise-identical to their pre-fusion results (asserted in
//! `tests/parallel_kernels.rs`).

use rayon::prelude::*;

use crate::vecops::{dot, DOT_CHUNK, MIN_PARALLEL_DOT_ELEMS};
use crate::CsrMatrix;

/// One row of the product: `Σ_c A[r,c]·x[c]` in stored-column order.
///
/// Deliberately the plain loop, NOT the 4-wide unrolled kernel the plain
/// sweeps in [`crate::csr`] use: here every row product feeds the serial
/// `acc += x[r]·y_r` dot chain, and on the short banded rows of the bench
/// operators the unroll's chunk setup stalls that chain (~30% slower
/// `spmv_dot/fused` in `bench_snapshot`). Same adds in the same order
/// either way, so the bitwise contract is unaffected.
#[inline]
fn row_product(a: &CsrMatrix, r: usize, x: &[f64]) -> f64 {
    let (cols, vals) = a.row(r);
    let mut acc = 0.0;
    for (c, v) in cols.iter().zip(vals) {
        acc += v * x[*c];
    }
    acc
}

/// Fused `y = A·x` with `⟨x, y⟩`, serial: the dot accumulates in row order,
/// so the result is bitwise-identical to [`CsrMatrix::spmv`] followed by
/// [`vecops::dot`](crate::vecops::dot)`(x, y)`.
///
/// # Panics
/// Panics if the matrix is not square or the slice lengths mismatch.
pub fn spmv_dot(a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> f64 {
    assert_eq!(a.rows(), a.cols(), "spmv_dot: matrix must be square");
    assert_eq!(x.len(), a.cols(), "spmv_dot: x has wrong length");
    assert_eq!(y.len(), a.rows(), "spmv_dot: y has wrong length");
    let mut acc = 0.0;
    for (r, out) in y.iter_mut().enumerate() {
        let v = row_product(a, r, x);
        *out = v;
        acc += x[r] * v;
    }
    acc
}

/// Fused block-row `y = (A·x)[row_begin..row_end]` with the local partial
/// `⟨x[row_begin..row_end], y⟩` — the distributed `q ⇐ A·d` fused with this
/// rank's `⟨d, q⟩` contribution. Serial, row-order accumulation: bitwise
/// equal to [`CsrMatrix::spmv_rows`] followed by a serial dot of the owned
/// slices.
pub fn spmv_rows_dot(
    a: &CsrMatrix,
    row_begin: usize,
    row_end: usize,
    x: &[f64],
    y: &mut [f64],
) -> f64 {
    assert!(row_end <= a.rows());
    assert_eq!(x.len(), a.cols());
    assert_eq!(y.len(), row_end - row_begin);
    let mut acc = 0.0;
    for (out, r) in y.iter_mut().zip(row_begin..row_end) {
        let v = row_product(a, r, x);
        *out = v;
        acc += x[r] * v;
    }
    acc
}

/// Rayon-parallel [`spmv_dot`]: row blocks of [`DOT_CHUNK`] rows each produce
/// their output rows *and* their partial dot in one pass; partials fold in
/// block order. Bitwise-identical to [`CsrMatrix::spmv_parallel`] followed
/// by [`vecops::dot_parallel`](crate::vecops::dot_parallel) at every thread
/// count (same element values, same chunk boundaries, same fold order).
pub fn spmv_dot_parallel(a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> f64 {
    assert_eq!(a.rows(), a.cols(), "spmv_dot: matrix must be square");
    assert_eq!(x.len(), a.cols(), "spmv_dot: x has wrong length");
    assert_eq!(y.len(), a.rows(), "spmv_dot: y has wrong length");
    if a.rows() < MIN_PARALLEL_DOT_ELEMS.min(crate::csr::MIN_PARALLEL_SPMV_ROWS)
        || rayon::current_num_threads() <= 1
    {
        // Single-threaded fast path: same chunk-ordered fold, no fan-out.
        let mut total = 0.0;
        for (ci, yc) in y.chunks_mut(DOT_CHUNK).enumerate() {
            let base = ci * DOT_CHUNK;
            let mut acc = 0.0;
            for (i, out) in yc.iter_mut().enumerate() {
                let v = row_product(a, base + i, x);
                *out = v;
                acc += x[base + i] * v;
            }
            total += acc;
        }
        return total;
    }
    y.par_chunks_mut(DOT_CHUNK)
        .enumerate()
        .map(|(ci, yc)| {
            let base = ci * DOT_CHUNK;
            let mut acc = 0.0;
            for (i, out) in yc.iter_mut().enumerate() {
                let v = row_product(a, base + i, x);
                *out = v;
                acc += x[base + i] * v;
            }
            acc
        })
        .sum()
}

/// Fused `y ← y + α·x` with `‖y‖²`, serial: element-order accumulation,
/// bitwise-identical to [`vecops::axpy`](crate::vecops::axpy) followed by
/// [`vecops::norm2_squared`](crate::vecops::norm2_squared).
pub fn axpy_norm2(alpha: f64, x: &[f64], y: &mut [f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_norm2: length mismatch");
    let mut acc = 0.0;
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
        acc += *yi * *yi;
    }
    acc
}

/// Rayon-parallel [`axpy_norm2`] over fixed [`DOT_CHUNK`] chunks, partials
/// folded in chunk order: bitwise-identical to
/// [`vecops::axpy_parallel`](crate::vecops::axpy_parallel) followed by
/// [`vecops::norm2_squared_parallel`](crate::vecops::norm2_squared_parallel)
/// at every thread count.
pub fn axpy_norm2_parallel(alpha: f64, x: &[f64], y: &mut [f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_norm2: length mismatch");
    if y.len() < MIN_PARALLEL_DOT_ELEMS || rayon::current_num_threads() <= 1 {
        let mut total = 0.0;
        for (yc, xc) in y.chunks_mut(DOT_CHUNK).zip(x.chunks(DOT_CHUNK)) {
            let mut acc = 0.0;
            for (yi, xi) in yc.iter_mut().zip(xc) {
                *yi += alpha * xi;
                acc += *yi * *yi;
            }
            total += acc;
        }
        return total;
    }
    y.par_chunks_mut(DOT_CHUNK)
        .zip(x.par_chunks(DOT_CHUNK))
        .map(|(yc, xc)| {
            let mut acc = 0.0;
            for (yi, xi) in yc.iter_mut().zip(xc) {
                *yi += alpha * xi;
                acc += *yi * *yi;
            }
            acc
        })
        .sum()
}

/// Fused `y ← y + α·x` with `⟨y, w⟩` against a third vector, serial. The
/// merged-CG sweep uses this for recurrence updates whose result feeds the
/// next iteration's batched reduction (e.g. `w ⇐ w − α·z` with
/// `δ' = ⟨w, g⟩`). Bitwise-identical to the unfused `axpy` + serial dot.
pub fn axpy_dot(alpha: f64, x: &[f64], y: &mut [f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_dot: length mismatch");
    assert_eq!(w.len(), y.len(), "axpy_dot: length mismatch");
    let mut acc = 0.0;
    for ((yi, xi), wi) in y.iter_mut().zip(x).zip(w) {
        *yi += alpha * xi;
        acc += *yi * wi;
    }
    acc
}

/// Rayon-parallel [`axpy_dot`] with the [`DOT_CHUNK`] fold guarantee.
pub fn axpy_dot_parallel(alpha: f64, x: &[f64], y: &mut [f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_dot: length mismatch");
    assert_eq!(w.len(), y.len(), "axpy_dot: length mismatch");
    if y.len() < MIN_PARALLEL_DOT_ELEMS || rayon::current_num_threads() <= 1 {
        let mut total = 0.0;
        for ((yc, xc), wc) in y
            .chunks_mut(DOT_CHUNK)
            .zip(x.chunks(DOT_CHUNK))
            .zip(w.chunks(DOT_CHUNK))
        {
            let mut acc = 0.0;
            for ((yi, xi), wi) in yc.iter_mut().zip(xc).zip(wc) {
                *yi += alpha * xi;
                acc += *yi * wi;
            }
            total += acc;
        }
        return total;
    }
    y.par_chunks_mut(DOT_CHUNK)
        .zip(x.par_chunks(DOT_CHUNK))
        .zip(w.par_chunks(DOT_CHUNK))
        .map(|((yc, xc), wc)| {
            let mut acc = 0.0;
            for ((yi, xi), wi) in yc.iter_mut().zip(xc).zip(wc) {
                *yi += alpha * xi;
                acc += *yi * wi;
            }
            acc
        })
        .sum()
}

/// Fused `y ← x + β·y` with `⟨y, w⟩`, serial — the `d ⇐ g + β·d` form of
/// the recurrence updates, fused with a dot against a third vector.
/// Bitwise-identical to [`vecops::xpay`](crate::vecops::xpay) + serial dot.
pub fn xpay_dot(x: &[f64], beta: f64, y: &mut [f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "xpay_dot: length mismatch");
    assert_eq!(w.len(), y.len(), "xpay_dot: length mismatch");
    let mut acc = 0.0;
    for ((yi, xi), wi) in y.iter_mut().zip(x).zip(w) {
        *yi = xi + beta * *yi;
        acc += *yi * wi;
    }
    acc
}

/// Rayon-parallel [`xpay_dot`] with the [`DOT_CHUNK`] fold guarantee.
pub fn xpay_dot_parallel(x: &[f64], beta: f64, y: &mut [f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "xpay_dot: length mismatch");
    assert_eq!(w.len(), y.len(), "xpay_dot: length mismatch");
    if y.len() < MIN_PARALLEL_DOT_ELEMS || rayon::current_num_threads() <= 1 {
        let mut total = 0.0;
        for ((yc, xc), wc) in y
            .chunks_mut(DOT_CHUNK)
            .zip(x.chunks(DOT_CHUNK))
            .zip(w.chunks(DOT_CHUNK))
        {
            let mut acc = 0.0;
            for ((yi, xi), wi) in yc.iter_mut().zip(xc).zip(wc) {
                *yi = xi + beta * *yi;
                acc += *yi * wi;
            }
            total += acc;
        }
        return total;
    }
    y.par_chunks_mut(DOT_CHUNK)
        .zip(x.par_chunks(DOT_CHUNK))
        .zip(w.par_chunks(DOT_CHUNK))
        .map(|((yc, xc), wc)| {
            let mut acc = 0.0;
            for ((yi, xi), wi) in yc.iter_mut().zip(xc).zip(wc) {
                *yi = xi + beta * *yi;
                acc += *yi * wi;
            }
            acc
        })
        .sum()
}

/// `k` inner products in one pass: `out[j] = ⟨pairs[j].0, pairs[j].1⟩`.
///
/// Each accumulator folds in element order independently, so every component
/// is bitwise-identical to the serial [`vecops::dot`](crate::vecops::dot) of
/// its pair — the loop jam changes memory traffic (one sweep instead of `k`
/// when the pairs share vectors), never values.
///
/// # Panics
/// Panics if any slice length differs from the first pair's.
pub fn dotn(pairs: &[(&[f64], &[f64])]) -> Vec<f64> {
    let Some(&(first, _)) = pairs.first() else {
        return Vec::new();
    };
    let n = first.len();
    for (x, y) in pairs {
        assert_eq!(x.len(), n, "dotn: length mismatch");
        assert_eq!(y.len(), n, "dotn: length mismatch");
    }
    // The merged solvers batch 2 (CG) or 3 (PCG) scalars; those arities get
    // bounds-check-free zipped loops (independent accumulators, so the
    // compiler vectorizes each like a plain dot while the shared input
    // vectors are read once).
    match *pairs {
        [(x0, y0), (x1, y1)] => {
            let (mut a0, mut a1) = (0.0, 0.0);
            for ((u0, v0), (u1, v1)) in x0.iter().zip(y0).zip(x1.iter().zip(y1)) {
                a0 += u0 * v0;
                a1 += u1 * v1;
            }
            vec![a0, a1]
        }
        [(x0, y0), (x1, y1), (x2, y2)] => {
            let (mut a0, mut a1, mut a2) = (0.0, 0.0, 0.0);
            for (((u0, v0), (u1, v1)), (u2, v2)) in x0
                .iter()
                .zip(y0)
                .zip(x1.iter().zip(y1))
                .zip(x2.iter().zip(y2))
            {
                a0 += u0 * v0;
                a1 += u1 * v1;
                a2 += u2 * v2;
            }
            vec![a0, a1, a2]
        }
        _ => {
            let mut acc = vec![0.0; pairs.len()];
            for i in 0..n {
                for (a, (x, y)) in acc.iter_mut().zip(pairs) {
                    *a += x[i] * y[i];
                }
            }
            acc
        }
    }
}

/// Rayon-parallel [`dotn`]: per-[`DOT_CHUNK`] partial vectors folded
/// component-wise in chunk order, so every component is bitwise-identical to
/// [`vecops::dot_parallel`](crate::vecops::dot_parallel) of its pair at any
/// thread count.
pub fn dotn_parallel(pairs: &[(&[f64], &[f64])]) -> Vec<f64> {
    let Some(&(first, _)) = pairs.first() else {
        return Vec::new();
    };
    let n = first.len();
    for (x, y) in pairs {
        assert_eq!(x.len(), n, "dotn: length mismatch");
        assert_eq!(y.len(), n, "dotn: length mismatch");
    }
    let chunk_dots = |ci: usize| -> Vec<f64> {
        let begin = ci * DOT_CHUNK;
        let end = (begin + DOT_CHUNK).min(n);
        pairs
            .iter()
            .map(|(x, y)| dot(&x[begin..end], &y[begin..end]))
            .collect()
    };
    let num_chunks = n.div_ceil(DOT_CHUNK);
    let partials: Vec<Vec<f64>> = if n < MIN_PARALLEL_DOT_ELEMS || rayon::current_num_threads() <= 1
    {
        (0..num_chunks).map(chunk_dots).collect()
    } else {
        (0..num_chunks).into_par_iter().map(chunk_dots).collect()
    };
    let mut acc = vec![0.0; pairs.len()];
    for partial in partials {
        for (a, p) in acc.iter_mut().zip(partial) {
            *a += p;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson_2d;
    use crate::vecops;

    fn vectors(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() / 5.0).collect();
        let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).sin() - 0.4).collect();
        (x, y, w)
    }

    #[test]
    fn spmv_dot_matches_unfused_serial_bitwise() {
        let a = poisson_2d(24);
        let (x, _, _) = vectors(a.cols());
        let mut y_unfused = vec![0.0; a.rows()];
        a.spmv(&x, &mut y_unfused);
        let expected = vecops::dot(&x, &y_unfused);
        let mut y = vec![0.0; a.rows()];
        let fused = spmv_dot(&a, &x, &mut y);
        assert_eq!(fused.to_bits(), expected.to_bits());
        assert_eq!(y, y_unfused);
    }

    #[test]
    fn spmv_rows_dot_matches_slice_composition() {
        let a = poisson_2d(16);
        let (x, _, _) = vectors(a.cols());
        let (begin, end) = (40, 200);
        let mut block = vec![0.0; end - begin];
        a.spmv_rows(begin, end, &x, &mut block);
        let expected = vecops::dot(&x[begin..end], &block);
        let mut fused_block = vec![0.0; end - begin];
        let fused = spmv_rows_dot(&a, begin, end, &x, &mut fused_block);
        assert_eq!(fused.to_bits(), expected.to_bits());
        assert_eq!(block, fused_block);
    }

    #[test]
    fn spmv_dot_parallel_matches_unfused_parallel_bitwise() {
        let a = poisson_2d(70); // 4900 rows: above the serial gates.
        let (x, _, _) = vectors(a.cols());
        let mut y_unfused = vec![0.0; a.rows()];
        a.spmv_parallel(&x, &mut y_unfused);
        let expected = vecops::dot_parallel(&x, &y_unfused);
        let mut y = vec![0.0; a.rows()];
        let fused = spmv_dot_parallel(&a, &x, &mut y);
        assert_eq!(fused.to_bits(), expected.to_bits());
        assert_eq!(y, y_unfused);
    }

    #[test]
    fn axpy_norm2_matches_unfused_both_forms() {
        for n in [100usize, 10_000] {
            let (x, y0, _) = vectors(n);
            let mut y_unfused = y0.clone();
            vecops::axpy(0.75, &x, &mut y_unfused);
            let serial_expected = vecops::norm2_squared(&y_unfused);
            let mut y = y0.clone();
            let fused = axpy_norm2(0.75, &x, &mut y);
            assert_eq!(fused.to_bits(), serial_expected.to_bits());
            assert_eq!(y, y_unfused);

            let mut y_unfused_p = y0.clone();
            vecops::axpy_parallel(0.75, &x, &mut y_unfused_p);
            let parallel_expected = vecops::norm2_squared_parallel(&y_unfused_p);
            let mut y_p = y0.clone();
            let fused_p = axpy_norm2_parallel(0.75, &x, &mut y_p);
            assert_eq!(fused_p.to_bits(), parallel_expected.to_bits());
            assert_eq!(y_p, y_unfused_p);
        }
    }

    #[test]
    fn axpy_dot_and_xpay_dot_match_unfused() {
        for n in [64usize, 9_000] {
            let (x, y0, w) = vectors(n);

            let mut y = y0.clone();
            vecops::axpy(-0.3, &x, &mut y);
            let expected = vecops::dot(&y, &w);
            let mut y_f = y0.clone();
            let fused = axpy_dot(-0.3, &x, &mut y_f, &w);
            assert_eq!(fused.to_bits(), expected.to_bits());
            assert_eq!(y, y_f);

            let mut y = y0.clone();
            vecops::xpay(&x, 1.2, &mut y);
            let expected = vecops::dot(&y, &w);
            let mut y_f = y0.clone();
            let fused = xpay_dot(&x, 1.2, &mut y_f, &w);
            assert_eq!(fused.to_bits(), expected.to_bits());
            assert_eq!(y, y_f);

            let mut y = y0.clone();
            vecops::axpy_parallel(-0.3, &x, &mut y);
            let expected = vecops::dot_parallel(&y, &w);
            let mut y_f = y0.clone();
            let fused = axpy_dot_parallel(-0.3, &x, &mut y_f, &w);
            assert_eq!(fused.to_bits(), expected.to_bits());
            assert_eq!(y, y_f);

            let mut y = y0.clone();
            vecops::xpay_parallel(&x, 1.2, &mut y);
            let expected = vecops::dot_parallel(&y, &w);
            let mut y_f = y0.clone();
            let fused = xpay_dot_parallel(&x, 1.2, &mut y_f, &w);
            assert_eq!(fused.to_bits(), expected.to_bits());
            assert_eq!(y, y_f);
        }
    }

    #[test]
    fn dotn_folds_k_dots_bitwise() {
        for n in [5usize, 5_000] {
            let (x, y, w) = vectors(n);
            let serial = dotn(&[(&x, &y), (&x, &x), (&w, &y)]);
            assert_eq!(serial[0].to_bits(), vecops::dot(&x, &y).to_bits());
            assert_eq!(serial[1].to_bits(), vecops::dot(&x, &x).to_bits());
            assert_eq!(serial[2].to_bits(), vecops::dot(&w, &y).to_bits());
            let parallel = dotn_parallel(&[(&x, &y), (&x, &x), (&w, &y)]);
            assert_eq!(
                parallel[0].to_bits(),
                vecops::dot_parallel(&x, &y).to_bits()
            );
            assert_eq!(
                parallel[1].to_bits(),
                vecops::dot_parallel(&x, &x).to_bits()
            );
            assert_eq!(
                parallel[2].to_bits(),
                vecops::dot_parallel(&w, &y).to_bits()
            );
        }
        assert!(dotn(&[]).is_empty());
        assert!(dotn_parallel(&[]).is_empty());
    }
}
