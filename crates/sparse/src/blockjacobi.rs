//! Block-Jacobi preconditioner.
//!
//! The paper's preconditioned CG uses block-Jacobi with blocks matching the
//! memory-page size (512×512), so that the factorization of the diagonal
//! blocks needed for the *recovery* of a lost page is already available from
//! the preconditioner — one of the reasons the paper selects it (Section 5.1).

use crate::blocking::{BlockFactor, BlockPartition, DiagonalBlocks};
use crate::{CsrMatrix, SparseError};

/// Solves one diagonal-block system `M_bb z = r` with the pre-computed
/// factor, falling back to point-Jacobi on `diag[diag_range]` for singular
/// blocks — the single dispatch shared by the global and rank-local
/// preconditioners so their solves can never diverge.
fn solve_factored_block(
    factor: &BlockFactor,
    diag: &[f64],
    diag_range: std::ops::Range<usize>,
    r: &[f64],
    z: &mut [f64],
) {
    match factor {
        BlockFactor::Cholesky(c) => {
            z.copy_from_slice(r);
            c.solve_in_place(z);
        }
        BlockFactor::Lu(lu) => {
            let solved = lu.solve(r);
            z.copy_from_slice(&solved);
        }
        BlockFactor::Singular => {
            for ((zi, ri), idx) in z.iter_mut().zip(r).zip(diag_range) {
                let d = diag[idx];
                *zi = if d.abs() > f64::EPSILON { ri / d } else { *ri };
            }
        }
    }
}

/// A block-Jacobi preconditioner `M = blockdiag(A_00, A_11, …)`.
///
/// `apply` solves `M z = r` block by block using the pre-computed Cholesky /
/// LU factors. Singular blocks fall back to a simple point-Jacobi (diagonal)
/// solve on their rows so the preconditioner never fails outright.
#[derive(Debug, Clone)]
pub struct BlockJacobi {
    blocks: DiagonalBlocks,
    /// Point-Jacobi fallback for singular blocks.
    diag: Vec<f64>,
}

impl BlockJacobi {
    /// Builds the preconditioner over the given block partition.
    ///
    /// # Errors
    /// Returns an error if `a` is not square or does not match the partition.
    pub fn new(a: &CsrMatrix, partition: BlockPartition, spd: bool) -> Result<Self, SparseError> {
        let blocks = DiagonalBlocks::factorize(a, partition, spd)?;
        let diag = a.diagonal();
        Ok(Self { blocks, diag })
    }

    /// Builds the preconditioner with page-sized blocks (the paper's default).
    pub fn with_page_blocks(a: &CsrMatrix, spd: bool) -> Result<Self, SparseError> {
        Self::new(a, BlockPartition::pages(a.rows()), spd)
    }

    /// The block partition used by this preconditioner.
    pub fn partition(&self) -> BlockPartition {
        self.blocks.partition()
    }

    /// Access to the underlying factorized diagonal blocks (shared with the
    /// FEIR recovery, which is what makes recovery cheap under PCG).
    pub fn diagonal_blocks(&self) -> &DiagonalBlocks {
        &self.blocks
    }

    /// Applies the preconditioner: solves `M z = r`.
    ///
    /// # Panics
    /// Panics if the slice lengths do not match the partition.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        let partition = self.blocks.partition();
        assert_eq!(r.len(), partition.len());
        assert_eq!(z.len(), partition.len());
        for (b, range) in partition.iter() {
            self.apply_block(b, &r[range.clone()], &mut z[range]);
        }
    }

    /// Applies the preconditioner to a single block — the *partial
    /// application* the paper relies on to recover preconditioned vectors
    /// cheaply (Section 3.2).
    pub fn apply_block(&self, block: usize, r: &[f64], z: &mut [f64]) {
        solve_factored_block(
            self.blocks.factor(block),
            &self.diag,
            self.blocks.partition().range(block),
            r,
            z,
        );
    }
}

/// Block-Jacobi preconditioner over a *contiguous row range* of a larger
/// matrix — the rank-local form used by the distributed PCG.
///
/// On a block-row distributed machine every rank owns a contiguous slice of
/// rows and applies the preconditioner only to its own residual block: the
/// diagonal blocks never cross a rank boundary, so the application needs no
/// communication. `LocalBlockJacobi` factorizes exactly the diagonal blocks
/// of one rank's page partition (at global row offset `rows.start`) and
/// applies them to rank-local slices. This is also the factorization the
/// engine's exact recovery of preconditioned-residual pages reuses: a lost
/// `z` page is reconstructed by re-solving `M_pp z_p = g_p` with the same
/// factor (the paper's Section 3.2 partial application).
#[derive(Debug, Clone)]
pub struct LocalBlockJacobi {
    factors: Vec<BlockFactor>,
    /// Partition of the *local* index space `0..rows.len()`.
    partition: BlockPartition,
    /// Global row offset of local index 0.
    offset: usize,
    /// Rank-local diagonal, the point-Jacobi fallback for singular blocks.
    diag: Vec<f64>,
}

impl LocalBlockJacobi {
    /// Factorizes the diagonal blocks of `a` restricted to the contiguous
    /// global `rows`, partitioned into blocks of at most `block_size` rows.
    ///
    /// # Errors
    /// Returns an error if `a` is not square or `rows` exceeds its dimension.
    pub fn new(
        a: &CsrMatrix,
        rows: std::ops::Range<usize>,
        block_size: usize,
        spd: bool,
    ) -> Result<Self, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if rows.end > a.rows() || rows.start > rows.end {
            return Err(SparseError::DimensionMismatch {
                expected: (a.rows(), a.rows()),
                found: (rows.start, rows.end),
            });
        }
        let partition = BlockPartition::new(rows.len(), block_size);
        let mut factors = Vec::with_capacity(partition.num_blocks());
        for (_, local) in partition.iter() {
            let gs = rows.start + local.start;
            let ge = rows.start + local.end;
            let block = a.dense_block(gs, ge, gs, ge);
            factors.push(crate::blocking::DiagonalBlocks::factorize_block(
                &block, spd,
            ));
        }
        let full_diag = a.diagonal();
        let diag = full_diag[rows.clone()].to_vec();
        Ok(Self {
            factors,
            partition,
            offset: rows.start,
            diag,
        })
    }

    /// The partition of the local index space.
    pub fn partition(&self) -> BlockPartition {
        self.partition
    }

    /// Global row offset of local index 0.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of local blocks.
    pub fn num_blocks(&self) -> usize {
        self.factors.len()
    }

    /// True if local block `b` has a usable direct factorization.
    pub fn is_solvable(&self, b: usize) -> bool {
        !matches!(self.factors[b], BlockFactor::Singular)
    }

    /// Solves `M_bb z = r` for one local block (`r` and `z` are block-sized
    /// slices). Singular blocks fall back to point-Jacobi on their rows.
    pub fn apply_block(&self, block: usize, r: &[f64], z: &mut [f64]) {
        solve_factored_block(
            &self.factors[block],
            &self.diag,
            self.partition.range(block),
            r,
            z,
        );
    }

    /// Applies the preconditioner to the whole local range, block by block
    /// in block order (deterministic: the distributed plain and resilient
    /// PCG paths both call this sequence and stay bitwise-identical).
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.partition.len());
        assert_eq!(z.len(), self.partition.len());
        for (b, range) in self.partition.iter() {
            self.apply_block(b, &r[range.clone()], &mut z[range]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson_2d;
    use crate::vecops;

    #[test]
    fn block_jacobi_solves_block_diagonal_exactly() {
        // When the matrix is exactly block diagonal, M = A and applying the
        // preconditioner solves the system exactly.
        let n = 32;
        let a = {
            let mut coo = crate::CooMatrix::new(n, n);
            for b in 0..4 {
                for i in 0..8 {
                    for j in 0..8 {
                        let v = if i == j { 10.0 } else { -0.5 };
                        coo.push(b * 8 + i, b * 8 + j, v).unwrap();
                    }
                }
            }
            coo.to_csr()
        };
        let bj = BlockJacobi::new(&a, BlockPartition::new(n, 8), true).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut z = vec![0.0; n];
        bj.apply(&b, &mut z);
        for (zi, xi) in z.iter().zip(&x_true) {
            assert!((zi - xi).abs() < 1e-12);
        }
    }

    #[test]
    fn preconditioned_richardson_step_contracts_error_in_a_norm() {
        // Block-Jacobi on the 5-point Laplacian is a convergent regular
        // splitting, so one Richardson step x1 = M⁻¹ b starting from x0 = 0
        // must reduce the A-norm of the error (the same norm the paper's
        // Lossy-Approach theorems are stated in).
        let a = poisson_2d(16);
        let n = a.rows();
        let b = vec![1.0; n];
        let x_star = a.to_dense().cholesky().unwrap().solve(&b);
        let bj = BlockJacobi::new(&a, BlockPartition::new(n, 64), true).unwrap();
        let mut z = vec![0.0; n];
        bj.apply(&b, &mut z);
        let mut e1 = vec![0.0; n];
        vecops::sub(&x_star, &z, &mut e1);
        let err_before = vecops::a_norm(&a, &x_star); // error of x0 = 0
        let err_after = vecops::a_norm(&a, &e1);
        assert!(
            err_after < err_before,
            "A-norm error did not contract: {err_after} >= {err_before}"
        );
    }

    #[test]
    fn partial_application_matches_full_application() {
        let a = poisson_2d(16);
        let n = a.rows();
        let part = BlockPartition::new(n, 64);
        let bj = BlockJacobi::new(&a, part, true).unwrap();
        let r: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut z_full = vec![0.0; n];
        bj.apply(&r, &mut z_full);
        // Apply only block 2 and compare to the corresponding slice.
        let range = part.range(2);
        let mut z_block = vec![0.0; range.len()];
        bj.apply_block(2, &r[range.clone()], &mut z_block);
        assert_eq!(&z_full[range], z_block.as_slice());
    }

    #[test]
    fn page_block_constructor_uses_page_partition() {
        let a = poisson_2d(40); // 1600 unknowns => 4 pages
        let bj = BlockJacobi::with_page_blocks(&a, true).unwrap();
        assert_eq!(bj.partition().block_size(), crate::PAGE_DOUBLES);
        assert_eq!(bj.partition().num_blocks(), 4);
    }

    #[test]
    fn local_block_jacobi_matches_global_on_aligned_ranges() {
        // Splitting the matrix into two equal rank ranges with the same block
        // size must reproduce the global block-Jacobi application exactly.
        let a = poisson_2d(16); // n = 256
        let n = a.rows();
        let global = BlockJacobi::new(&a, BlockPartition::new(n, 32), true).unwrap();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).cos()).collect();
        let mut z_global = vec![0.0; n];
        global.apply(&r, &mut z_global);
        for (start, end) in [(0usize, 128usize), (128, 256)] {
            let local = LocalBlockJacobi::new(&a, start..end, 32, true).unwrap();
            assert_eq!(local.offset(), start);
            assert_eq!(local.num_blocks(), (end - start) / 32);
            let mut z_local = vec![0.0; end - start];
            local.apply(&r[start..end], &mut z_local);
            assert_eq!(&z_global[start..end], z_local.as_slice());
        }
    }

    #[test]
    fn local_block_jacobi_rejects_out_of_range_rows() {
        let a = poisson_2d(4);
        assert!(LocalBlockJacobi::new(&a, 0..100, 8, true).is_err());
    }

    #[test]
    fn singular_block_falls_back_to_point_jacobi() {
        // Matrix whose second 2x2 diagonal block is entirely zero; the block
        // factorization is singular and the preconditioner must fall back to
        // point-Jacobi (or an identity pass-through where the diagonal is 0)
        // while still producing finite output.
        let mut coo = crate::CooMatrix::new(4, 4);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        coo.push(2, 0, 1.0).unwrap();
        coo.push(3, 0, 1.0).unwrap();
        let a = coo.to_csr();
        let bj = BlockJacobi::new(&a, BlockPartition::new(4, 2), false).unwrap();
        assert!(!bj.diagonal_blocks().is_solvable(1));
        let r = vec![1.0, 1.0, 1.0, 1.0];
        let mut z = vec![0.0; 4];
        bj.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        assert_eq!(z[0], 0.5);
        assert_eq!(z[1], 0.5);
        assert_eq!(z[2], 1.0);
        assert_eq!(z[3], 1.0);
    }
}
