//! Matrix generators: Poisson stencils, anisotropic and jump-coefficient
//! diffusion problems, and random diagonally-dominant SPD matrices.
//!
//! The paper evaluates on nine University-of-Florida SPD matrices and, for the
//! scaling study, on the 27-point stencil discretization of the 3-D Poisson
//! equation used by HPCG. These generators produce matrices with the same
//! structure so every experiment can run without external data.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{CooMatrix, CsrMatrix};

/// 2-D 5-point Laplacian on an `n × n` grid (Dirichlet boundary), size `n²`.
pub fn poisson_2d(n: usize) -> CsrMatrix {
    let size = n * n;
    let mut coo = CooMatrix::with_capacity(size, size, 5 * size);
    let idx = |i: usize, j: usize| i * n + j;
    for i in 0..n {
        for j in 0..n {
            let row = idx(i, j);
            coo.push(row, row, 4.0).expect("in bounds");
            if i > 0 {
                coo.push(row, idx(i - 1, j), -1.0).expect("in bounds");
            }
            if i + 1 < n {
                coo.push(row, idx(i + 1, j), -1.0).expect("in bounds");
            }
            if j > 0 {
                coo.push(row, idx(i, j - 1), -1.0).expect("in bounds");
            }
            if j + 1 < n {
                coo.push(row, idx(i, j + 1), -1.0).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// 3-D 7-point Laplacian on an `n × n × n` grid (Dirichlet boundary), size `n³`.
pub fn poisson_3d_7pt(n: usize) -> CsrMatrix {
    let size = n * n * n;
    let mut coo = CooMatrix::with_capacity(size, size, 7 * size);
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let row = idx(i, j, k);
                coo.push(row, row, 6.0).expect("in bounds");
                if i > 0 {
                    coo.push(row, idx(i - 1, j, k), -1.0).expect("in bounds");
                }
                if i + 1 < n {
                    coo.push(row, idx(i + 1, j, k), -1.0).expect("in bounds");
                }
                if j > 0 {
                    coo.push(row, idx(i, j - 1, k), -1.0).expect("in bounds");
                }
                if j + 1 < n {
                    coo.push(row, idx(i, j + 1, k), -1.0).expect("in bounds");
                }
                if k > 0 {
                    coo.push(row, idx(i, j, k - 1), -1.0).expect("in bounds");
                }
                if k + 1 < n {
                    coo.push(row, idx(i, j, k + 1), -1.0).expect("in bounds");
                }
            }
        }
    }
    coo.to_csr()
}

/// 3-D 27-point stencil on an `n × n × n` grid — the HPCG-style discretization
/// used for the paper's scaling experiment (Figure 5).
///
/// The stencil has value 26 on the diagonal and −1 for each of the (up to) 26
/// neighbours, which is the standard HPCG operator.
pub fn poisson_3d_27pt(n: usize) -> CsrMatrix {
    let size = n * n * n;
    let mut coo = CooMatrix::with_capacity(size, size, 27 * size);
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let row = idx(i, j, k);
                for di in -1i64..=1 {
                    for dj in -1i64..=1 {
                        for dk in -1i64..=1 {
                            let (ni, nj, nk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                            if ni < 0
                                || nj < 0
                                || nk < 0
                                || ni >= n as i64
                                || nj >= n as i64
                                || nk >= n as i64
                            {
                                continue;
                            }
                            let col = idx(ni as usize, nj as usize, nk as usize);
                            let value = if col == row { 26.0 } else { -1.0 };
                            coo.push(row, col, value).expect("in bounds");
                        }
                    }
                }
            }
        }
    }
    coo.to_csr()
}

/// Anisotropic 2-D diffusion operator: the `x`-direction coupling is scaled by
/// `epsilon` (0 < ε ≤ 1). Small ε slows CG convergence, which is how the
/// proxy matrices reproduce the wide range of iteration counts of the paper's
/// test set.
pub fn anisotropic_2d(n: usize, epsilon: f64) -> CsrMatrix {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let size = n * n;
    let mut coo = CooMatrix::with_capacity(size, size, 5 * size);
    let idx = |i: usize, j: usize| i * n + j;
    for i in 0..n {
        for j in 0..n {
            let row = idx(i, j);
            coo.push(row, row, 2.0 + 2.0 * epsilon).expect("in bounds");
            if i > 0 {
                coo.push(row, idx(i - 1, j), -1.0).expect("in bounds");
            }
            if i + 1 < n {
                coo.push(row, idx(i + 1, j), -1.0).expect("in bounds");
            }
            if j > 0 {
                coo.push(row, idx(i, j - 1), -epsilon).expect("in bounds");
            }
            if j + 1 < n {
                coo.push(row, idx(i, j + 1), -epsilon).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// 2-D diffusion with a jump in the coefficient: the right half of the domain
/// has conductivity `jump` times the left half. Mimics the heterogeneous
/// material problems (thermal / thermomechanical families) in the paper's
/// matrix set.
pub fn jump_coefficient_2d(n: usize, jump: f64) -> CsrMatrix {
    assert!(jump > 0.0, "jump must be positive");
    let size = n * n;
    let mut coo = CooMatrix::with_capacity(size, size, 5 * size);
    let idx = |i: usize, j: usize| i * n + j;
    let coeff = |_i: usize, j: usize| if j >= n / 2 { jump } else { 1.0 };
    for i in 0..n {
        for j in 0..n {
            let row = idx(i, j);
            let c = coeff(i, j);
            let mut diag = 0.0;
            let push_neighbor = |coo: &mut CooMatrix, col: usize, w: f64| {
                coo.push(row, col, -w).expect("in bounds");
            };
            if i > 0 {
                let w = 0.5 * (c + coeff(i - 1, j));
                push_neighbor(&mut coo, idx(i - 1, j), w);
                diag += w;
            }
            if i + 1 < n {
                let w = 0.5 * (c + coeff(i + 1, j));
                push_neighbor(&mut coo, idx(i + 1, j), w);
                diag += w;
            }
            if j > 0 {
                let w = 0.5 * (c + coeff(i, j - 1));
                push_neighbor(&mut coo, idx(i, j - 1), w);
                diag += w;
            }
            if j + 1 < n {
                let w = 0.5 * (c + coeff(i, j + 1));
                push_neighbor(&mut coo, idx(i, j + 1), w);
                diag += w;
            }
            // Add a boundary contribution so the matrix is non-singular.
            coo.push(row, row, diag + 0.5 * c).expect("in bounds");
        }
    }
    coo.to_csr()
}

/// Random sparse diagonally-dominant SPD matrix with roughly `nnz_per_row`
/// off-diagonal entries per row.
///
/// Built as `A = B + Bᵀ + α·I` where `B` is random sparse and `α` enforces
/// strict diagonal dominance, so the result is symmetric positive definite.
pub fn random_spd(n: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (nnz_per_row + 1) * 2);
    let mut row_sums = vec![0.0f64; n];
    for i in 0..n {
        for _ in 0..nnz_per_row {
            let j = rng.random_range(0..n);
            if j == i {
                continue;
            }
            let v: f64 = rng.random_range(-1.0..0.0);
            coo.push(i, j, v).expect("in bounds");
            coo.push(j, i, v).expect("in bounds");
            row_sums[i] += v.abs();
            row_sums[j] += v.abs();
        }
    }
    for (i, row_sum) in row_sums.iter().enumerate() {
        // Strictly dominant diagonal keeps the matrix SPD.
        coo.push(i, i, row_sum + 1.0 + rng.random_range(0.0..1.0))
            .expect("in bounds");
    }
    coo.to_csr()
}

/// Builds a right-hand side `b = A·x_true` for a given "true" solution shape,
/// plus returns `x_true`. Useful for manufactured-solution tests.
pub fn manufactured_rhs(a: &CsrMatrix, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x_true: Vec<f64> = (0..a.cols()).map(|_| rng.random_range(-1.0..1.0)).collect();
    let mut b = vec![0.0; a.rows()];
    a.spmv(&x_true, &mut b);
    (x_true, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_2d_structure() {
        let a = poisson_2d(4);
        assert_eq!(a.rows(), 16);
        assert!(a.is_symmetric(0.0));
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 4), -1.0);
        assert_eq!(a.get(0, 5), 0.0);
        // Interior row has 5 entries.
        let (cols, _) = a.row(5);
        assert_eq!(cols.len(), 5);
    }

    #[test]
    fn poisson_3d_7pt_structure() {
        let a = poisson_3d_7pt(3);
        assert_eq!(a.rows(), 27);
        assert!(a.is_symmetric(0.0));
        // Center point has all 6 neighbours.
        let center = (3 + 1) * 3 + 1;
        let (cols, _) = a.row(center);
        assert_eq!(cols.len(), 7);
        assert_eq!(a.get(center, center), 6.0);
    }

    #[test]
    fn poisson_3d_27pt_structure() {
        let a = poisson_3d_27pt(3);
        assert_eq!(a.rows(), 27);
        assert!(a.is_symmetric(0.0));
        let center = (3 + 1) * 3 + 1;
        let (cols, vals) = a.row(center);
        assert_eq!(cols.len(), 27);
        assert_eq!(a.get(center, center), 26.0);
        let row_sum: f64 = vals.iter().sum();
        assert!(row_sum.abs() < 1e-12, "row sum of interior 27pt row is 0");
    }

    #[test]
    fn poisson_27pt_is_positive_definite_on_small_grid() {
        let a = poisson_3d_27pt(3);
        let dense = a.to_dense();
        assert!(dense.cholesky().is_ok());
    }

    #[test]
    fn anisotropic_is_spd() {
        let a = anisotropic_2d(8, 0.01);
        assert!(a.is_symmetric(1e-14));
        assert!(a.to_dense().cholesky().is_ok());
    }

    #[test]
    fn jump_coefficient_is_spd() {
        let a = jump_coefficient_2d(8, 1000.0);
        assert!(a.is_symmetric(1e-10));
        assert!(a.to_dense().cholesky().is_ok());
    }

    #[test]
    fn random_spd_is_spd() {
        let a = random_spd(60, 4, 42);
        assert!(a.is_symmetric(1e-12));
        assert!(a.to_dense().cholesky().is_ok());
    }

    #[test]
    fn random_spd_is_deterministic_per_seed() {
        let a = random_spd(40, 3, 7);
        let b = random_spd(40, 3, 7);
        assert_eq!(a, b);
        let c = random_spd(40, 3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn manufactured_rhs_is_consistent() {
        let a = poisson_2d(6);
        let (x_true, b) = manufactured_rhs(&a, 1);
        let mut ax = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut ax);
        for (u, v) in ax.iter().zip(&b) {
            assert_eq!(u, v);
        }
    }
}
