//! # feir-sparse
//!
//! Sparse linear-algebra substrate for the FEIR project (reproduction of
//! *"Exploiting Asynchrony from Exact Forward Recovery for DUE in Iterative
//! Solvers"*, Jaulmes et al., SC 2015).
//!
//! The paper's recovery schemes operate on blocks of vectors (one memory page,
//! 512 `f64`) and on the corresponding block rows/columns of a sparse matrix.
//! This crate provides everything those schemes need:
//!
//! * [`CsrMatrix`] — compressed sparse row storage with serial and
//!   [rayon]-parallel sparse matrix–vector products,
//! * [`DenseMatrix`] with [`Cholesky`], [`Lu`] and Householder [`Qr`]
//!   factorizations used to solve the small diagonal-block systems
//!   `A_ii x_i = r_i` of the recovery relations,
//! * [`blocking`] — page-aligned block partitions and extraction of dense
//!   diagonal blocks / block rows,
//! * [`BlockJacobi`] — the block-Jacobi preconditioner used by the paper's PCG
//!   (block size equal to the page size so the factorizations required for
//!   recovery are pre-computed),
//! * [`generators`] — Poisson stencils (5/7/27-point), anisotropic and
//!   jump-coefficient variants, random diagonally-dominant SPD matrices,
//! * [`proxies`] — synthetic stand-ins for the nine University-of-Florida
//!   matrices evaluated in the paper,
//! * [`matrixmarket`] — MatrixMarket I/O so real matrices can be used instead
//!   of the proxies,
//! * [`vecops`] — the dense vector kernels (dot, axpy, norms) used by all
//!   solvers, in serial and parallel form,
//! * [`fused`] — fused BLAS-1/SpMV kernels (`spmv_dot`, `axpy_norm2`,
//!   `xpay_dot`, multi-dot `dotn`) that merge an update or matvec with the
//!   reduction consuming it, bitwise-identical to the unfused compositions,
//! * [`sell`] — the SELL-C-σ storage backend whose kernels are
//!   bitwise-identical to CSR's, and [`mod@format`] — the per-matrix CSR/SELL
//!   auto-selection ([`SpmvBackend`], `FEIR_SPMV_FORMAT`).

#![warn(missing_docs)]

pub mod blocking;
pub mod blockjacobi;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod format;
pub mod fused;
pub mod generators;
pub mod matrixmarket;
pub mod proxies;
pub mod sell;
pub mod vecops;

pub use blocking::{BlockPartition, DiagonalBlocks};
pub use blockjacobi::{BlockJacobi, LocalBlockJacobi};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::{Cholesky, DenseMatrix, Lu, Qr};
pub use error::SparseError;
pub use format::{
    analyze, analyze_rows, FormatAnalysis, MatrixFormat, SparseOps, SpmvBackend, SpmvFormat,
    ENV_SPMV_FORMAT,
};
pub use sell::SellMatrix;

/// Number of `f64` values in one 4 KiB memory page — the granularity at which
/// the paper's hardware error model reports Detected-and-Uncorrected Errors.
pub const PAGE_DOUBLES: usize = 512;
