//! Synthetic stand-ins for the nine University-of-Florida matrices used in the
//! paper's single-node evaluation (Figure 4 / Tables 2–3).
//!
//! The real matrices are not redistributable with this repository, so each
//! proxy reproduces the salient traits that determine the *shape* of the
//! paper's results: problem family (structural, CFD, thermal, …), relative
//! size class, and — most importantly for the resilience comparison — the CG
//! convergence behaviour (fast / moderate / slow). Absolute sizes are scaled
//! down so the full 270-experiment sweep runs on a laptop; the
//! `--scale` option of the bench harnesses can enlarge them.
//!
//! Real matrices in MatrixMarket format can be substituted at any time through
//! [`crate::matrixmarket::read_matrix_market_file`].

use serde::{Deserialize, Serialize};

use crate::{generators, CsrMatrix};

/// Identifier of one of the paper's nine evaluation matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperMatrix {
    /// `af_shell8` — sheet-metal forming, structural problem (n ≈ 505k).
    AfShell8,
    /// `cfd2` — pressure matrix from a CFD problem (n ≈ 123k).
    Cfd2,
    /// `consph` — concentric spheres, FEM electromagnetics (n ≈ 83k).
    Consph,
    /// `Dubcova3` — PDE discretization (n ≈ 147k), fast converging.
    Dubcova3,
    /// `ecology2` — circuit-theory landscape model, 5-point stencil (n = 1M).
    Ecology2,
    /// `parabolic_fem` — parabolic FEM, convection-diffusion (n ≈ 526k).
    ParabolicFem,
    /// `qa8fm` — 3-D acoustics mass matrix (n ≈ 66k), very fast converging.
    Qa8fm,
    /// `thermal2` — unstructured thermal FEM (n ≈ 1.2M), slow converging.
    Thermal2,
    /// `thermomech` (dM) — thermomechanical model (n ≈ 204k), fast converging.
    Thermomech,
}

impl PaperMatrix {
    /// All nine matrices, in the order the paper lists them.
    pub const ALL: [PaperMatrix; 9] = [
        PaperMatrix::AfShell8,
        PaperMatrix::Cfd2,
        PaperMatrix::Consph,
        PaperMatrix::Dubcova3,
        PaperMatrix::Ecology2,
        PaperMatrix::ParabolicFem,
        PaperMatrix::Qa8fm,
        PaperMatrix::Thermal2,
        PaperMatrix::Thermomech,
    ];

    /// Name as printed in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PaperMatrix::AfShell8 => "af_shell8",
            PaperMatrix::Cfd2 => "cfd2",
            PaperMatrix::Consph => "consph",
            PaperMatrix::Dubcova3 => "Dubcova3",
            PaperMatrix::Ecology2 => "ecology2",
            PaperMatrix::ParabolicFem => "parabolic_fem",
            PaperMatrix::Qa8fm => "qa8fm",
            PaperMatrix::Thermal2 => "thermal2",
            PaperMatrix::Thermomech => "thermomech",
        }
    }

    /// Parses a paper matrix name (as printed by [`Self::name`]).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Qualitative convergence class the proxy is tuned to reproduce.
    pub fn convergence_class(&self) -> ConvergenceClass {
        match self {
            PaperMatrix::Qa8fm | PaperMatrix::Thermomech | PaperMatrix::Dubcova3 => {
                ConvergenceClass::Fast
            }
            PaperMatrix::Consph | PaperMatrix::Cfd2 | PaperMatrix::AfShell8 => {
                ConvergenceClass::Moderate
            }
            PaperMatrix::Ecology2 | PaperMatrix::ParabolicFem | PaperMatrix::Thermal2 => {
                ConvergenceClass::Slow
            }
        }
    }

    /// Builds the proxy matrix at the given scale.
    ///
    /// `scale = 1.0` produces laptop-sized problems (10⁴–10⁵ unknowns range
    /// compressed to a few thousand); larger scales grow the grids.
    pub fn build(&self, scale: f64) -> CsrMatrix {
        let s = |base: usize| ((base as f64 * scale.sqrt()).round() as usize).max(8);
        match self {
            // Structural / shell problem: moderately conditioned 2-D Laplacian.
            PaperMatrix::AfShell8 => generators::poisson_2d(s(72)),
            // CFD pressure system: anisotropic coupling.
            PaperMatrix::Cfd2 => generators::anisotropic_2d(s(64), 0.2),
            // FEM electromagnetics: 3-D 7-point stencil.
            PaperMatrix::Consph => generators::poisson_3d_7pt(s(17)),
            // Fast-converging PDE problem: well-conditioned random SPD.
            PaperMatrix::Dubcova3 => generators::random_spd(s(64).pow(2), 6, 0xD0BC0743),
            // Landscape circuit model: large 5-point stencil (slowest class).
            PaperMatrix::Ecology2 => generators::poisson_2d(s(90)),
            // Parabolic FEM: anisotropic with strong anisotropy.
            PaperMatrix::ParabolicFem => generators::anisotropic_2d(s(80), 0.05),
            // Acoustics mass matrix: strongly diagonally dominant, very fast.
            PaperMatrix::Qa8fm => generators::random_spd(s(56).pow(2), 4, 0x0A8F),
            // Unstructured thermal problem: jump coefficients, slow.
            PaperMatrix::Thermal2 => generators::jump_coefficient_2d(s(96), 100.0),
            // Thermomechanical model: small and fast converging.
            PaperMatrix::Thermomech => generators::random_spd(s(48).pow(2), 5, 0x7E40),
        }
    }

    /// Builds the proxy at the default scale used by tests and examples.
    pub fn build_default(&self) -> CsrMatrix {
        self.build(1.0)
    }
}

/// Qualitative CG convergence class of a proxy matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvergenceClass {
    /// Converges in a few tens of iterations.
    Fast,
    /// Converges in a few hundred iterations.
    Moderate,
    /// Needs on the order of a thousand iterations or more.
    Slow,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_proxies_are_square_symmetric() {
        for m in PaperMatrix::ALL {
            let a = m.build(0.2);
            assert_eq!(a.rows(), a.cols(), "{} not square", m.name());
            assert!(a.is_symmetric(1e-10), "{} not symmetric", m.name());
            assert!(a.rows() >= 64, "{} too small", m.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for m in PaperMatrix::ALL {
            assert_eq!(PaperMatrix::from_name(m.name()), Some(m));
        }
        assert_eq!(PaperMatrix::from_name("nope"), None);
    }

    #[test]
    fn scale_grows_the_problem() {
        let small = PaperMatrix::AfShell8.build(0.2);
        let large = PaperMatrix::AfShell8.build(0.8);
        assert!(large.rows() > small.rows());
    }

    #[test]
    fn convergence_classes_cover_all_three() {
        use std::collections::HashSet;
        let classes: HashSet<_> = PaperMatrix::ALL
            .iter()
            .map(|m| m.convergence_class())
            .collect();
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn proxies_are_positive_definite_small_scale() {
        // Cholesky of the dense form is too expensive for all, spot check the
        // small stencil ones via a few CG-style checks: xᵀAx > 0 for random x.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for m in [PaperMatrix::Cfd2, PaperMatrix::Thermal2, PaperMatrix::Qa8fm] {
            let a = m.build(0.2);
            for _ in 0..5 {
                let x: Vec<f64> = (0..a.rows()).map(|_| rng.random_range(-1.0..1.0)).collect();
                let mut ax = vec![0.0; a.rows()];
                a.spmv(&x, &mut ax);
                let quad = crate::vecops::dot(&x, &ax);
                assert!(quad > 0.0, "{} not PD: xᵀAx = {}", m.name(), quad);
            }
        }
    }
}
