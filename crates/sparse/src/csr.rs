//! Compressed Sparse Row matrix with serial and rayon-parallel kernels.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{DenseMatrix, SparseError};

/// Row tile of the SpMV sweeps: each pass touches one tile of output rows
/// before moving on, bounding the live `y` working set to 2 KiB. The value
/// is coordinated with the rest of the hot path — it equals the minimum
/// parallel row chunk (so pool chunks are whole tiles), divides
/// [`MIN_PARALLEL_SPMV_ROWS`] (16 tiles) and the reduction chunk
/// [`crate::vecops::DOT_CHUNK`] (16 tiles), and matches the SELL sorting
/// window [`crate::sell::SELL_SIGMA`], so every backend blocks rows on the
/// same boundaries.
pub(crate) const SPMV_ROW_TILE: usize = 256;

/// Minimum rows per parallel SpMV chunk: rows carry several multiply-adds
/// each, so they amortize scheduling overhead much sooner than scalar
/// elements do.
const MIN_SPMV_ROW_CHUNK: usize = SPMV_ROW_TILE;

/// One row of the product: `Σ_c A[r,c]·x[c]` folded in stored-column order
/// with a single accumulator. The 4-wide unroll issues exactly the same
/// adds in exactly the same order as the plain loop — it trims loop-control
/// overhead and exposes the gathers early, but never reassociates, so every
/// caller keeps its bitwise contract.
#[inline]
pub(crate) fn row_product(cols: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut c4 = cols.chunks_exact(4);
    let mut v4 = vals.chunks_exact(4);
    for (c, v) in (&mut c4).zip(&mut v4) {
        acc += v[0] * x[c[0]];
        acc += v[1] * x[c[1]];
        acc += v[2] * x[c[2]];
        acc += v[3] * x[c[3]];
    }
    for (c, v) in c4.remainder().iter().zip(v4.remainder()) {
        acc += v * x[*c];
    }
    acc
}

/// Below this row count `spmv_parallel` runs the serial kernel: the whole
/// product costs only a few microseconds, less than waking the workers.
/// Sized independently of the dot and axpy gates in [`crate::vecops`] — an
/// SpMV row carries several multiply-adds, so it breaks even much earlier
/// than a scalar element does.
pub(crate) const MIN_PARALLEL_SPMV_ROWS: usize = 4096;

/// A sparse matrix stored in Compressed Sparse Row format.
///
/// Column indices inside a row are kept sorted, which is what the blocked
/// extraction routines of [`crate::blocking`] rely on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating the structure.
    ///
    /// # Errors
    /// Returns a [`SparseError`] if the row pointer array has the wrong
    /// length, is not monotonically increasing, or any column index is out of
    /// range.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::Parse(format!(
                "row_ptr length {} does not match rows {} + 1",
                row_ptr.len(),
                rows
            )));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::Parse(format!(
                "col_idx length {} does not match values length {}",
                col_idx.len(),
                values.len()
            )));
        }
        if *row_ptr.last().unwrap_or(&0) != col_idx.len() {
            return Err(SparseError::Parse(
                "last row pointer does not equal nnz".to_string(),
            ));
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::Parse(
                    "row pointers must be non-decreasing".to_string(),
                ));
            }
        }
        for (r, w) in row_ptr.windows(2).enumerate() {
            for &c in &col_idx[w[0]..w[1]] {
                if c >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        shape: (rows, cols),
                    });
                }
            }
        }
        let mut m = Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        m.sort_rows();
        Ok(m)
    }

    /// Builds an identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a diagonal matrix from the given diagonal values.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: diag.to_vec(),
        }
    }

    fn sort_rows(&mut self) {
        for r in 0..self.rows {
            let (start, end) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let slice_sorted = self.col_idx[start..end].windows(2).all(|w| w[0] <= w[1]);
            if slice_sorted {
                continue;
            }
            let mut pairs: Vec<(usize, f64)> = self.col_idx[start..end]
                .iter()
                .copied()
                .zip(self.values[start..end].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|p| p.0);
            for (k, (c, v)) in pairs.into_iter().enumerate() {
                self.col_idx[start + k] = c;
                self.values[start + k] = v;
            }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row pointer array (length `rows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (start, end) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Value at `(row, col)`; zero if not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&col) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Extracts the main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Serial sparse matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv: x has wrong length");
        assert_eq!(y.len(), self.rows, "spmv: y has wrong length");
        // Tiled sweep: per-row accumulation is independent, so the tiling
        // changes traversal locality only, never values.
        for (t, yt) in y.chunks_mut(SPMV_ROW_TILE).enumerate() {
            let base = t * SPMV_ROW_TILE;
            for (i, out) in yt.iter_mut().enumerate() {
                let (cols, vals) = self.row(base + i);
                *out = row_product(cols, vals, x);
            }
        }
    }

    /// Rayon-parallel sparse matrix–vector product `y = A x`.
    ///
    /// Row blocks sized for the ambient pool ([`crate::vecops::parallel_chunk_len`])
    /// are fanned out across the workers; each row is accumulated exactly as
    /// in [`CsrMatrix::spmv`], so the output is bitwise-identical to the
    /// serial product at any thread count.
    pub fn spmv_parallel(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv: x has wrong length");
        assert_eq!(y.len(), self.rows, "spmv: y has wrong length");
        // Small systems (or a single-worker pool) do not amortize the fan-out:
        // fall through to the serial kernel, which computes the exact same
        // per-row accumulations.
        if self.rows < MIN_PARALLEL_SPMV_ROWS || rayon::current_num_threads() <= 1 {
            return self.spmv(x, y);
        }
        let chunk = crate::vecops::parallel_chunk_len_with_min(self.rows, MIN_SPMV_ROW_CHUNK);
        y.par_chunks_mut(chunk).enumerate().for_each(|(ci, yc)| {
            let base = ci * chunk;
            for (i, out) in yc.iter_mut().enumerate() {
                let (cols, vals) = self.row(base + i);
                *out = row_product(cols, vals, x);
            }
        });
    }

    /// Computes `y = A x` for the row range `[row_begin, row_end)` only.
    ///
    /// This is the kernel behind the strip-mined `q ⇐ A·d` tasks of the
    /// paper's task decomposition (Figure 1): each task produces one block row
    /// of the output while reading the whole input vector.
    pub fn spmv_rows(&self, row_begin: usize, row_end: usize, x: &[f64], y: &mut [f64]) {
        assert!(row_end <= self.rows);
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), row_end - row_begin);
        for (t, yt) in y.chunks_mut(SPMV_ROW_TILE).enumerate() {
            let base = row_begin + t * SPMV_ROW_TILE;
            for (i, out) in yt.iter_mut().enumerate() {
                let (cols, vals) = self.row(base + i);
                *out = row_product(cols, vals, x);
            }
        }
    }

    /// Computes the partial product of rows `[row_begin, row_end)` while
    /// *excluding* the columns in `[col_skip_begin, col_skip_end)`.
    ///
    /// Used by the inverse block relations of Table 1:
    /// `A_ii x_i = b_i − g_i − Σ_{j≠i} A_ij x_j`, where the sum over `j ≠ i`
    /// is exactly a row-range SpMV with the `i`-th column block skipped.
    pub fn spmv_rows_excluding(
        &self,
        row_begin: usize,
        row_end: usize,
        col_skip_begin: usize,
        col_skip_end: usize,
        x: &[f64],
        y: &mut [f64],
    ) {
        assert!(row_end <= self.rows);
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), row_end - row_begin);
        for (out, r) in y.iter_mut().zip(row_begin..row_end) {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                if *c >= col_skip_begin && *c < col_skip_end {
                    continue;
                }
                acc += v * x[*c];
            }
            *out = acc;
        }
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                let pos = next[*c];
                col_idx[pos] = r;
                values[pos] = *v;
                next[*c] += 1;
            }
        }
        let mut t = CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        };
        t.sort_rows();
        t
    }

    /// Checks symmetry up to an absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.nnz() != self.nnz() {
            // Structural asymmetry may still be value-symmetric via explicit
            // zeros; fall through to the value comparison on the union.
        }
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                if (v - self.get(*c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the dense sub-matrix `A[rows_range, cols_range]`.
    pub fn dense_block(
        &self,
        row_begin: usize,
        row_end: usize,
        col_begin: usize,
        col_end: usize,
    ) -> DenseMatrix {
        let m = row_end - row_begin;
        let n = col_end - col_begin;
        let mut block = DenseMatrix::zeros(m, n);
        for r in row_begin..row_end {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                if *c >= col_begin && *c < col_end {
                    block.set(r - row_begin, c - col_begin, *v);
                }
            }
        }
        block
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Scales all values by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Converts to a dense matrix (intended for tests and small matrices).
    pub fn to_dense(&self) -> DenseMatrix {
        self.dense_block(0, self.rows, 0, self.cols)
    }

    /// Estimates the largest eigenvalue with a fixed number of power
    /// iterations. Used by the matrix proxy generators to report conditioning.
    pub fn power_iteration_max_eigenvalue(&self, iterations: usize) -> f64 {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        if n == 0 {
            return 0.0;
        }
        let mut v = vec![1.0 / (n as f64).sqrt(); n];
        let mut av = vec![0.0; n];
        let mut lambda = 0.0;
        for _ in 0..iterations {
            self.spmv(&v, &mut av);
            let norm = av.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm == 0.0 {
                return 0.0;
            }
            lambda = norm;
            for (vi, avi) in v.iter_mut().zip(&av) {
                *vi = avi / norm;
            }
        }
        lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn small_matrix() -> CsrMatrix {
        // [ 4 -1  0 ]
        // [-1  4 -1 ]
        // [ 0 -1  4 ]
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 4.0).unwrap();
        }
        coo.push(0, 1, -1.0).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        coo.push(1, 2, -1.0).unwrap();
        coo.push(2, 1, -1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn spmv_matches_manual_product() {
        let a = small_matrix();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![4.0 - 2.0, -1.0 + 8.0 - 3.0, -2.0 + 12.0]);
    }

    #[test]
    fn parallel_spmv_matches_serial() {
        let a = crate::generators::poisson_2d(20);
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; a.rows()];
        let mut y2 = vec![0.0; a.rows()];
        a.spmv(&x, &mut y1);
        a.spmv_parallel(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn spmv_rows_is_a_slice_of_full_spmv() {
        let a = crate::generators::poisson_2d(10);
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + i as f64 * 0.01).collect();
        let mut full = vec![0.0; a.rows()];
        a.spmv(&x, &mut full);
        let mut partial = vec![0.0; 30];
        a.spmv_rows(20, 50, &x, &mut partial);
        assert_eq!(&full[20..50], partial.as_slice());
    }

    #[test]
    fn spmv_rows_excluding_skips_column_block() {
        let a = small_matrix();
        let x = vec![1.0, 1.0, 1.0];
        let mut y = vec![0.0; 3];
        // Skip column 1 entirely.
        a.spmv_rows_excluding(0, 3, 1, 2, &x, &mut y);
        assert_eq!(y, vec![4.0, -1.0 - 1.0, 4.0]);
    }

    #[test]
    fn transpose_of_symmetric_matrix_is_identical() {
        let a = small_matrix();
        let t = a.transpose();
        assert_eq!(a, t);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn transpose_of_rectangular_matrix() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 5.0).unwrap();
        coo.push(1, 0, 3.0).unwrap();
        let a = coo.to_csr();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 3.0);
    }

    #[test]
    fn dense_block_extraction() {
        let a = small_matrix();
        let b = a.dense_block(1, 3, 0, 2);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 2);
        assert_eq!(b.get(0, 0), -1.0);
        assert_eq!(b.get(0, 1), 4.0);
        assert_eq!(b.get(1, 1), -1.0);
    }

    #[test]
    fn identity_and_diagonal_constructors() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 4];
        i.spmv(&x, &mut y);
        assert_eq!(x, y);

        let d = CsrMatrix::from_diagonal(&[2.0, 3.0]);
        let mut y2 = vec![0.0; 2];
        d.spmv(&[1.0, 1.0], &mut y2);
        assert_eq!(y2, vec![2.0, 3.0]);
    }

    #[test]
    fn norms_and_scaling() {
        let mut a = CsrMatrix::from_diagonal(&[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert!((a.inf_norm() - 4.0).abs() < 1e-15);
        a.scale(2.0);
        assert!((a.inf_norm() - 8.0).abs() < 1e-15);
    }

    #[test]
    fn from_raw_rejects_bad_structure() {
        // row_ptr has the wrong length.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // last row pointer does not match nnz.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0], vec![1.0]).is_err());
        // column index out of range.
        assert!(CsrMatrix::from_raw(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // decreasing row pointers.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // col_idx / values length mismatch.
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0]).is_err());
    }

    #[test]
    fn power_iteration_on_diagonal_matrix() {
        let a = CsrMatrix::from_diagonal(&[1.0, 5.0, 2.0]);
        let lambda = a.power_iteration_max_eigenvalue(200);
        assert!((lambda - 5.0).abs() < 1e-6, "lambda = {lambda}");
    }

    #[test]
    fn get_returns_zero_for_missing_entries() {
        let a = small_matrix();
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(2, 0), 0.0);
    }
}
