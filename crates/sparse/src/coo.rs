//! Coordinate-format (triplet) matrix builder.
//!
//! The COO format is the natural intermediate when assembling matrices from
//! stencils or when parsing MatrixMarket files; it is converted to
//! [`CsrMatrix`] before use in solvers.

use crate::{CsrMatrix, SparseError};

/// A sparse matrix in coordinate (triplet) format.
///
/// Duplicate entries are allowed and are summed when converting to CSR, which
/// matches the usual finite-element assembly semantics.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty matrix with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty matrix with the given shape and a capacity hint for
    /// the expected number of non-zeros.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries, duplicates included.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Pushes one entry. Entries with value exactly `0.0` are still stored so
    /// that explicit zeros survive the round-trip through MatrixMarket files.
    ///
    /// # Errors
    /// Returns [`SparseError::IndexOutOfBounds`] if the position lies outside
    /// the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                shape: (self.rows, self.cols),
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Pushes an entry and, if it is off-diagonal, its transposed twin.
    /// Convenient when reading symmetric MatrixMarket files, which store only
    /// the lower triangle.
    pub fn push_symmetric(
        &mut self,
        row: usize,
        col: usize,
        value: f64,
    ) -> Result<(), SparseError> {
        self.push(row, col, value)?;
        if row != col {
            self.push(col, row, value)?;
        }
        Ok(())
    }

    /// Iterates over stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }

    /// Converts into CSR, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        // Count entries per row first (duplicates collapse later).
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|a| (a.0, a.1));

        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());

        row_ptr.push(0usize);
        let mut current_row = 0usize;
        for (r, c, v) in sorted {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if let (Some(&last_c), true) = (col_idx.last(), !values.is_empty()) {
                if last_c == c && row_ptr.len() - 1 == r && row_ptr[r] < col_idx.len() {
                    // Same row (row_ptr for r already open) and same column: accumulate.
                    *values.last_mut().expect("values non-empty") += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }

        CsrMatrix::from_raw(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("COO to CSR conversion produced inconsistent structure")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_convert() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(0, 2), 1.0);
        assert_eq!(csr.get(2, 2), 4.0);
        assert_eq!(csr.get(1, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert!((csr.get(0, 0) - 3.5).abs() < 1e-15);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 5, 1.0).is_err());
    }

    #[test]
    fn symmetric_push_mirrors_off_diagonal() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(1, 0, -1.0).unwrap();
        coo.push_symmetric(1, 1, 2.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.get(0, 1), -1.0);
        assert_eq!(csr.get(1, 1), 2.0);
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn empty_rows_have_consistent_pointers() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(3, 3, 1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.row(1).0.len(), 0);
        assert_eq!(csr.row(2).0.len(), 0);
        assert_eq!(csr.nnz(), 2);
    }
}
