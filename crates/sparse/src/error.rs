//! Error type shared by the sparse-algebra substrate.

use std::fmt;

/// Errors raised by matrix construction, factorization and I/O routines.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// What was expected (rows, cols).
        expected: (usize, usize),
        /// What was found (rows, cols).
        found: (usize, usize),
    },
    /// An entry index lies outside the matrix.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Matrix shape.
        shape: (usize, usize),
    },
    /// A factorization failed because the matrix is singular (or not SPD for
    /// Cholesky) at the given pivot.
    SingularPivot {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// The matrix is not square but the operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A MatrixMarket file could not be parsed.
    Parse(String),
    /// An I/O error occurred while reading or writing a matrix file.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            SparseError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            SparseError::SingularPivot { pivot } => {
                write!(f, "factorization broke down at pivot {pivot}")
            }
            SparseError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            SparseError::Parse(msg) => write!(f, "matrix parse error: {msg}"),
            SparseError::Io(msg) => write!(f, "matrix I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = SparseError::DimensionMismatch {
            expected: (3, 3),
            found: (2, 3),
        };
        assert!(e.to_string().contains("expected 3x3"));
    }

    #[test]
    fn display_singular() {
        let e = SparseError::SingularPivot { pivot: 7 };
        assert!(e.to_string().contains("pivot 7"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
    }
}
