//! SELL-C-σ (sliced ELLPACK) storage: the vectorization-friendly second
//! backend of the SpMV hot path.
//!
//! The format (Kreutzer et al.) groups rows into *slices* of a fixed height
//! `C` and stores each slice column-major, padded to the slice's longest
//! row. Sorting rows by descending length inside a window of `σ` consecutive
//! rows keeps slice mates similar in length (little padding) while keeping
//! the permutation *local*: row `r` can only move within its σ-window, so
//! any σ-aligned block of the output is produced entirely from the matching
//! σ-aligned block of rows.
//!
//! # Bitwise contract
//!
//! Every kernel here is **bitwise-identical to its CSR counterpart**:
//!
//! * each lane (row) owns an independent accumulator and folds its entries
//!   in stored order — the conversion preserves CSR's sorted-column entry
//!   order per row, so the per-row sum is the exact fold
//!   [`CsrMatrix::spmv`] computes;
//! * padding never enters the arithmetic: the kernels bound every lane by
//!   its true row length, so padded entries are never multiplied or added
//!   (an `acc += 0.0 * x[pad]` would already flip `-0.0` signs and launder
//!   NaN/inf through the product — skipping is what makes identity exact);
//! * the fused dots accumulate `x[r]·y[r]` in **original row order** (not
//!   slice-permuted order) with a single accumulator per [`DOT_CHUNK`]
//!   block, folding blocks in order — the same fold shape as
//!   [`crate::fused::spmv_dot`] / [`crate::fused::spmv_dot_parallel`];
//! * parallel row chunks are σ-aligned, so chunking changes scheduling,
//!   never values, exactly like the CSR gates.
//!
//! The layout constants are coordinated with the rest of the crate:
//! `C = 8` lanes match one cache line of doubles, `σ = 256` equals the
//! minimum parallel SpMV row chunk, and `DOT_CHUNK = 4096` is an exact
//! multiple of σ (16 windows per reduction chunk), so every reduction
//! boundary of the parallel kernels falls on a window boundary.

use rayon::prelude::*;

use crate::csr::MIN_PARALLEL_SPMV_ROWS;
use crate::vecops::{DOT_CHUNK, MIN_PARALLEL_DOT_ELEMS};
use crate::{CsrMatrix, SparseError};

/// Slice height: rows per slice, i.e. SIMD lanes of the column-major block.
pub const SELL_C: usize = 8;

/// Sorting window: rows may be reordered only within σ consecutive rows.
/// Equal to the minimum parallel SpMV row chunk so pool chunk boundaries
/// can always be σ-aligned, and a divisor of [`DOT_CHUNK`] so reduction
/// chunks cover whole windows.
pub const SELL_SIGMA: usize = 256;

// Layout invariants the kernels rely on; violating either breaks the
// σ-aligned chunking and the fused fold shapes.
const _: () = assert!(SELL_SIGMA.is_multiple_of(SELL_C));
const _: () = assert!(DOT_CHUNK.is_multiple_of(SELL_SIGMA));

/// Sentinel in `perm` marking a padding lane (row count not a multiple of
/// `C`); such lanes have length 0 and are never scattered.
const PAD_LANE: usize = usize::MAX;

/// A sparse matrix in SELL-C-σ format, converted one-shot from CSR.
///
/// The conversion is exact and reversible: [`SellMatrix::to_csr`] rebuilds
/// the source matrix bit-for-bit (structure and values). Column indices are
/// stored as `u32` — half the index traffic of CSR's `usize` — which caps
/// the column count at `u32::MAX` (checked at conversion).
#[derive(Debug, Clone, PartialEq)]
pub struct SellMatrix {
    rows: usize,
    cols: usize,
    nnz: usize,
    /// Data offset of each slice (length `num_slices + 1`); slice `s` holds
    /// `(slice_ptr[s+1] - slice_ptr[s]) / C` padded columns.
    slice_ptr: Vec<usize>,
    /// True row length per lane, length `num_slices * C`; padding lanes are 0.
    row_len: Vec<usize>,
    /// Lane → original (block-local) row, length `num_slices * C`;
    /// [`PAD_LANE`] for padding lanes. Lane `k` only ever maps inside the
    /// σ-window containing `k`.
    perm: Vec<usize>,
    /// Column-major slice data: entry `(lane, j)` of slice `s` lives at
    /// `slice_ptr[s] + j*C + lane`. Padded entries are exactly `0.0`.
    values: Vec<f64>,
    /// Same layout as `values`; padded entries point at column 0 (in
    /// bounds, never dereferenced by the kernels).
    col_idx: Vec<u32>,
}

impl SellMatrix {
    /// Converts a full CSR matrix. See [`SellMatrix::from_csr_rows`].
    ///
    /// # Errors
    /// Returns [`SparseError::Parse`] if the column count exceeds
    /// `u32::MAX`.
    pub fn from_csr(a: &CsrMatrix) -> Result<Self, SparseError> {
        Self::from_csr_rows(a, 0, a.rows())
    }

    /// Converts the row block `[row_begin, row_end)` of a CSR matrix —
    /// the rank-local form used by the distributed solvers, where each rank
    /// converts only the rows it owns while x stays full-length.
    ///
    /// # Errors
    /// Returns [`SparseError::Parse`] if the column count exceeds
    /// `u32::MAX` or the row range is out of bounds.
    pub fn from_csr_rows(
        a: &CsrMatrix,
        row_begin: usize,
        row_end: usize,
    ) -> Result<Self, SparseError> {
        if row_end < row_begin || row_end > a.rows() {
            return Err(SparseError::Parse(format!(
                "row range {row_begin}..{row_end} out of bounds for {} rows",
                a.rows()
            )));
        }
        if a.cols() > u32::MAX as usize {
            return Err(SparseError::Parse(format!(
                "SELL column indices are u32: {} columns exceed u32::MAX",
                a.cols()
            )));
        }
        let rows = row_end - row_begin;
        let num_slices = rows.div_ceil(SELL_C);
        let lanes = num_slices * SELL_C;

        // Sort each σ-window by descending row length (stable: ties keep
        // original order), recording the lane → original-row permutation.
        let mut perm = Vec::with_capacity(lanes);
        let row_length = |r: usize| a.row_ptr()[row_begin + r + 1] - a.row_ptr()[row_begin + r];
        let mut window: Vec<usize> = Vec::with_capacity(SELL_SIGMA);
        let mut w0 = 0;
        while w0 < rows {
            let w1 = (w0 + SELL_SIGMA).min(rows);
            window.clear();
            window.extend(w0..w1);
            window.sort_by_key(|&r| std::cmp::Reverse(row_length(r)));
            perm.extend_from_slice(&window);
            w0 = w1;
        }
        perm.resize(lanes, PAD_LANE);

        let mut row_len = vec![0usize; lanes];
        for (k, &r) in perm.iter().enumerate() {
            if r != PAD_LANE {
                row_len[k] = row_length(r);
            }
        }

        let mut slice_ptr = Vec::with_capacity(num_slices + 1);
        slice_ptr.push(0usize);
        for s in 0..num_slices {
            let width = row_len[s * SELL_C..(s + 1) * SELL_C]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
            slice_ptr.push(slice_ptr[s] + width * SELL_C);
        }

        let padded = *slice_ptr.last().unwrap();
        let mut values = vec![0.0f64; padded];
        let mut col_idx = vec![0u32; padded];
        for (s, &base) in slice_ptr.iter().take(num_slices).enumerate() {
            for lane in 0..SELL_C {
                let k = s * SELL_C + lane;
                if perm[k] == PAD_LANE {
                    continue;
                }
                let (cols, vals) = a.row(row_begin + perm[k]);
                for (j, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                    values[base + j * SELL_C + lane] = v;
                    col_idx[base + j * SELL_C + lane] = c as u32;
                }
            }
        }

        Ok(Self {
            rows,
            cols: a.cols(),
            nnz: a.row_ptr()[row_end] - a.row_ptr()[row_begin],
            slice_ptr,
            row_len,
            perm,
            values,
            col_idx,
        })
    }

    /// Number of (block-local) rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (always the full matrix width).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries, excluding padding.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of stored entries *including* padding.
    #[inline]
    pub fn padded_nnz(&self) -> usize {
        self.values.len()
    }

    /// Padding overhead: `padded_nnz / nnz` (1.0 = no padding). Empty
    /// matrices report 1.0.
    pub fn fill_ratio(&self) -> f64 {
        if self.nnz == 0 {
            1.0
        } else {
            self.padded_nnz() as f64 / self.nnz as f64
        }
    }

    #[inline]
    fn num_slices(&self) -> usize {
        self.slice_ptr.len() - 1
    }

    /// Rebuilds the source CSR block, bit-for-bit (exact round-trip).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.rows + 1];
        for (k, &r) in self.perm.iter().enumerate() {
            if r != PAD_LANE {
                row_ptr[r + 1] = self.row_len[k];
            }
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; self.nnz];
        let mut values = vec![0.0f64; self.nnz];
        for (k, &r) in self.perm.iter().enumerate() {
            if r == PAD_LANE {
                continue;
            }
            let (s, lane) = (k / SELL_C, k % SELL_C);
            let base = self.slice_ptr[s];
            let dst = row_ptr[r];
            for j in 0..self.row_len[k] {
                col_idx[dst + j] = self.col_idx[base + j * SELL_C + lane] as usize;
                values[dst + j] = self.values[base + j * SELL_C + lane];
            }
        }
        CsrMatrix::from_raw(self.rows, self.cols, row_ptr, col_idx, values)
            .expect("SELL round-trip produced invalid CSR structure")
    }

    /// One slice of products: per-lane accumulators folding each lane's
    /// entries in stored (row) order. The dense common-prefix loop is the
    /// vectorizable part (all `C` lanes active, unit stride over the slice
    /// data); the ragged tails finish each longer lane with the *same*
    /// accumulator, continuing at the exact element the prefix stopped at —
    /// so the per-row fold order is identical to CSR's.
    #[inline]
    fn slice_products(&self, s: usize, x: &[f64]) -> [f64; SELL_C] {
        let base = self.slice_ptr[s];
        let lens = &self.row_len[s * SELL_C..(s + 1) * SELL_C];
        let min_len = lens[SELL_C - 1];
        let mut acc = [0.0f64; SELL_C];
        let dense = &self.values[base..base + min_len * SELL_C];
        let dense_cols = &self.col_idx[base..base + min_len * SELL_C];
        for (vals, cols) in dense
            .chunks_exact(SELL_C)
            .zip(dense_cols.chunks_exact(SELL_C))
        {
            for lane in 0..SELL_C {
                acc[lane] += vals[lane] * x[cols[lane] as usize];
            }
        }
        for (lane, a) in acc.iter_mut().enumerate() {
            for j in min_len..lens[lane] {
                let off = base + j * SELL_C + lane;
                *a += self.values[off] * x[self.col_idx[off] as usize];
            }
        }
        acc
    }

    /// Products of the slices covering rows `[y_base, y_base + y.len())`,
    /// scattered into `y` (indexed from `y_base`). The caller guarantees the
    /// range is σ-aligned (or covers the matrix tail), so every lane of
    /// every touched slice lands inside `y`.
    fn spmv_block(&self, y_base: usize, y: &mut [f64], x: &[f64]) {
        let s_begin = y_base / SELL_C;
        let s_end = (y_base + y.len()).div_ceil(SELL_C);
        for s in s_begin..s_end {
            let acc = self.slice_products(s, x);
            for (lane, &v) in acc.iter().enumerate() {
                let r = self.perm[s * SELL_C + lane];
                if r != PAD_LANE {
                    y[r - y_base] = v;
                }
            }
        }
    }

    /// Serial `y = A·x`, bitwise-identical to [`CsrMatrix::spmv`] on the
    /// source matrix (every real row is written, including empty rows).
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv: x has wrong length");
        assert_eq!(y.len(), self.rows, "spmv: y has wrong length");
        self.spmv_block(0, y, x);
    }

    /// Rayon-parallel `y = A·x` over σ-aligned row chunks. Row permutations
    /// never cross a σ-window, so σ-aligned chunks write disjoint `y`
    /// ranges; per-row accumulation is unchanged, so the result is
    /// bitwise-identical to [`SellMatrix::spmv`] (and hence to the CSR
    /// kernels) at any thread count.
    pub fn spmv_parallel(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv: x has wrong length");
        assert_eq!(y.len(), self.rows, "spmv: y has wrong length");
        if self.rows < MIN_PARALLEL_SPMV_ROWS || rayon::current_num_threads() <= 1 {
            return self.spmv(x, y);
        }
        let chunk = crate::vecops::parallel_chunk_len_with_min(self.rows, SELL_SIGMA)
            .div_ceil(SELL_SIGMA)
            * SELL_SIGMA;
        y.par_chunks_mut(chunk).enumerate().for_each(|(ci, yc)| {
            self.spmv_block(ci * chunk, yc, x);
        });
    }

    /// Fused serial `y = A·x` with the partial dot
    /// `⟨x[first_row..first_row + rows], y⟩`: the rank-local
    /// `q ⇐ A·d` fused with `⟨d, q⟩`, where this matrix holds the row block
    /// starting at global row `first_row`. Single accumulator, original row
    /// order — bitwise-identical to
    /// [`crate::fused::spmv_rows_dot`] on the source matrix.
    pub fn spmv_dot_at(&self, first_row: usize, x: &[f64], y: &mut [f64]) -> f64 {
        assert_eq!(x.len(), self.cols, "spmv_dot: x has wrong length");
        assert_eq!(y.len(), self.rows, "spmv_dot: y has wrong length");
        assert!(
            first_row + self.rows <= self.cols,
            "spmv_dot: row block exceeds x"
        );
        let mut acc = 0.0;
        let mut w0 = 0;
        while w0 < self.rows {
            let w1 = (w0 + SELL_SIGMA).min(self.rows);
            // Window rows are fully computed before they enter the dot, and
            // the dot reads them in original row order: the exact add
            // sequence of the CSR fused kernel.
            self.spmv_block(w0, &mut y[w0..w1], x);
            for r in w0..w1 {
                acc += x[first_row + r] * y[r];
            }
            w0 = w1;
        }
        acc
    }

    /// Fused serial `y = A·x` with `⟨x, y⟩` for the square full-matrix case;
    /// bitwise-identical to [`crate::fused::spmv_dot`].
    pub fn spmv_dot(&self, x: &[f64], y: &mut [f64]) -> f64 {
        assert_eq!(self.rows, self.cols, "spmv_dot: matrix must be square");
        self.spmv_dot_at(0, x, y)
    }

    /// Rayon-parallel fused `y = A·x` with `⟨x, y⟩`: [`DOT_CHUNK`]-row
    /// blocks (always a whole number of σ-windows) each produce their rows
    /// and their partial dot; partials fold in block order. Gates and fold
    /// shape mirror [`crate::fused::spmv_dot_parallel`], so the result is
    /// bitwise-identical to it at every thread count.
    pub fn spmv_dot_parallel(&self, x: &[f64], y: &mut [f64]) -> f64 {
        assert_eq!(self.rows, self.cols, "spmv_dot: matrix must be square");
        assert_eq!(x.len(), self.cols, "spmv_dot: x has wrong length");
        assert_eq!(y.len(), self.rows, "spmv_dot: y has wrong length");
        let chunk_partial = |ci: usize, yc: &mut [f64]| -> f64 {
            let base = ci * DOT_CHUNK;
            self.spmv_block(base, yc, x);
            let mut acc = 0.0;
            for (i, &v) in yc.iter().enumerate() {
                acc += x[base + i] * v;
            }
            acc
        };
        if self.rows < MIN_PARALLEL_DOT_ELEMS.min(MIN_PARALLEL_SPMV_ROWS)
            || rayon::current_num_threads() <= 1
        {
            let mut total = 0.0;
            for (ci, yc) in y.chunks_mut(DOT_CHUNK).enumerate() {
                total += chunk_partial(ci, yc);
            }
            return total;
        }
        y.par_chunks_mut(DOT_CHUNK)
            .enumerate()
            .map(|(ci, yc)| chunk_partial(ci, yc))
            .sum()
    }

    /// Partial products of the (block-local) rows `[row_begin, row_end)`
    /// with every column in `[col_skip_begin, col_skip_end)` excluded — the
    /// recovery cold path behind the inverse block relations
    /// (`Σ_{j≠i} A_ij x_j`), bitwise-identical to
    /// [`CsrMatrix::spmv_rows_excluding`] on the source block: each row
    /// folds its surviving entries in stored order, which the conversion
    /// keeps equal to CSR's sorted-column order.
    ///
    /// Rows are located by scanning their σ-window of the permutation
    /// (window-local by construction): O(σ) per row, which the page-sized
    /// recovery ranges never notice.
    ///
    /// # Panics
    /// Panics if the row range is out of bounds or `x`/`y` have the wrong
    /// length.
    pub fn spmv_rows_excluding(
        &self,
        row_begin: usize,
        row_end: usize,
        col_skip_begin: usize,
        col_skip_end: usize,
        x: &[f64],
        y: &mut [f64],
    ) {
        assert!(row_begin <= row_end && row_end <= self.rows);
        assert_eq!(x.len(), self.cols, "spmv_rows_excluding: x wrong length");
        assert_eq!(y.len(), row_end - row_begin);
        for (out, r) in y.iter_mut().zip(row_begin..row_end) {
            let w0 = (r / SELL_SIGMA) * SELL_SIGMA;
            let w1 = (w0 + SELL_SIGMA).min(self.perm.len());
            let k = (w0..w1)
                .find(|&k| self.perm[k] == r)
                .expect("every real row has a lane in its σ-window");
            let (s, lane) = (k / SELL_C, k % SELL_C);
            let base = self.slice_ptr[s];
            let mut acc = 0.0;
            for j in 0..self.row_len[k] {
                let off = base + j * SELL_C + lane;
                let c = self.col_idx[off] as usize;
                if c >= col_skip_begin && c < col_skip_end {
                    continue;
                }
                acc += self.values[off] * x[c];
            }
            *out = acc;
        }
    }

    /// Checks the padding contract: every padded entry holds exactly `0.0`
    /// and an in-bounds column index, every real lane's length matches its
    /// source row, and the permutation stays inside its σ-window. Used by
    /// tests; cheap enough for debug assertions.
    pub fn validate_padding(&self) -> Result<(), String> {
        for s in 0..self.num_slices() {
            let base = self.slice_ptr[s];
            let width = (self.slice_ptr[s + 1] - base) / SELL_C;
            for lane in 0..SELL_C {
                let k = s * SELL_C + lane;
                let r = self.perm[k];
                if r == PAD_LANE {
                    if self.row_len[k] != 0 {
                        return Err(format!("padding lane {k} has non-zero length"));
                    }
                } else {
                    let window = k / SELL_SIGMA;
                    if r / SELL_SIGMA != window {
                        return Err(format!("lane {k} maps to row {r} outside its σ-window"));
                    }
                }
                for j in self.row_len[k]..width {
                    let off = base + j * SELL_C + lane;
                    if self.values[off].to_bits() != 0.0f64.to_bits() {
                        return Err(format!(
                            "padded value at slice {s} lane {lane} col {j} is not +0.0"
                        ));
                    }
                    if self.col_idx[off] as usize >= self.cols.max(1) {
                        return Err(format!(
                            "padded index at slice {s} lane {lane} col {j} out of bounds"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{poisson_2d, random_spd};
    use crate::{fused, CooMatrix};

    fn test_x(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 3.0 - 0.25)
            .collect()
    }

    #[test]
    fn round_trip_is_exact() {
        for a in [poisson_2d(23), random_spd(777, 5, 3)] {
            let sell = SellMatrix::from_csr(&a).unwrap();
            assert_eq!(sell.nnz(), a.nnz());
            assert_eq!(sell.to_csr(), a);
            sell.validate_padding().unwrap();
        }
    }

    #[test]
    fn round_trip_of_row_block_is_exact() {
        let a = poisson_2d(20);
        let (begin, end) = (130, 391); // deliberately σ-unaligned
        let sell = SellMatrix::from_csr_rows(&a, begin, end).unwrap();
        sell.validate_padding().unwrap();
        let block = sell.to_csr();
        assert_eq!(block.rows(), end - begin);
        assert_eq!(block.cols(), a.cols());
        for r in begin..end {
            let (cols, vals) = a.row(r);
            let (bc, bv) = block.row(r - begin);
            assert_eq!(cols, bc);
            assert_eq!(vals, bv);
        }
    }

    #[test]
    fn handles_empty_and_irregular_rows() {
        // Rows: empty, 1 entry, very long, empty — exercises padding lanes,
        // empty real rows, and the ragged tails.
        let mut coo = CooMatrix::new(7, 40);
        coo.push(1, 3, 2.5).unwrap();
        for c in 0..40 {
            coo.push(2, c, 1.0 + c as f64).unwrap();
        }
        coo.push(4, 0, -1.0).unwrap();
        coo.push(4, 39, 4.0).unwrap();
        let a = coo.to_csr();
        let sell = SellMatrix::from_csr(&a).unwrap();
        sell.validate_padding().unwrap();
        assert_eq!(sell.to_csr(), a);
        let x = test_x(a.cols());
        let mut y_csr = vec![f64::NAN; a.rows()];
        let mut y_sell = vec![f64::NAN; a.rows()];
        a.spmv(&x, &mut y_csr);
        sell.spmv(&x, &mut y_sell);
        // Empty rows must be *written* (0.0), not skipped.
        for (u, v) in y_csr.iter().zip(&y_sell) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn spmv_matches_csr_bitwise() {
        for a in [poisson_2d(17), poisson_2d(33), random_spd(1000, 7, 11)] {
            let sell = SellMatrix::from_csr(&a).unwrap();
            let x = test_x(a.cols());
            let mut y_csr = vec![0.0; a.rows()];
            let mut y_sell = vec![0.0; a.rows()];
            a.spmv(&x, &mut y_csr);
            sell.spmv(&x, &mut y_sell);
            for (u, v) in y_csr.iter().zip(&y_sell) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn block_spmv_matches_csr_rows_bitwise() {
        let a = poisson_2d(24);
        let (begin, end) = (100, 500);
        let sell = SellMatrix::from_csr_rows(&a, begin, end).unwrap();
        let x = test_x(a.cols());
        let mut y_csr = vec![0.0; end - begin];
        let mut y_sell = vec![0.0; end - begin];
        a.spmv_rows(begin, end, &x, &mut y_csr);
        sell.spmv(&x, &mut y_sell);
        for (u, v) in y_csr.iter().zip(&y_sell) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn fused_dot_matches_csr_fused_bitwise() {
        let a = poisson_2d(26);
        let sell = SellMatrix::from_csr(&a).unwrap();
        let x = test_x(a.cols());
        let mut y_csr = vec![0.0; a.rows()];
        let mut y_sell = vec![0.0; a.rows()];
        let expected = fused::spmv_dot(&a, &x, &mut y_csr);
        let got = sell.spmv_dot(&x, &mut y_sell);
        assert_eq!(expected.to_bits(), got.to_bits());
        assert_eq!(y_csr, y_sell);

        let (begin, end) = (256, 620);
        let block = SellMatrix::from_csr_rows(&a, begin, end).unwrap();
        let mut q_csr = vec![0.0; end - begin];
        let mut q_sell = vec![0.0; end - begin];
        let expected = fused::spmv_rows_dot(&a, begin, end, &x, &mut q_csr);
        let got = block.spmv_dot_at(begin, &x, &mut q_sell);
        assert_eq!(expected.to_bits(), got.to_bits());
        assert_eq!(q_csr, q_sell);
    }

    #[test]
    fn fused_dot_parallel_matches_csr_fused_bitwise() {
        let a = poisson_2d(70); // 4900 rows: above the serial gates.
        let sell = SellMatrix::from_csr(&a).unwrap();
        let x = test_x(a.cols());
        let mut y_csr = vec![0.0; a.rows()];
        let mut y_sell = vec![0.0; a.rows()];
        let expected = fused::spmv_dot_parallel(&a, &x, &mut y_csr);
        let got = sell.spmv_dot_parallel(&x, &mut y_sell);
        assert_eq!(expected.to_bits(), got.to_bits());
        assert_eq!(y_csr, y_sell);
    }

    #[test]
    fn parallel_spmv_matches_serial_bitwise() {
        let a = poisson_2d(70);
        let sell = SellMatrix::from_csr(&a).unwrap();
        let x = test_x(a.cols());
        let mut y1 = vec![0.0; a.rows()];
        let mut y2 = vec![0.0; a.rows()];
        sell.spmv(&x, &mut y1);
        sell.spmv_parallel(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn rows_excluding_matches_csr_bitwise() {
        let a = poisson_2d(24); // 576 rows
        let x = test_x(a.cols());
        // Full-matrix backend, page-sized row ranges, skip == the range
        // itself (the inverse-block-relation shape) and a disjoint block.
        let full = SellMatrix::from_csr(&a).unwrap();
        for (begin, end, skip_b, skip_e) in
            [(0, 64, 0, 64), (128, 256, 128, 256), (300, 420, 64, 128)]
        {
            let mut y_csr = vec![f64::NAN; end - begin];
            let mut y_sell = vec![f64::NAN; end - begin];
            a.spmv_rows_excluding(begin, end, skip_b, skip_e, &x, &mut y_csr);
            full.spmv_rows_excluding(begin, end, skip_b, skip_e, &x, &mut y_sell);
            for (u, v) in y_csr.iter().zip(&y_sell) {
                assert_eq!(u.to_bits(), v.to_bits());
            }
        }
        // Row-block conversion (σ-unaligned), local row indexing.
        let (blk_b, blk_e) = (130, 460);
        let block = SellMatrix::from_csr_rows(&a, blk_b, blk_e).unwrap();
        let mut y_csr = vec![f64::NAN; 100];
        let mut y_sell = vec![f64::NAN; 100];
        a.spmv_rows_excluding(blk_b + 50, blk_b + 150, 200, 280, &x, &mut y_csr);
        block.spmv_rows_excluding(50, 150, 200, 280, &x, &mut y_sell);
        for (u, v) in y_csr.iter().zip(&y_sell) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn rejects_bad_row_ranges() {
        let a = poisson_2d(4);
        assert!(SellMatrix::from_csr_rows(&a, 10, 5).is_err());
        assert!(SellMatrix::from_csr_rows(&a, 0, 17).is_err());
    }

    #[test]
    fn fill_ratio_reflects_padding() {
        // A banded stencil sorts into near-uniform slices: tiny padding.
        let banded = SellMatrix::from_csr(&poisson_2d(32)).unwrap();
        assert!(banded.fill_ratio() < 1.2, "fill {}", banded.fill_ratio());
        // One dense row per window forces a full-width slice each window.
        let mut coo = CooMatrix::new(SELL_SIGMA, SELL_SIGMA);
        for c in 0..SELL_SIGMA {
            coo.push(0, c, 1.0).unwrap();
            coo.push(c, c, 1.0).unwrap();
        }
        let spiked = SellMatrix::from_csr(&coo.to_csr()).unwrap();
        assert!(spiked.fill_ratio() > 2.0, "fill {}", spiked.fill_ratio());
    }
}
