//! MatrixMarket (`.mtx`) reader/writer.
//!
//! The paper evaluates on matrices from the University of Florida (SuiteSparse)
//! collection, distributed in MatrixMarket coordinate format. This module lets
//! the benchmark harnesses load those files directly when they are available,
//! falling back to the synthetic [`crate::proxies`] otherwise.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use crate::{CooMatrix, CsrMatrix, SparseError};

/// Symmetry declared in a MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries are stored explicitly.
    General,
    /// Only the lower triangle is stored; the upper triangle is mirrored.
    Symmetric,
}

/// Parses a MatrixMarket *coordinate real* stream into a CSR matrix.
///
/// Supported headers: `%%MatrixMarket matrix coordinate real general` and
/// `... coordinate real symmetric`. Pattern / complex / array formats are
/// rejected with a descriptive error.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CsrMatrix, SparseError> {
    let mut lines = reader.lines();

    // Header line.
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                break line;
            }
            None => return Err(SparseError::Parse("empty MatrixMarket file".into())),
        }
    };
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(SparseError::Parse(format!(
            "missing %%MatrixMarket header, found: {header}"
        )));
    }
    if !header_lc.contains("matrix") || !header_lc.contains("coordinate") {
        return Err(SparseError::Parse(
            "only `matrix coordinate` MatrixMarket files are supported".into(),
        ));
    }
    if header_lc.contains("complex") || header_lc.contains("pattern") {
        return Err(SparseError::Parse(
            "complex / pattern MatrixMarket files are not supported".into(),
        ));
    }
    let symmetry = if header_lc.contains("symmetric") {
        MmSymmetry::Symmetric
    } else {
        MmSymmetry::General
    };

    // Size line (skipping comments).
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => return Err(SparseError::Parse("missing size line".into())),
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| SparseError::Parse(format!("bad size token `{t}`: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!(
            "size line must have 3 fields, found {}",
            dims.len()
        )));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(rows, cols, nnz * 2);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing row index".into()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad row index: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing column index".into()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad column index: {e}")))?;
        // A missing value token means the file is `pattern` format (or
        // damaged); defaulting it to 1.0 silently fabricates matrix data,
        // so it is a hard parse error.
        let v: f64 = it
            .next()
            .ok_or_else(|| {
                SparseError::Parse(format!(
                    "entry {r} {c} has no value token (pattern-format data in a real file?)"
                ))
            })?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad value: {e}")))?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse(
                "MatrixMarket indices are 1-based; found 0".into(),
            ));
        }
        match symmetry {
            MmSymmetry::General => coo.push(r - 1, c - 1, v)?,
            MmSymmetry::Symmetric => {
                // The format stores only the lower triangle of a symmetric
                // matrix; an upper-triangle entry means the writer did not
                // follow the spec, and mirroring it would double-count
                // against a matching lower entry.
                if c > r {
                    return Err(SparseError::Parse(format!(
                        "symmetric file stores upper-triangle entry {r} {c}; \
                         the format requires the lower triangle only"
                    )));
                }
                coo.push_symmetric(r - 1, c - 1, v)?
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "header declares {nnz} entries but {seen} were found"
        )));
    }
    Ok(coo.to_csr())
}

/// Reads a MatrixMarket file from disk.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix, SparseError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market(BufReader::new(file))
}

/// Writes a CSR matrix in MatrixMarket *coordinate real general* format.
pub fn write_matrix_market<W: Write>(matrix: &CsrMatrix, mut writer: W) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz()
    )?;
    for r in 0..matrix.rows() {
        let (cols, vals) = matrix.row(r);
        for (c, v) in cols.iter().zip(vals) {
            writeln!(writer, "{} {} {:.17e}", r + 1, c + 1, v)?;
        }
    }
    Ok(())
}

/// Writes a CSR matrix to a MatrixMarket file on disk.
pub fn write_matrix_market_file<P: AsRef<Path>>(
    matrix: &CsrMatrix,
    path: P,
) -> Result<(), SparseError> {
    let file = std::fs::File::create(path)?;
    write_matrix_market(matrix, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_matrix() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 4\n\
                    1 1 2.0\n\
                    2 2 3.0\n\
                    3 3 4.0\n\
                    1 3 -1.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 2), -1.0);
    }

    #[test]
    fn parse_symmetric_matrix_mirrors_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 2.0\n\
                    2 1 -1.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn roundtrip_through_writer() {
        let a = crate::generators::poisson_2d(5);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let a = crate::generators::random_spd(30, 3, 5);
        let path = std::env::temp_dir().join("feir_mm_roundtrip_test.mtx");
        write_matrix_market_file(&a, &path).unwrap();
        let b = read_matrix_market_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n1 1\n".as_bytes())
                .is_err()
        );
    }

    #[test]
    fn rejects_missing_value_token() {
        // `coordinate real` declares a value per entry; a bare index pair is
        // pattern-format data and must not silently become 1.0.
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("no value token"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn rejects_upper_triangle_entries_in_symmetric_files() {
        // "1 2" is above the diagonal: a spec-violating symmetric file whose
        // mirror would double-count against a stored "2 1".
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 2.0\n\
                    1 2 -1.0\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("upper-triangle"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn rejects_zero_based_indices_and_wrong_counts() {
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5.0\n";
        assert!(read_matrix_market(zero_based.as_bytes()).is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n";
        assert!(read_matrix_market(wrong_count.as_bytes()).is_err());
    }
}
