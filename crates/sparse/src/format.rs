//! Per-matrix storage-format selection: CSR vs SELL-C-σ, chosen by a
//! one-shot analysis of the matrix (or forced via `FEIR_SPMV_FORMAT`).
//!
//! The solvers never pick a format themselves — they build a
//! [`SpmvBackend`] at solve entry (per rank, for the distributed loops) and
//! route every matvec and fused matvec-dot through it. Because the SELL
//! kernels are bitwise-identical to their CSR counterparts (see
//! [`crate::sell`]), the choice affects only speed, never results: a forced
//! `FEIR_SPMV_FORMAT=sell` run reproduces a `csr` run bit-for-bit.

use std::ops::Range;

use crate::sell::{SellMatrix, SELL_C, SELL_SIGMA};
use crate::{fused, CsrMatrix};

/// Environment knob forcing the SpMV storage format. Accepted values are
/// `csr`, `sell` and `auto` (the default); anything else is a hard error,
/// like the `FEIR_WORKER_*` knobs — a typo must not silently fall back.
pub const ENV_SPMV_FORMAT: &str = "FEIR_SPMV_FORMAT";

/// Requested SpMV storage format (the value of [`ENV_SPMV_FORMAT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpmvFormat {
    /// Always use the CSR kernels.
    Csr,
    /// Always convert to SELL-C-σ, regardless of predicted padding.
    Sell,
    /// Let the [`FormatAnalysis`] heuristic decide per matrix (default).
    Auto,
}

impl SpmvFormat {
    /// Parses a format name.
    ///
    /// # Errors
    /// Returns a description of the valid values if `raw` is none of them.
    pub fn parse(raw: &str) -> Result<Self, String> {
        match raw {
            "csr" => Ok(Self::Csr),
            "sell" => Ok(Self::Sell),
            "auto" => Ok(Self::Auto),
            _ => Err(format!(
                "{ENV_SPMV_FORMAT}={raw} is invalid: expected csr, sell, or auto"
            )),
        }
    }

    /// Reads [`ENV_SPMV_FORMAT`]; unset means [`SpmvFormat::Auto`].
    ///
    /// # Panics
    /// Panics on a malformed value: format selection changes performance
    /// only, so a typo silently ignored would be impossible to notice.
    pub fn from_env() -> Self {
        match std::env::var(ENV_SPMV_FORMAT) {
            Ok(raw) => match Self::parse(&raw) {
                Ok(format) => format,
                Err(msg) => panic!("{msg}"),
            },
            Err(_) => Self::Auto,
        }
    }
}

/// A *resolved* storage format: what a backend actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixFormat {
    /// Compressed sparse row.
    Csr,
    /// Sliced ELLPACK ([`crate::sell`]).
    Sell,
}

/// Row blocks smaller than this always stay CSR under `auto`: the one-shot
/// conversion and the permutation bookkeeping cannot pay off on a block
/// that fits two σ-windows, and the recovery paths rebuild backends for
/// page-sized blocks on the fly.
pub const SELL_MIN_ROWS: usize = 2 * SELL_SIGMA;

/// Maximum predicted SELL fill (`padded_nnz / nnz`) `auto` accepts: above
/// this, padding-induced extra traffic outweighs the vectorization win.
pub const SELL_MAX_FILL: f64 = 1.35;

/// One-shot structural analysis of a row block, driving `auto` selection.
#[derive(Debug, Clone)]
pub struct FormatAnalysis {
    /// Rows in the analyzed block.
    pub rows: usize,
    /// Stored entries in the analyzed block.
    pub nnz: usize,
    /// Shortest row.
    pub min_row_len: usize,
    /// Longest row.
    pub max_row_len: usize,
    /// Mean row length.
    pub mean_row_len: f64,
    /// Population variance of the row lengths.
    pub row_len_variance: f64,
    /// Matrix bandwidth `max |col − row|` over the block (global row
    /// indices); `0` when the block is empty.
    pub bandwidth: usize,
    /// Predicted SELL fill ratio after σ-window sorting (≥ 1.0): the
    /// operative row-length-variance measure — variance *within* a σ-window
    /// is what padding pays for, variance across windows is free.
    pub predicted_fill: f64,
    /// The format `auto` resolves to for this block.
    pub choice: MatrixFormat,
}

/// Analyzes the row block `[row_begin, row_end)` of `a`.
///
/// Cost: O(rows) for the length statistics and the σ-sort simulation, plus
/// one O(nnz) sweep for the bandwidth — skipped (reported as 0) when the
/// rows floor already forces CSR, so per-page recovery backends stay cheap.
pub fn analyze_rows(a: &CsrMatrix, row_begin: usize, row_end: usize) -> FormatAnalysis {
    assert!(row_end >= row_begin && row_end <= a.rows());
    let rows = row_end - row_begin;
    let nnz = a.row_ptr()[row_end] - a.row_ptr()[row_begin];
    let lens: Vec<usize> = (row_begin..row_end)
        .map(|r| a.row_ptr()[r + 1] - a.row_ptr()[r])
        .collect();
    let min_row_len = lens.iter().copied().min().unwrap_or(0);
    let max_row_len = lens.iter().copied().max().unwrap_or(0);
    let mean_row_len = if rows == 0 {
        0.0
    } else {
        nnz as f64 / rows as f64
    };
    let row_len_variance = if rows == 0 {
        0.0
    } else {
        lens.iter()
            .map(|&l| {
                let d = l as f64 - mean_row_len;
                d * d
            })
            .sum::<f64>()
            / rows as f64
    };

    // Simulate the σ-window descending-length sort and sum the resulting
    // slice widths: exactly the padding a real conversion would produce.
    let mut padded = 0usize;
    let mut window = Vec::with_capacity(SELL_SIGMA);
    for w in lens.chunks(SELL_SIGMA) {
        window.clear();
        window.extend_from_slice(w);
        window.sort_unstable_by(|x, y| y.cmp(x));
        for slice in window.chunks(SELL_C) {
            padded += slice[0] * SELL_C;
        }
    }
    let predicted_fill = if nnz == 0 {
        1.0
    } else {
        padded as f64 / nnz as f64
    };

    let small = rows < SELL_MIN_ROWS;
    let bandwidth = if small {
        0
    } else {
        (row_begin..row_end)
            .flat_map(|r| a.row(r).0.iter().map(move |&c| c.abs_diff(r)))
            .max()
            .unwrap_or(0)
    };
    let choice = if small || nnz == 0 || predicted_fill > SELL_MAX_FILL {
        MatrixFormat::Csr
    } else {
        MatrixFormat::Sell
    };

    FormatAnalysis {
        rows,
        nnz,
        min_row_len,
        max_row_len,
        mean_row_len,
        row_len_variance,
        bandwidth,
        predicted_fill,
        choice,
    }
}

/// [`analyze_rows`] over the full matrix.
pub fn analyze(a: &CsrMatrix) -> FormatAnalysis {
    analyze_rows(a, 0, a.rows())
}

/// The format-polymorphic SpMV surface: both storage backends expose the
/// same serial/parallel matvec and fused matvec-dot kernels, all
/// bitwise-identical across implementors.
pub trait SparseOps {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Number of columns.
    fn cols(&self) -> usize;
    /// Number of stored entries (excluding any padding).
    fn nnz(&self) -> usize;
    /// Serial `y = A·x`.
    fn spmv(&self, x: &[f64], y: &mut [f64]);
    /// Parallel `y = A·x`, bitwise-identical to [`SparseOps::spmv`].
    fn spmv_parallel(&self, x: &[f64], y: &mut [f64]);
    /// Fused serial `y = A·x` with `⟨x, y⟩` (square matrices).
    fn spmv_dot(&self, x: &[f64], y: &mut [f64]) -> f64;
    /// Fused parallel form of [`SparseOps::spmv_dot`].
    fn spmv_dot_parallel(&self, x: &[f64], y: &mut [f64]) -> f64;
}

impl SparseOps for CsrMatrix {
    fn rows(&self) -> usize {
        CsrMatrix::rows(self)
    }
    fn cols(&self) -> usize {
        CsrMatrix::cols(self)
    }
    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::spmv(self, x, y);
    }
    fn spmv_parallel(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::spmv_parallel(self, x, y);
    }
    fn spmv_dot(&self, x: &[f64], y: &mut [f64]) -> f64 {
        fused::spmv_dot(self, x, y)
    }
    fn spmv_dot_parallel(&self, x: &[f64], y: &mut [f64]) -> f64 {
        fused::spmv_dot_parallel(self, x, y)
    }
}

impl SparseOps for SellMatrix {
    fn rows(&self) -> usize {
        SellMatrix::rows(self)
    }
    fn cols(&self) -> usize {
        SellMatrix::cols(self)
    }
    fn nnz(&self) -> usize {
        SellMatrix::nnz(self)
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        SellMatrix::spmv(self, x, y);
    }
    fn spmv_parallel(&self, x: &[f64], y: &mut [f64]) {
        SellMatrix::spmv_parallel(self, x, y);
    }
    fn spmv_dot(&self, x: &[f64], y: &mut [f64]) -> f64 {
        SellMatrix::spmv_dot(self, x, y)
    }
    fn spmv_dot_parallel(&self, x: &[f64], y: &mut [f64]) -> f64 {
        SellMatrix::spmv_dot_parallel(self, x, y)
    }
}

/// A resolved SpMV backend for one row block of one matrix.
///
/// Built once at solve entry (or once per rank, over the rank's owned
/// block) from a borrowed [`CsrMatrix`]; the optional SELL conversion is
/// one-shot and amortized over the whole solve. The backend itself owns no
/// reference to the source matrix — callers pass it to every kernel, which
/// keeps the type free of lifetimes so solver state can embed it.
#[derive(Debug, Clone)]
pub struct SpmvBackend {
    range: Range<usize>,
    cols: usize,
    format: MatrixFormat,
    sell: Option<SellMatrix>,
}

impl SpmvBackend {
    /// Selects a backend for the full matrix: [`SpmvFormat::from_env`]
    /// resolved through [`analyze`] when it says `auto`.
    pub fn select(a: &CsrMatrix) -> Self {
        Self::with_format_rows(a, 0..a.rows(), SpmvFormat::from_env())
    }

    /// Selects a backend for the row block `[range.start, range.end)` — the
    /// rank-local form: only the owned rows are analyzed and (possibly)
    /// converted, while `x` stays full-length.
    pub fn select_rows(a: &CsrMatrix, range: Range<usize>) -> Self {
        Self::with_format_rows(a, range, SpmvFormat::from_env())
    }

    /// [`SpmvBackend::select`] with an explicit format request.
    pub fn with_format(a: &CsrMatrix, format: SpmvFormat) -> Self {
        Self::with_format_rows(a, 0..a.rows(), format)
    }

    /// [`SpmvBackend::select_rows`] with an explicit format request.
    pub fn with_format_rows(a: &CsrMatrix, range: Range<usize>, format: SpmvFormat) -> Self {
        assert!(range.start <= range.end && range.end <= a.rows());
        let resolved = match format {
            SpmvFormat::Csr => MatrixFormat::Csr,
            SpmvFormat::Sell => MatrixFormat::Sell,
            SpmvFormat::Auto => analyze_rows(a, range.start, range.end).choice,
        };
        let sell = match resolved {
            MatrixFormat::Csr => None,
            MatrixFormat::Sell => Some(
                SellMatrix::from_csr_rows(a, range.start, range.end)
                    .expect("CSR→SELL conversion failed"),
            ),
        };
        Self {
            range,
            cols: a.cols(),
            format: resolved,
            sell,
        }
    }

    /// The format this backend resolved to.
    #[inline]
    pub fn format(&self) -> MatrixFormat {
        self.format
    }

    /// The row block this backend covers.
    #[inline]
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    #[inline]
    fn check(&self, a: &CsrMatrix) {
        debug_assert_eq!(a.cols(), self.cols, "backend used with a different matrix");
        debug_assert!(self.range.end <= a.rows());
    }

    /// Serial `y = A[range]·x`; for a full-range backend this is the plain
    /// matvec. Bitwise-identical across formats.
    pub fn spmv(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        self.check(a);
        match &self.sell {
            Some(sell) => sell.spmv(x, y),
            None => a.spmv_rows(self.range.start, self.range.end, x, y),
        }
    }

    /// Parallel `y = A[range]·x`. Partial-range backends run on the rank's
    /// own thread and use the serial kernel; full-range backends fan out on
    /// the ambient pool. Bitwise-identical to [`SpmvBackend::spmv`] either
    /// way.
    pub fn spmv_parallel(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        self.check(a);
        if self.range.start != 0 || self.range.end != a.rows() {
            return self.spmv(a, x, y);
        }
        match &self.sell {
            Some(sell) => sell.spmv_parallel(x, y),
            None => a.spmv_parallel(x, y),
        }
    }

    /// Fused serial `y = A[range]·x` with the block-local partial
    /// `⟨x[range], y⟩` — [`fused::spmv_rows_dot`] dispatched over the
    /// formats; the square full-range case is exactly [`fused::spmv_dot`].
    pub fn spmv_dot(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> f64 {
        self.check(a);
        match &self.sell {
            Some(sell) => sell.spmv_dot_at(self.range.start, x, y),
            None => fused::spmv_rows_dot(a, self.range.start, self.range.end, x, y),
        }
    }

    /// Recovery cold path: partial products of the global rows
    /// `[row_begin, row_end)` (inside this backend's range) with the column
    /// block `[col_skip_begin, col_skip_end)` excluded — the
    /// `Σ_{j≠i} A_ij x_j` term of the inverse block relations, dispatched
    /// over the formats and bitwise-identical across them.
    #[allow(clippy::too_many_arguments)]
    pub fn spmv_rows_excluding(
        &self,
        a: &CsrMatrix,
        row_begin: usize,
        row_end: usize,
        col_skip_begin: usize,
        col_skip_end: usize,
        x: &[f64],
        y: &mut [f64],
    ) {
        self.check(a);
        assert!(
            self.range.start <= row_begin && row_end <= self.range.end,
            "row range outside the backend's block"
        );
        match &self.sell {
            Some(sell) => sell.spmv_rows_excluding(
                row_begin - self.range.start,
                row_end - self.range.start,
                col_skip_begin,
                col_skip_end,
                x,
                y,
            ),
            None => a.spmv_rows_excluding(row_begin, row_end, col_skip_begin, col_skip_end, x, y),
        }
    }

    /// Fused parallel `y = A·x` with `⟨x, y⟩`; full-range backends only.
    pub fn spmv_dot_parallel(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) -> f64 {
        self.check(a);
        assert!(
            self.range.start == 0 && self.range.end == a.rows(),
            "spmv_dot_parallel requires a full-range backend"
        );
        match &self.sell {
            Some(sell) => sell.spmv_dot_parallel(x, y),
            None => fused::spmv_dot_parallel(a, x, y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson_2d;
    use crate::CooMatrix;

    #[test]
    fn parse_accepts_exactly_the_three_values() {
        assert_eq!(SpmvFormat::parse("csr"), Ok(SpmvFormat::Csr));
        assert_eq!(SpmvFormat::parse("sell"), Ok(SpmvFormat::Sell));
        assert_eq!(SpmvFormat::parse("auto"), Ok(SpmvFormat::Auto));
        for bad in ["", "CSR", "sell ", "ellpack", "auto\n"] {
            let err = SpmvFormat::parse(bad).unwrap_err();
            assert!(err.contains("is invalid"), "{err}");
            assert!(err.contains(ENV_SPMV_FORMAT), "{err}");
        }
    }

    #[test]
    fn auto_picks_sell_for_banded_stencils() {
        let a = poisson_2d(32); // 1024 uniformish rows
        let analysis = analyze(&a);
        assert_eq!(analysis.choice, MatrixFormat::Sell);
        assert!(analysis.predicted_fill <= SELL_MAX_FILL);
        assert!(analysis.bandwidth >= 32);
        // The prediction matches what the conversion actually produces.
        let sell = SellMatrix::from_csr(&a).unwrap();
        assert!((sell.fill_ratio() - analysis.predicted_fill).abs() < 1e-12);
    }

    #[test]
    fn auto_keeps_csr_for_high_row_variance() {
        // One dense row per σ-window blows up the slice widths.
        let n = 4 * SELL_SIGMA;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, 4.0).unwrap();
        }
        for w in 0..4 {
            let spike = w * SELL_SIGMA;
            for c in 0..n {
                coo.push(spike, c, 0.01).unwrap();
            }
        }
        let analysis = analyze(&coo.to_csr());
        assert!(analysis.predicted_fill > SELL_MAX_FILL);
        assert_eq!(analysis.choice, MatrixFormat::Csr);
        assert!(analysis.row_len_variance > 1.0);
    }

    #[test]
    fn auto_keeps_csr_below_the_rows_floor() {
        let a = poisson_2d(8); // 64 rows: page-block scale
        let analysis = analyze(&a);
        assert_eq!(analysis.choice, MatrixFormat::Csr);
        assert_eq!(analysis.bandwidth, 0, "bandwidth sweep should be skipped");
    }

    #[test]
    fn backend_dispatch_is_bitwise_identical_across_formats() {
        let a = poisson_2d(24);
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.13).cos()).collect();
        let csr = SpmvBackend::with_format(&a, SpmvFormat::Csr);
        let sell = SpmvBackend::with_format(&a, SpmvFormat::Sell);
        assert_eq!(csr.format(), MatrixFormat::Csr);
        assert_eq!(sell.format(), MatrixFormat::Sell);
        let mut y1 = vec![0.0; a.rows()];
        let mut y2 = vec![0.0; a.rows()];
        let d1 = csr.spmv_dot(&a, &x, &mut y1);
        let d2 = sell.spmv_dot(&a, &x, &mut y2);
        assert_eq!(d1.to_bits(), d2.to_bits());
        assert_eq!(y1, y2);

        let range = 128..448;
        let csr_b = SpmvBackend::with_format_rows(&a, range.clone(), SpmvFormat::Csr);
        let sell_b = SpmvBackend::with_format_rows(&a, range.clone(), SpmvFormat::Sell);
        let mut q1 = vec![0.0; range.len()];
        let mut q2 = vec![0.0; range.len()];
        let p1 = csr_b.spmv_dot(&a, &x, &mut q1);
        let p2 = sell_b.spmv_dot(&a, &x, &mut q2);
        assert_eq!(p1.to_bits(), p2.to_bits());
        assert_eq!(q1, q2);
    }

    #[test]
    fn env_roundtrip_resolves_all_valid_values() {
        // Only ever set *valid* values: another test racing this one would
        // then still resolve a correct (bitwise-equivalent) backend.
        let previous = std::env::var(ENV_SPMV_FORMAT).ok();
        for (raw, expected) in [
            ("csr", SpmvFormat::Csr),
            ("sell", SpmvFormat::Sell),
            ("auto", SpmvFormat::Auto),
        ] {
            std::env::set_var(ENV_SPMV_FORMAT, raw);
            assert_eq!(SpmvFormat::from_env(), expected);
        }
        match previous {
            Some(v) => std::env::set_var(ENV_SPMV_FORMAT, v),
            None => std::env::remove_var(ENV_SPMV_FORMAT),
        }
        if std::env::var(ENV_SPMV_FORMAT).is_err() {
            assert_eq!(SpmvFormat::from_env(), SpmvFormat::Auto);
        }
    }
}
