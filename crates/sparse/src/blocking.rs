//! Page-aligned block partitions of vectors and matrices.
//!
//! The paper's error model loses data in units of one memory page
//! (512 doubles). All recovery relations of Table 1 are therefore expressed
//! over a block partition of the vector index space where block `i` covers the
//! rows `[i·B, min((i+1)·B, n))` with `B = 512` by default. This module owns
//! that partition and the extraction/factorization of the diagonal blocks
//! `A_ii` needed for inverse (right-hand-side) recoveries.

use crate::dense::{Cholesky, Lu};
use crate::{CsrMatrix, DenseMatrix, SparseError, PAGE_DOUBLES};

/// A uniform block partition of `n` indices into blocks of at most
/// `block_size` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPartition {
    n: usize,
    block_size: usize,
}

impl BlockPartition {
    /// Creates a partition of `n` indices with the given block size.
    ///
    /// # Panics
    /// Panics if `block_size == 0`.
    pub fn new(n: usize, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self { n, block_size }
    }

    /// Creates the default page-sized partition (512 doubles per block).
    pub fn pages(n: usize) -> Self {
        Self::new(n, PAGE_DOUBLES)
    }

    /// Total number of indices covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the partition covers no indices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Block size (last block may be smaller).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.n.div_ceil(self.block_size)
    }

    /// Half-open index range of block `b`.
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        let start = b * self.block_size;
        let end = ((b + 1) * self.block_size).min(self.n);
        assert!(
            start < self.n || (self.n == 0 && start == 0),
            "block out of range"
        );
        start..end
    }

    /// Block that contains index `i`.
    pub fn block_of(&self, i: usize) -> usize {
        assert!(i < self.n, "index out of range");
        i / self.block_size
    }

    /// Iterates over `(block_index, range)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> + '_ {
        (0..self.num_blocks()).map(move |b| (b, self.range(b)))
    }
}

/// Pre-extracted (and optionally pre-factorized) diagonal blocks `A_ii` of a
/// square sparse matrix over a [`BlockPartition`].
///
/// For SPD matrices the blocks are factorized with Cholesky; for general
/// matrices LU with partial pivoting is used. A block whose factorization
/// fails falls back to a least-squares solve performed lazily by the caller.
#[derive(Debug, Clone)]
pub struct DiagonalBlocks {
    partition: BlockPartition,
    factors: Vec<BlockFactor>,
}

/// Factorization of one diagonal block.
#[derive(Debug, Clone)]
pub enum BlockFactor {
    /// Cholesky factor of an SPD block.
    Cholesky(Cholesky),
    /// LU factor of a general non-singular block.
    Lu(Lu),
    /// The block could not be factorized (singular); callers must fall back to
    /// a least-squares recovery on the full block column.
    Singular,
}

impl DiagonalBlocks {
    /// Extracts and factorizes all diagonal blocks of `a` over `partition`.
    ///
    /// If `spd` is true, Cholesky is attempted first and LU is used as a
    /// fallback (a diagonal block of an SPD matrix is SPD, but round-off or a
    /// user passing a nearly-singular matrix should not abort the solver).
    ///
    /// # Errors
    /// Returns an error if the matrix is not square or does not match the
    /// partition size.
    pub fn factorize(
        a: &CsrMatrix,
        partition: BlockPartition,
        spd: bool,
    ) -> Result<Self, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if a.rows() != partition.len() {
            return Err(SparseError::DimensionMismatch {
                expected: (partition.len(), partition.len()),
                found: (a.rows(), a.cols()),
            });
        }
        let mut factors = Vec::with_capacity(partition.num_blocks());
        for (_, range) in partition.iter() {
            let block = a.dense_block(range.start, range.end, range.start, range.end);
            factors.push(Self::factorize_block(&block, spd));
        }
        Ok(Self { partition, factors })
    }

    pub(crate) fn factorize_block(block: &DenseMatrix, spd: bool) -> BlockFactor {
        if spd {
            if let Ok(chol) = block.cholesky() {
                return BlockFactor::Cholesky(chol);
            }
        }
        match block.lu() {
            Ok(lu) => BlockFactor::Lu(lu),
            Err(_) => BlockFactor::Singular,
        }
    }

    /// The partition the blocks were extracted over.
    pub fn partition(&self) -> BlockPartition {
        self.partition
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.factors.len()
    }

    /// Factor of block `b`.
    pub fn factor(&self, b: usize) -> &BlockFactor {
        &self.factors[b]
    }

    /// Returns true if block `b` has a usable direct factorization.
    pub fn is_solvable(&self, b: usize) -> bool {
        !matches!(self.factors[b], BlockFactor::Singular)
    }

    /// Solves `A_bb x = rhs` for block `b`, returning `None` if the block is
    /// singular and a least-squares fallback is required.
    pub fn solve(&self, b: usize, rhs: &[f64]) -> Option<Vec<f64>> {
        match &self.factors[b] {
            BlockFactor::Cholesky(c) => Some(c.solve(rhs)),
            BlockFactor::Lu(lu) => Some(lu.solve(rhs)),
            BlockFactor::Singular => None,
        }
    }

    /// Solves the combined system for several simultaneously lost blocks
    /// (Section 2.4, case 1 of the paper):
    ///
    /// ```text
    /// [ A_ii A_ij ] [x_i]   [rhs_i]
    /// [ A_ji A_jj ] [x_j] = [rhs_j]
    /// ```
    ///
    /// generalized to any number of blocks. The combined dense sub-matrix is
    /// factorized on the fly (it is not pre-computed since simultaneous
    /// related losses are rare).
    pub fn solve_combined(
        &self,
        a: &CsrMatrix,
        blocks: &[usize],
        rhs: &[f64],
        spd: bool,
    ) -> Option<Vec<f64>> {
        let ranges: Vec<_> = blocks.iter().map(|&b| self.partition.range(b)).collect();
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(rhs.len(), total, "combined rhs length mismatch");
        // Assemble the combined dense matrix.
        let mut m = DenseMatrix::zeros(total, total);
        let mut row_offset = 0;
        for ri in &ranges {
            let mut col_offset = 0;
            for rj in &ranges {
                let block = a.dense_block(ri.start, ri.end, rj.start, rj.end);
                for r in 0..block.rows() {
                    for c in 0..block.cols() {
                        m.set(row_offset + r, col_offset + c, block.get(r, c));
                    }
                }
                col_offset += rj.len();
            }
            row_offset += ri.len();
        }
        match Self::factorize_block(&m, spd) {
            BlockFactor::Cholesky(c) => Some(c.solve(rhs)),
            BlockFactor::Lu(lu) => Some(lu.solve(rhs)),
            BlockFactor::Singular => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::poisson_2d;

    #[test]
    fn partition_geometry() {
        let p = BlockPartition::new(1000, 512);
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.range(0), 0..512);
        assert_eq!(p.range(1), 512..1000);
        assert_eq!(p.block_of(0), 0);
        assert_eq!(p.block_of(511), 0);
        assert_eq!(p.block_of(512), 1);
        assert_eq!(p.block_of(999), 1);
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn pages_partition_uses_512() {
        let p = BlockPartition::pages(2048);
        assert_eq!(p.block_size(), PAGE_DOUBLES);
        assert_eq!(p.num_blocks(), 4);
    }

    #[test]
    fn exact_multiple_partition() {
        let p = BlockPartition::new(1024, 512);
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.range(1), 512..1024);
    }

    #[test]
    fn diagonal_block_solve_recovers_block_of_known_solution() {
        // A x = b, erase block 1 of x and recover it from
        // A_11 x_1 = b_1 - sum_{j != 1} A_1j x_j.
        let a = poisson_2d(12); // n = 144
        let n = a.rows();
        let part = BlockPartition::new(n, 48);
        let blocks = DiagonalBlocks::factorize(&a, part, true).unwrap();
        assert_eq!(blocks.num_blocks(), 3);
        assert!(blocks.is_solvable(1));

        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);

        let range = part.range(1);
        let mut rhs = vec![0.0; range.len()];
        a.spmv_rows_excluding(
            range.start,
            range.end,
            range.start,
            range.end,
            &x_true,
            &mut rhs,
        );
        for (k, r) in range.clone().enumerate() {
            rhs[k] = b[r] - rhs[k];
        }
        let recovered = blocks.solve(1, &rhs).unwrap();
        for (k, r) in range.enumerate() {
            assert!(
                (recovered[k] - x_true[r]).abs() < 1e-9,
                "row {r}: {} vs {}",
                recovered[k],
                x_true[r]
            );
        }
    }

    #[test]
    fn combined_solve_recovers_two_adjacent_blocks() {
        let a = poisson_2d(12);
        let n = a.rows();
        let part = BlockPartition::new(n, 36);
        let blocks = DiagonalBlocks::factorize(&a, part, true).unwrap();

        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);

        // Lose blocks 1 and 2 simultaneously.
        let lost = [1usize, 2usize];
        let ranges: Vec<_> = lost.iter().map(|&l| part.range(l)).collect();
        let mut rhs = Vec::new();
        for ri in &ranges {
            for r in ri.clone() {
                let (cols, vals) = a.row(r);
                let mut acc = b[r];
                for (c, v) in cols.iter().zip(vals) {
                    let in_lost = ranges.iter().any(|rj| rj.contains(c));
                    if !in_lost {
                        acc -= v * x_true[*c];
                    }
                }
                rhs.push(acc);
            }
        }
        let recovered = blocks.solve_combined(&a, &lost, &rhs, true).unwrap();
        let mut k = 0;
        for ri in &ranges {
            for r in ri.clone() {
                assert!((recovered[k] - x_true[r]).abs() < 1e-9);
                k += 1;
            }
        }
    }

    #[test]
    fn singular_block_reports_unsolvable() {
        // A matrix with an all-zero diagonal block.
        let mut coo = crate::CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        // rows 2..4 are zero => block 1 singular
        let a = coo.to_csr();
        let part = BlockPartition::new(4, 2);
        let blocks = DiagonalBlocks::factorize(&a, part, false).unwrap();
        assert!(blocks.is_solvable(0));
        assert!(!blocks.is_solvable(1));
        assert!(blocks.solve(1, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn factorize_rejects_mismatched_partition() {
        let a = poisson_2d(4);
        let part = BlockPartition::new(10, 4);
        assert!(DiagonalBlocks::factorize(&a, part, true).is_err());
    }
}
