//! Dense vector kernels used by all solvers, in serial and rayon-parallel form.
//!
//! These are the `u = α·v + β·w`, dot-product and norm operations that appear
//! in every Krylov iteration and whose block decomposition yields the linear
//! redundancy relations of the paper (Table 1, middle row).

use rayon::prelude::*;

/// Fixed chunk length (in doubles) of the parallel reductions.
///
/// Reduction chunk boundaries must **not** depend on the pool size: each
/// chunk's partial sum is combined in chunk order, so with fixed boundaries
/// `dot_parallel` / `norm2_squared_parallel` return bitwise-identical results
/// for every thread count — the shared-memory mirror of the rank-ordered
/// allreduce in `feir-dist`.
pub const DOT_CHUNK: usize = 4096;

/// Minimum elements per chunk for element-wise parallel kernels: below this,
/// per-job scheduling overhead exceeds the arithmetic.
const MIN_PARALLEL_CHUNK: usize = 1024;

/// Chunk length for element-wise parallel kernels over `n` elements, sized
/// for the ambient rayon pool (a few chunks per worker so work stealing can
/// rebalance, but never below `MIN_PARALLEL_CHUNK`).
pub fn parallel_chunk_len(n: usize) -> usize {
    parallel_chunk_len_with_min(n, MIN_PARALLEL_CHUNK)
}

/// [`parallel_chunk_len`] with a caller-chosen minimum chunk, for kernels
/// whose per-item cost is far from one flop (e.g. SpMV rows). Delegates to
/// the pool's own sizing heuristic so pre-chunked kernels and plain `par_*`
/// operations stay consistently chunked.
pub fn parallel_chunk_len_with_min(n: usize, min_chunk: usize) -> usize {
    rayon::iter::pool_chunk_len(n, min_chunk)
}

/// Dot product `⟨x, y⟩`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Below this length `dot_parallel` / `norm2_squared_parallel` skip the
/// parallel machinery entirely: a short reduction is a few microseconds of
/// arithmetic, less than the fan-out cost. Sized independently of the
/// element-wise ([`MIN_PARALLEL_AXPY_ELEMS`]) and SpMV gates — a dot carries
/// one multiply-add per element but also a reduction dependence, so its
/// break-even differs from both.
pub const MIN_PARALLEL_DOT_ELEMS: usize = 32_768;

/// The serial evaluation of the *parallel* reduction order: per-chunk dots
/// folded left-to-right in chunk order. This is bitwise-identical to
/// [`dot_parallel`] at every thread count (it *is* that fold, computed on one
/// thread), which is what lets the serial gate below change only scheduling,
/// never values.
fn dot_chunked(x: &[f64], y: &[f64]) -> f64 {
    x.chunks(DOT_CHUNK)
        .zip(y.chunks(DOT_CHUNK))
        .map(|(xc, yc)| dot(xc, yc))
        .sum()
}

/// Rayon-parallel dot product over fixed [`DOT_CHUNK`]-sized chunks.
///
/// Per-chunk partial sums are combined in chunk order, so the result is
/// bitwise-deterministic: identical across repeated runs *and* across thread
/// counts (it equals the left-to-right fold of the per-chunk serial dots).
/// Short inputs (or a single-worker pool) take a serial fast path computing
/// exactly that fold, so the gate never affects values.
pub fn dot_parallel(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    if x.len() < MIN_PARALLEL_DOT_ELEMS || rayon::current_num_threads() <= 1 {
        return dot_chunked(x, y);
    }
    x.par_chunks(DOT_CHUNK)
        .zip(y.par_chunks(DOT_CHUNK))
        .map(|(xc, yc)| dot(xc, yc))
        .sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
pub fn norm2_squared(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Rayon-parallel squared norm with the [`dot_parallel`] determinism
/// guarantee.
pub fn norm2_squared_parallel(x: &[f64]) -> f64 {
    dot_parallel(x, x)
}

/// Rayon-parallel Euclidean norm.
pub fn norm2_parallel(x: &[f64]) -> f64 {
    norm2_squared_parallel(x).sqrt()
}

/// Infinity norm `‖x‖∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// `y ← y + α·x` (BLAS `axpy`).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Below this length the element-wise parallel kernels (`axpy`/`xpay`) run
/// serially: the arithmetic is cheaper than waking workers. (The result is
/// element-wise identical either way, so the gate never affects values.)
/// Sized independently of the dot and SpMV gates.
pub const MIN_PARALLEL_AXPY_ELEMS: usize = 32_768;

/// Rayon-parallel `y ← y + α·x`, chunked for the ambient pool. Element-wise,
/// so the result is bitwise-identical to [`axpy`] at any thread count.
pub fn axpy_parallel(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if y.len() < MIN_PARALLEL_AXPY_ELEMS || rayon::current_num_threads() <= 1 {
        return axpy(alpha, x, y);
    }
    let chunk = parallel_chunk_len(y.len());
    y.par_chunks_mut(chunk)
        .zip(x.par_chunks(chunk))
        .for_each(|(yc, xc)| {
            for (yi, xi) in yc.iter_mut().zip(xc) {
                *yi += alpha * xi;
            }
        });
}

/// `y ← x + β·y` (the `d ⇐ g + β·d` update of CG, BLAS `xpay`).
pub fn xpay(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpay: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Rayon-parallel `y ← x + β·y`, chunked for the ambient pool. Element-wise,
/// so the result is bitwise-identical to [`xpay`] at any thread count.
pub fn xpay_parallel(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpay: length mismatch");
    if y.len() < MIN_PARALLEL_AXPY_ELEMS || rayon::current_num_threads() <= 1 {
        return xpay(x, beta, y);
    }
    let chunk = parallel_chunk_len(y.len());
    y.par_chunks_mut(chunk)
        .zip(x.par_chunks(chunk))
        .for_each(|(yc, xc)| {
            for (yi, xi) in yc.iter_mut().zip(xc) {
                *yi = xi + beta * *yi;
            }
        });
}

/// `out ← α·v + β·w`, the general linear combination of Table 1.
pub fn linear_combination(alpha: f64, v: &[f64], beta: f64, w: &[f64], out: &mut [f64]) {
    assert_eq!(v.len(), w.len(), "linear_combination: length mismatch");
    assert_eq!(v.len(), out.len(), "linear_combination: length mismatch");
    for ((o, vi), wi) in out.iter_mut().zip(v).zip(w) {
        *o = alpha * vi + beta * wi;
    }
}

/// `x ← α·x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Copies `src` into `dst`.
pub fn copy(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "copy: length mismatch");
    dst.copy_from_slice(src);
}

/// `out ← a − b`.
pub fn sub(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    assert_eq!(a.len(), out.len(), "sub: length mismatch");
    for ((o, ai), bi) in out.iter_mut().zip(a).zip(b) {
        *o = ai - bi;
    }
}

/// Fills `x` with zeros.
pub fn zero(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = 0.0;
    }
}

/// A-norm `‖x‖_A = sqrt(xᵀ A x)` of a vector with respect to an SPD matrix.
///
/// Used by the Lossy-Approach theorems (Theorems 1–3 of the paper) which state
/// contraction / minimisation of the error in the A-norm.
pub fn a_norm(a: &crate::CsrMatrix, x: &[f64]) -> f64 {
    let mut ax = vec![0.0; x.len()];
    a.spmv(x, &mut ax);
    dot(x, &ax).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = vec![3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm2_squared(&x), 25.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn dot_parallel_matches_serial() {
        let x: Vec<f64> = (0..10_000).map(|i| (i as f64).cos()).collect();
        let y: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.5).sin()).collect();
        let s = dot(&x, &y);
        let p = dot_parallel(&x, &y);
        assert!((s - p).abs() < 1e-9 * s.abs().max(1.0));
    }

    #[test]
    fn axpy_and_xpay() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);

        let g = vec![1.0, 1.0, 1.0];
        let mut d = vec![2.0, 4.0, 6.0];
        xpay(&g, 0.5, &mut d);
        assert_eq!(d, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn axpy_parallel_matches_serial() {
        let x: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let mut y1 = vec![1.0; 5_000];
        let mut y2 = vec![1.0; 5_000];
        axpy(0.25, &x, &mut y1);
        axpy_parallel(0.25, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn linear_combination_general() {
        let v = vec![1.0, 2.0];
        let w = vec![3.0, 5.0];
        let mut out = vec![0.0; 2];
        linear_combination(2.0, &v, -1.0, &w, &mut out);
        assert_eq!(out, vec![-1.0, -1.0]);
    }

    #[test]
    fn scale_copy_sub_zero() {
        let mut x = vec![1.0, -2.0];
        scale(3.0, &mut x);
        assert_eq!(x, vec![3.0, -6.0]);
        let mut y = vec![0.0; 2];
        copy(&x, &mut y);
        assert_eq!(y, x);
        let mut d = vec![0.0; 2];
        sub(&x, &[1.0, 1.0], &mut d);
        assert_eq!(d, vec![2.0, -7.0]);
        zero(&mut d);
        assert_eq!(d, vec![0.0, 0.0]);
    }

    #[test]
    fn a_norm_of_identity_is_euclidean_norm() {
        let a = crate::CsrMatrix::identity(3);
        let x = vec![1.0, 2.0, 2.0];
        assert!((a_norm(&a, &x) - 3.0).abs() < 1e-14);
    }
}
