//! Dense matrices and the factorizations used to solve recovery block systems.
//!
//! The paper's inverse block relations (Table 1) require solving
//! `A_ii x_i = r_i` where `A_ii` is the diagonal block of the sparse matrix
//! corresponding to one lost memory page (at most 512×512). When `A` is SPD
//! the diagonal block is SPD as well and a Cholesky factorization applies;
//! otherwise LU with partial pivoting or a Householder least-squares solve on
//! the full block column is used, mirroring Agullo et al.'s approach.

use serde::{Deserialize, Serialize};

use crate::SparseError;

/// A dense, row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data has wrong length");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to element `(r, c)`.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Row-major data slice.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        if self.cols == 0 {
            return y;
        }
        for (out, row) in y.iter_mut().zip(self.data.chunks(self.cols)) {
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        if self.cols == 0 {
            return y;
        }
        for (xr, row) in x.iter().zip(self.data.chunks(self.cols)) {
            for (out, a) in y.iter_mut().zip(row) {
                *out += a * xr;
            }
        }
        y
    }

    /// Matrix product `A * B`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Checks that the matrix is square and returns its order.
    fn require_square(&self) -> Result<usize, SparseError> {
        if self.rows != self.cols {
            Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            })
        } else {
            Ok(self.rows)
        }
    }

    /// Computes the Cholesky factorization `A = L Lᵀ`.
    ///
    /// # Errors
    /// Fails with [`SparseError::SingularPivot`] if the matrix is not SPD.
    pub fn cholesky(&self) -> Result<Cholesky, SparseError> {
        Cholesky::new(self)
    }

    /// Computes the LU factorization with partial pivoting.
    pub fn lu(&self) -> Result<Lu, SparseError> {
        Lu::new(self)
    }

    /// Computes the Householder QR factorization.
    pub fn qr(&self) -> Result<Qr, SparseError> {
        Qr::new(self)
    }
}

/// Cholesky factorization `A = L Lᵀ` of an SPD matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cholesky {
    n: usize,
    /// Lower-triangular factor stored row-major, including the diagonal.
    l: Vec<f64>,
}

impl Cholesky {
    /// Factorizes the given SPD matrix.
    pub fn new(a: &DenseMatrix) -> Result<Self, SparseError> {
        let n = a.require_square()?;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(SparseError::SingularPivot { pivot: i });
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Self { n, l })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Forward substitution L y = b.
        for i in 0..n {
            let dot: f64 = (0..i).map(|k| self.l[i * n + k] * b[k]).sum();
            b[i] = (b[i] - dot) / self.l[i * n + i];
        }
        // Backward substitution Lᵀ x = y.
        for i in (0..n).rev() {
            let dot: f64 = ((i + 1)..n).map(|k| self.l[k * n + i] * b[k]).sum();
            b[i] = (b[i] - dot) / self.l[i * n + i];
        }
    }

    /// Solves `A x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

/// LU factorization with partial pivoting `P A = L U`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lu {
    n: usize,
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Vec<f64>,
    /// Row permutation.
    perm: Vec<usize>,
}

impl Lu {
    /// Factorizes the given square matrix.
    pub fn new(a: &DenseMatrix) -> Result<Self, SparseError> {
        let n = a.require_square()?;
        let mut lu = a.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot search.
            let mut pivot_row = k;
            let mut pivot_val = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val == 0.0 || !pivot_val.is_finite() {
                return Err(SparseError::SingularPivot { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    lu.swap(k * n + c, pivot_row * n + c);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                lu[r * n + k] = factor;
                for c in (k + 1)..n {
                    lu[r * n + c] -= factor * lu[k * n + c];
                }
            }
        }
        Ok(Self { n, lu, perm })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower-triangular L.
        for i in 0..n {
            let dot: f64 = (0..i).map(|k| self.lu[i * n + k] * x[k]).sum();
            x[i] -= dot;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let dot: f64 = ((i + 1)..n).map(|k| self.lu[i * n + k] * x[k]).sum();
            x[i] = (x[i] - dot) / self.lu[i * n + i];
        }
        x
    }

    /// Determinant of the factorized matrix (sign includes permutation parity).
    pub fn determinant(&self) -> f64 {
        let n = self.n;
        let mut det: f64 = (0..n).map(|i| self.lu[i * n + i]).product();
        // Count permutation parity.
        let mut seen = vec![false; n];
        let mut swaps = 0usize;
        for i in 0..n {
            if seen[i] {
                continue;
            }
            let mut j = i;
            let mut cycle_len = 0usize;
            while !seen[j] {
                seen[j] = true;
                j = self.perm[j];
                cycle_len += 1;
            }
            swaps += cycle_len - 1;
        }
        if swaps % 2 == 1 {
            det = -det;
        }
        det
    }
}

/// Householder QR factorization; solves least-squares problems
/// `min_x ||A x − b||₂` for `A` with at least as many rows as columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Qr {
    rows: usize,
    cols: usize,
    /// R factor (upper triangular, cols × cols) packed with Householder
    /// vectors below the diagonal (rows × cols).
    qr: Vec<f64>,
    /// Householder scalar coefficients.
    tau: Vec<f64>,
}

impl Qr {
    /// Factorizes the given matrix (`rows >= cols` required).
    pub fn new(a: &DenseMatrix) -> Result<Self, SparseError> {
        let (m, n) = (a.rows, a.cols);
        if m < n {
            return Err(SparseError::DimensionMismatch {
                expected: (n, n),
                found: (m, n),
            });
        }
        let mut qr = a.data.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Compute the norm of the k-th column below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[i * n + k] * qr[i * n + k];
            }
            norm = norm.sqrt();
            if norm == 0.0 {
                return Err(SparseError::SingularPivot { pivot: k });
            }
            let alpha = if qr[k * n + k] > 0.0 { -norm } else { norm };
            // Householder vector v = x - alpha e1, normalized so v[k] = 1.
            let vkk = qr[k * n + k] - alpha;
            for i in (k + 1)..m {
                qr[i * n + k] /= vkk;
            }
            tau[k] = -vkk / alpha;
            qr[k * n + k] = alpha;
            // Apply the reflector to the trailing columns.
            for j in (k + 1)..n {
                let mut dot = qr[k * n + j];
                for i in (k + 1)..m {
                    dot += qr[i * n + k] * qr[i * n + j];
                }
                dot *= tau[k];
                qr[k * n + j] -= dot;
                for i in (k + 1)..m {
                    qr[i * n + j] -= dot * qr[i * n + k];
                }
            }
        }
        Ok(Self {
            rows: m,
            cols: n,
            qr,
            tau,
        })
    }

    /// Solves the least-squares problem `min_x ||A x − b||₂`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.rows);
        let (m, n) = (self.rows, self.cols);
        let mut y = b.to_vec();
        // Apply Qᵀ to b.
        for k in 0..n {
            let mut dot = y[k];
            dot += ((k + 1)..m).map(|i| self.qr[i * n + k] * y[i]).sum::<f64>();
            dot *= self.tau[k];
            y[k] -= dot;
            for (i, yi) in y.iter_mut().enumerate().take(m).skip(k + 1) {
                *yi -= dot * self.qr[i * n + k];
            }
        }
        // Backward substitution with R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let dot: f64 = ((i + 1)..n).map(|k| self.qr[i * n + k] * x[k]).sum();
            x[i] = (y[i] - dot) / self.qr[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_row_major(3, 3, vec![4.0, 1.0, 0.5, 1.0, 5.0, 1.5, 0.5, 1.5, 6.0])
    }

    #[test]
    fn matvec_and_transpose() {
        let a = DenseMatrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(a.matvec_transpose(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn matmul_against_identity() {
        let a = spd3();
        let i = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = spd3();
        let chol = a.cholesky().expect("SPD matrix must factorize");
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = chol.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{xi} vs {ti}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite_matrix() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            a.cholesky(),
            Err(SparseError::SingularPivot { .. })
        ));
    }

    #[test]
    fn lu_solves_general_system() {
        let a =
            DenseMatrix::from_row_major(3, 3, vec![0.0, 2.0, 1.0, 1.0, -1.0, 0.0, 3.0, 0.0, -2.0]);
        let lu = a.lu().expect("non-singular matrix must factorize");
        let x_true = vec![2.0, 0.5, -1.5];
        let b = a.matvec(&x_true);
        let x = lu.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_determinant() {
        let a = DenseMatrix::from_row_major(2, 2, vec![3.0, 1.0, 4.0, 2.0]);
        let lu = a.lu().unwrap();
        assert!((lu.determinant() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_rejects_singular_matrix() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.lu().is_err());
    }

    #[test]
    fn qr_solves_square_system() {
        let a = spd3();
        let qr = a.qr().unwrap();
        let x_true = vec![0.5, 1.5, -0.25];
        let b = a.matvec(&x_true);
        let x = qr.solve_least_squares(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-11);
        }
    }

    #[test]
    fn qr_solves_overdetermined_least_squares() {
        // Fit y = 2x + 1 exactly through 4 points: the residual should be ~0
        // and the solution should recover the coefficients.
        let a = DenseMatrix::from_row_major(4, 2, vec![0.0, 1.0, 1.0, 1.0, 2.0, 1.0, 3.0, 1.0]);
        let b = vec![1.0, 3.0, 5.0, 7.0];
        let qr = a.qr().unwrap();
        let x = qr.solve_least_squares(&b);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qr_least_squares_minimizes_residual() {
        // Inconsistent system: check the normal equations Aᵀ(Ax - b) = 0.
        let a = DenseMatrix::from_row_major(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let b = vec![1.0, 2.0, 0.0];
        let qr = a.qr().unwrap();
        let x = qr.solve_least_squares(&b);
        let ax = a.matvec(&x);
        let residual: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        let grad = a.matvec_transpose(&residual);
        for g in grad {
            assert!(g.abs() < 1e-12, "normal equation residual {g}");
        }
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(a.qr().is_err());
    }

    #[test]
    fn cholesky_solve_in_place_matches_solve() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x1 = chol.solve(&b);
        let mut x2 = b.clone();
        chol.solve_in_place(&mut x2);
        assert_eq!(x1, x2);
    }
}
