//! Solver options, convergence histories and results.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Options shared by all solvers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Relative residual tolerance: the solver stops when
    /// `‖b − A·x‖₂ / ‖b‖₂ ≤ tolerance`. The paper uses `1e-10`.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Record the residual norm of every iteration (needed for the Figure-3
    /// convergence traces; costs one `Vec` push per iteration).
    pub record_history: bool,
    /// Use the rayon-parallel SpMV / dot kernels.
    pub parallel: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: 20_000,
            record_history: true,
            parallel: false,
        }
    }
}

impl SolveOptions {
    /// Paper defaults: tolerance 1e-10.
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Builder-style setter for the tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Builder-style setter for the iteration cap.
    pub fn with_max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = max;
        self
    }

    /// Builder-style setter for parallel kernels.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The relative residual dropped below the tolerance.
    Converged,
    /// The iteration cap was reached first.
    MaxIterations,
    /// A breakdown occurred (zero denominator in a recurrence).
    Breakdown,
}

/// Residual norm per iteration, with timestamps.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConvergenceHistory {
    /// `(iteration, relative residual norm, elapsed time)` samples.
    pub samples: Vec<(usize, f64, Duration)>,
}

impl ConvergenceHistory {
    /// Records one sample.
    pub fn push(&mut self, iteration: usize, relative_residual: f64, elapsed: Duration) {
        self.samples.push((iteration, relative_residual, elapsed));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Final recorded relative residual, if any.
    pub fn final_residual(&self) -> Option<f64> {
        self.samples.last().map(|(_, r, _)| *r)
    }

    /// True if the recorded residuals are non-increasing within a factor
    /// `slack` (CG in exact arithmetic is monotone in the A-norm, not the
    /// 2-norm, so some slack is expected).
    pub fn is_roughly_monotone(&self, slack: f64) -> bool {
        self.samples.windows(2).all(|w| w[1].1 <= w[0].1 * slack)
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖` (recomputed explicitly).
    pub relative_residual: f64,
    /// Why the solver stopped.
    pub stop_reason: StopReason,
    /// Wall time of the solve.
    pub elapsed: Duration,
    /// Per-iteration history (empty unless requested).
    pub history: ConvergenceHistory,
}

impl SolveResult {
    /// True if the solver reported convergence.
    pub fn converged(&self) -> bool {
        self.stop_reason == StopReason::Converged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_match_paper() {
        let opts = SolveOptions::paper_defaults();
        assert_eq!(opts.tolerance, 1e-10);
        assert!(opts.record_history);
    }

    #[test]
    fn builder_setters() {
        let opts = SolveOptions::default()
            .with_tolerance(1e-6)
            .with_max_iterations(10)
            .with_parallel(true);
        assert_eq!(opts.tolerance, 1e-6);
        assert_eq!(opts.max_iterations, 10);
        assert!(opts.parallel);
    }

    #[test]
    fn history_monotonicity_check() {
        let mut h = ConvergenceHistory::default();
        h.push(0, 1.0, Duration::ZERO);
        h.push(1, 0.5, Duration::from_millis(1));
        h.push(2, 0.55, Duration::from_millis(2));
        assert_eq!(h.len(), 3);
        assert_eq!(h.final_residual(), Some(0.55));
        assert!(h.is_roughly_monotone(1.2));
        assert!(!h.is_roughly_monotone(1.0));
    }
}
