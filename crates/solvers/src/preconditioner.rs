//! Preconditioner abstraction.
//!
//! The paper keeps its recovery scheme preconditioner-agnostic by modelling
//! preconditioning as a generic "solve `M z = r`" operation (Section 3.2); the
//! key property needed for cheap recovery is the ability to apply the
//! preconditioner *partially*, to just the blocks that supersede the lost
//! data. [`Preconditioner::apply_block`] captures that requirement, and the
//! block-Jacobi preconditioner of `feir-sparse` (the one evaluated in the
//! paper) implements it exactly.

use feir_sparse::blocking::BlockPartition;
use feir_sparse::BlockJacobi;

/// A symmetric preconditioner `M ≈ A` applied as `z = M⁻¹ r`.
pub trait Preconditioner: Send + Sync {
    /// Solves `M z = r` for the full vector.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Solves `M z = r` restricted to one block of the given partition —
    /// the *partial application* used to recover a lost page of a
    /// preconditioned vector. The default implementation applies the full
    /// preconditioner into a scratch vector (always correct, possibly slow),
    /// which is the paper's "re-running the preconditioner completely is a
    /// viable, though slow, forward recovery".
    fn apply_block(&self, partition: BlockPartition, block: usize, r: &[f64], z_block: &mut [f64]) {
        let mut z = vec![0.0; r.len()];
        self.apply(r, &mut z);
        let range = partition.range(block);
        z_block.copy_from_slice(&z[range]);
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "preconditioner"
    }
}

/// The identity preconditioner (no preconditioning).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn apply_block(&self, partition: BlockPartition, block: usize, r: &[f64], z_block: &mut [f64]) {
        let range = partition.range(block);
        z_block.copy_from_slice(&r[range]);
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Point-Jacobi (diagonal) preconditioner.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inverse_diagonal: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the matrix diagonal.
    pub fn new(a: &feir_sparse::CsrMatrix) -> Self {
        let inverse_diagonal = a
            .diagonal()
            .into_iter()
            .map(|d| if d.abs() > f64::EPSILON { 1.0 / d } else { 1.0 })
            .collect();
        Self { inverse_diagonal }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inverse_diagonal) {
            *zi = ri * di;
        }
    }

    fn apply_block(&self, partition: BlockPartition, block: usize, r: &[f64], z_block: &mut [f64]) {
        let range = partition.range(block);
        for (zi, idx) in z_block.iter_mut().zip(range) {
            *zi = r[idx] * self.inverse_diagonal[idx];
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

impl Preconditioner for BlockJacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        BlockJacobi::apply(self, r, z);
    }

    fn apply_block(&self, partition: BlockPartition, block: usize, r: &[f64], z_block: &mut [f64]) {
        // The preconditioner's own partition is authoritative; when it matches
        // the requested partition (the usual case: both are page-sized) the
        // partial application touches exactly one factorized block.
        if partition.block_size() == self.partition().block_size() {
            let range = partition.range(block);
            BlockJacobi::apply_block(self, block, &r[range.clone()], z_block);
        } else {
            let mut z = vec![0.0; r.len()];
            BlockJacobi::apply(self, r, &mut z);
            let range = partition.range(block);
            z_block.copy_from_slice(&z[range]);
        }
    }

    fn name(&self) -> &'static str {
        "block-jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::poisson_2d;

    #[test]
    fn identity_copies_input() {
        let p = IdentityPreconditioner;
        let r = vec![1.0, -2.0, 3.0];
        let mut z = vec![0.0; 3];
        p.apply(&r, &mut z);
        assert_eq!(z, r);
        assert_eq!(p.name(), "identity");
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let a = feir_sparse::CsrMatrix::from_diagonal(&[2.0, 4.0, 8.0]);
        let p = JacobiPreconditioner::new(&a);
        let mut z = vec![0.0; 3];
        p.apply(&[2.0, 4.0, 8.0], &mut z);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn block_application_matches_full_application_for_all_impls() {
        let a = poisson_2d(16);
        let n = a.rows();
        let partition = BlockPartition::new(n, 64);
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();

        let impls: Vec<Box<dyn Preconditioner>> = vec![
            Box::new(IdentityPreconditioner),
            Box::new(JacobiPreconditioner::new(&a)),
            Box::new(BlockJacobi::new(&a, partition, true).unwrap()),
        ];
        for p in impls {
            let mut z_full = vec![0.0; n];
            p.apply(&r, &mut z_full);
            for block in 0..partition.num_blocks() {
                let range = partition.range(block);
                let mut z_block = vec![0.0; range.len()];
                p.apply_block(partition, block, &r, &mut z_block);
                for (zb, zf) in z_block.iter().zip(&z_full[range]) {
                    assert!(
                        (zb - zf).abs() < 1e-13,
                        "{}: partial application diverges",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn block_jacobi_partial_application_with_mismatched_partition_falls_back() {
        let a = poisson_2d(8);
        let n = a.rows();
        let bj = BlockJacobi::new(&a, BlockPartition::new(n, 16), true).unwrap();
        let other_partition = BlockPartition::new(n, 32);
        let r: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut z_full = vec![0.0; n];
        Preconditioner::apply(&bj, &r, &mut z_full);
        let range = other_partition.range(1);
        let mut z_block = vec![0.0; range.len()];
        Preconditioner::apply_block(&bj, other_partition, 1, &r, &mut z_block);
        for (zb, zf) in z_block.iter().zip(&z_full[range]) {
            assert!((zb - zf).abs() < 1e-13);
        }
    }
}
