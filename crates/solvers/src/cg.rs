//! Conjugate Gradient (Listing 1 of the paper).

use std::time::Instant;

use feir_sparse::{fused, vecops, CsrMatrix, SpmvBackend};

use crate::history::{ConvergenceHistory, SolveOptions, SolveResult, StopReason};

/// Solves `A x = b` with the Conjugate Gradient method for SPD `A`.
///
/// This is the textbook formulation of Listing 1 in the paper:
///
/// ```text
/// g ⇐ b − A·x
/// loop: ε ⇐ ‖g‖² ; β ⇐ ε/ε_old ; d ⇐ β·d + g ; q ⇐ A·d ;
///       α ⇐ ε / ⟨q,d⟩ ; x ⇐ x + α·d ; g ⇐ g − α·q
/// ```
///
/// `x0` provides the initial guess (zeros when `None`).
pub fn cg(a: &CsrMatrix, b: &[f64], x0: Option<&[f64]>, options: &SolveOptions) -> SolveResult {
    assert_eq!(a.rows(), a.cols(), "CG requires a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    let start = Instant::now();

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "initial guess length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let norm_b = vecops::norm2(b);
    if norm_b == 0.0 {
        // The solution of A x = 0 is x = 0 for SPD A.
        return SolveResult {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            stop_reason: StopReason::Converged,
            elapsed: start.elapsed(),
            history: ConvergenceHistory::default(),
        };
    }

    // Storage backend for every matvec of this solve: CSR or SELL-C-σ,
    // resolved per matrix (FEIR_SPMV_FORMAT / analyzer). The SELL kernels
    // are bitwise-identical to CSR's, so the choice never affects results.
    let op = SpmvBackend::select(a);
    let spmv = |v: &[f64], out: &mut [f64]| {
        if options.parallel {
            op.spmv_parallel(a, v, out);
        } else {
            op.spmv(a, v, out);
        }
    };

    // g = b - A x
    let mut g = vec![0.0; n];
    spmv(&x, &mut g);
    for (gi, bi) in g.iter_mut().zip(b) {
        *gi = bi - *gi;
    }
    let mut d = vec![0.0; n];
    let mut q = vec![0.0; n];

    let mut history = ConvergenceHistory::default();
    let mut epsilon_old = f64::INFINITY;
    let mut stop_reason = StopReason::MaxIterations;
    let mut iterations = 0usize;

    // Kernel dispatchers in the style of `spmv` above: one loop body, the
    // serial or pool-parallel kernel chosen by the options. The hot path is
    // fused (q ⇐ A·d merges with ⟨d, q⟩, g ⇐ g − α·q merges with the next
    // iteration's ε), halving the vector sweeps per iteration while staying
    // bitwise-identical to the unfused loop: the fused kernels accumulate in
    // exactly the fold order of their unfused compositions, serial and
    // parallel alike.
    let norm_sq = |v: &[f64]| {
        if options.parallel {
            vecops::norm2_squared_parallel(v)
        } else {
            vecops::norm2_squared(v)
        }
    };
    let spmv_dot = |v: &[f64], out: &mut [f64]| {
        if options.parallel {
            op.spmv_dot_parallel(a, v, out)
        } else {
            op.spmv_dot(a, v, out)
        }
    };
    let axpy = |alpha: f64, u: &[f64], v: &mut [f64]| {
        if options.parallel {
            vecops::axpy_parallel(alpha, u, v);
        } else {
            vecops::axpy(alpha, u, v);
        }
    };
    let axpy_norm2 = |alpha: f64, u: &[f64], v: &mut [f64]| {
        if options.parallel {
            fused::axpy_norm2_parallel(alpha, u, v)
        } else {
            fused::axpy_norm2(alpha, u, v)
        }
    };
    let xpay = |u: &[f64], beta: f64, v: &mut [f64]| {
        if options.parallel {
            vecops::xpay_parallel(u, beta, v);
        } else {
            vecops::xpay(u, beta, v);
        }
    };

    // ε of the upcoming convergence check; refreshed by the fused residual
    // update at the bottom of each iteration.
    let mut epsilon = norm_sq(&g);
    for t in 0..options.max_iterations {
        let rel = epsilon.sqrt() / norm_b;
        if options.record_history {
            history.push(t, rel, start.elapsed());
        }
        if rel <= options.tolerance {
            stop_reason = StopReason::Converged;
            iterations = t;
            break;
        }
        let _it = feir_trace::span(feir_trace::Phase::Iteration);
        let beta = if epsilon_old.is_finite() {
            epsilon / epsilon_old
        } else {
            0.0
        };
        // d ⇐ β·d + g
        xpay(&g, beta, &mut d);
        // q ⇐ A·d fused with ⟨d, q⟩.
        let dq = {
            let _probe = feir_trace::span(feir_trace::Phase::Spmv);
            spmv_dot(&d, &mut q)
        };
        if dq == 0.0 || !dq.is_finite() {
            stop_reason = StopReason::Breakdown;
            iterations = t;
            break;
        }
        let alpha = epsilon / dq;
        // x ⇐ x + α·d ; g ⇐ g − α·q fused with ε ⇐ ‖g‖².
        axpy(alpha, &d, &mut x);
        epsilon_old = epsilon;
        epsilon = axpy_norm2(-alpha, &q, &mut g);
        iterations = t + 1;
    }

    // Recompute the true residual explicitly for the report.
    let mut r = vec![0.0; n];
    spmv(&x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let relative_residual = vecops::norm2(&r) / norm_b;
    if stop_reason == StopReason::MaxIterations && relative_residual <= options.tolerance {
        stop_reason = StopReason::Converged;
    }

    SolveResult {
        x,
        iterations,
        relative_residual,
        stop_reason,
        elapsed: start.elapsed(),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d, random_spd};

    #[test]
    fn solves_small_poisson_system() {
        let a = poisson_2d(10);
        let (x_true, b) = manufactured_rhs(&a, 7);
        let result = cg(&a, &b, None, &SolveOptions::default());
        assert!(result.converged(), "stop reason {:?}", result.stop_reason);
        assert!(result.relative_residual <= 1e-10);
        let err: f64 = result
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "solution error {err}");
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = poisson_2d(5);
        let b = vec![0.0; a.rows()];
        let result = cg(&a, &b, None, &SolveOptions::default());
        assert!(result.converged());
        assert_eq!(result.iterations, 0);
        assert!(result.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_converges_faster() {
        let a = poisson_2d(16);
        let (x_true, b) = manufactured_rhs(&a, 3);
        let cold = cg(&a, &b, None, &SolveOptions::default());
        // Start from a slightly perturbed exact solution.
        let warm_guess: Vec<f64> = x_true.iter().map(|v| v * (1.0 + 1e-6)).collect();
        let warm = cg(&a, &b, Some(&warm_guess), &SolveOptions::default());
        assert!(warm.converged());
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn parallel_kernels_match_serial() {
        let a = poisson_2d(20);
        let (_, b) = manufactured_rhs(&a, 11);
        let serial = cg(&a, &b, None, &SolveOptions::default());
        let parallel = cg(&a, &b, None, &SolveOptions::default().with_parallel(true));
        assert!(serial.converged() && parallel.converged());
        // Same iteration count; values agree to tight tolerance.
        assert_eq!(serial.iterations, parallel.iterations);
        for (s, p) in serial.x.iter().zip(&parallel.x) {
            assert!((s - p).abs() < 1e-9);
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = poisson_2d(24);
        let (_, b) = manufactured_rhs(&a, 1);
        let result = cg(
            &a,
            &b,
            None,
            &SolveOptions::default().with_max_iterations(3),
        );
        assert_eq!(result.iterations, 3);
        assert_eq!(result.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn history_tracks_residual_decrease() {
        let a = random_spd(200, 4, 9);
        let (_, b) = manufactured_rhs(&a, 2);
        let result = cg(&a, &b, None, &SolveOptions::default());
        assert!(result.converged());
        assert!(result.history.len() >= 2);
        let first = result.history.samples.first().unwrap().1;
        let last = result.history.final_residual().unwrap();
        assert!(last < first * 1e-6);
    }

    #[test]
    fn converges_in_at_most_n_iterations_in_exact_arithmetic_sense() {
        // CG's finite termination property (up to round-off): for a small
        // well-conditioned matrix the iteration count stays below n.
        let a = random_spd(80, 3, 21);
        let (_, b) = manufactured_rhs(&a, 4);
        let result = cg(&a, &b, None, &SolveOptions::default());
        assert!(result.converged());
        assert!(result.iterations <= 80);
    }
}
