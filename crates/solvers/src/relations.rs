//! Catalogue of the algebraic redundancy relations the paper exploits
//! (Table 1 and the margin annotations of Listings 1–7).
//!
//! A *relation* states an identity between solver vectors that holds by
//! construction throughout the solve (up to round-off), e.g. `g = b − A·x` in
//! CG. When a memory page of one of the participating vectors is lost, the
//! relation is solved for the lost block:
//!
//! * **lhs recovery** — the lost block appears on the left-hand side and is
//!   recomputed directly (`q_i = Σ_j A_ij d_j`);
//! * **rhs recovery** — the lost block appears inside the right-hand side and
//!   a small diagonal-block system is solved
//!   (`A_ii d_i = q_i − Σ_{j≠i} A_ij d_j`).
//!
//! This module names the relations, records which vector of which solver each
//! relation protects, and provides *verification* helpers that measure how
//! well a relation holds on a concrete solver state — both for tests and for
//! online SDC-style consistency checking (Chen's Online-ABFT, discussed in the
//! paper's related work).

use feir_sparse::{vecops, CsrMatrix};
use serde::{Deserialize, Serialize};

/// The solver a relation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Solver {
    /// Conjugate Gradient (Listing 1 / 2).
    Cg,
    /// Preconditioned CG (Listing 5).
    Pcg,
    /// BiCGStab (Listing 3).
    BiCgStab,
    /// Preconditioned BiCGStab (Listing 6).
    PBiCgStab,
    /// GMRES (Listing 4).
    Gmres,
    /// Preconditioned GMRES (Listing 7).
    PGmres,
}

/// The algebraic form of a redundancy relation (rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationForm {
    /// `q = A·p`: recover `q_i` directly or `p_i` via the inverse block
    /// relation.
    MatVec,
    /// `g = b − A·x`: the residual identity conserved by CG/BiCGStab.
    Residual,
    /// `u = α·v + β·w`: any linear vector update.
    LinearCombination,
    /// `M·z = g`: a preconditioner application; `z` is recovered by partial
    /// re-application of the preconditioner, `g` by `g = M·z` when `M` is
    /// explicit (or from another relation otherwise).
    PreconditionerSolve,
    /// The Arnoldi recurrence `h_{l+1,l}·v_{l+1} = A·v_l − Σ_k h_{k,l}·v_k`
    /// that protects the GMRES basis through the Hessenberg matrix.
    Arnoldi,
    /// Double buffering: the previous copy of an in-place-updated vector is
    /// kept so the update relation stays solvable (Listing 2).
    DoubleBuffer,
}

/// How a lost block of a given vector is recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoverySide {
    /// The vector is on the left-hand side: recompute the block directly.
    Lhs,
    /// The vector is inside the right-hand side: solve the diagonal-block
    /// system `A_ii (·)_i = rhs_i`.
    RhsBlockSolve,
    /// Re-apply the preconditioner restricted to the lost block.
    PartialPreconditioner,
}

/// One catalogue entry: "vector `protects` of solver `solver` is recovered via
/// relation `form`, used from side `side`".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationEntry {
    /// Which solver the entry belongs to.
    pub solver: Solver,
    /// Name of the protected vector as it appears in the paper's listings.
    pub protects: &'static str,
    /// Algebraic form used.
    pub form: RelationForm,
    /// Which side of the relation the lost data sits on.
    pub side: RecoverySide,
    /// Short human-readable statement of the relation.
    pub statement: &'static str,
}

/// The redundancy relations protecting (non-preconditioned) CG, following the
/// margin annotations of Listing 1 and the double-buffering of Listing 2.
pub fn cg_relations() -> Vec<RelationEntry> {
    vec![
        RelationEntry {
            solver: Solver::Cg,
            protects: "g",
            form: RelationForm::Residual,
            side: RecoverySide::Lhs,
            statement: "g_i = b_i - sum_j A_ij x_j",
        },
        RelationEntry {
            solver: Solver::Cg,
            protects: "x",
            form: RelationForm::Residual,
            side: RecoverySide::RhsBlockSolve,
            statement: "A_ii x_i = b_i - g_i - sum_{j!=i} A_ij x_j",
        },
        RelationEntry {
            solver: Solver::Cg,
            protects: "q",
            form: RelationForm::MatVec,
            side: RecoverySide::Lhs,
            statement: "q_i = sum_j A_ij d_j",
        },
        RelationEntry {
            solver: Solver::Cg,
            protects: "d",
            form: RelationForm::MatVec,
            side: RecoverySide::RhsBlockSolve,
            statement: "A_ii d_i = q_i - sum_{j!=i} A_ij d_j",
        },
        RelationEntry {
            solver: Solver::Cg,
            protects: "d (during update)",
            form: RelationForm::DoubleBuffer,
            side: RecoverySide::Lhs,
            statement: "d1_i = beta * d2_i + g_i (double-buffered copies d1/d2)",
        },
    ]
}

/// The redundancy relations protecting preconditioned CG (Listing 5).
pub fn pcg_relations() -> Vec<RelationEntry> {
    let mut relations = cg_relations();
    for r in &mut relations {
        r.solver = Solver::Pcg;
    }
    relations.push(RelationEntry {
        solver: Solver::Pcg,
        protects: "z",
        form: RelationForm::PreconditionerSolve,
        side: RecoverySide::PartialPreconditioner,
        statement: "M z = g, applied only to the blocks superseding the lost page",
    });
    relations
}

/// The redundancy relations protecting BiCGStab (Listing 3).
pub fn bicgstab_relations() -> Vec<RelationEntry> {
    vec![
        RelationEntry {
            solver: Solver::BiCgStab,
            protects: "q",
            form: RelationForm::MatVec,
            side: RecoverySide::Lhs,
            statement: "q_i = sum_j A_ij d_j",
        },
        RelationEntry {
            solver: Solver::BiCgStab,
            protects: "d",
            form: RelationForm::MatVec,
            side: RecoverySide::RhsBlockSolve,
            statement: "A_ii d_i = q_i - sum_{j!=i} A_ij d_j",
        },
        RelationEntry {
            solver: Solver::BiCgStab,
            protects: "s",
            form: RelationForm::LinearCombination,
            side: RecoverySide::Lhs,
            statement: "s_i = g_i - alpha q_i",
        },
        RelationEntry {
            solver: Solver::BiCgStab,
            protects: "t",
            form: RelationForm::MatVec,
            side: RecoverySide::Lhs,
            statement: "t_i = sum_j A_ij s_j",
        },
        RelationEntry {
            solver: Solver::BiCgStab,
            protects: "g",
            form: RelationForm::Residual,
            side: RecoverySide::Lhs,
            statement: "g_i = b_i - sum_j A_ij x_j",
        },
        RelationEntry {
            solver: Solver::BiCgStab,
            protects: "x",
            form: RelationForm::Residual,
            side: RecoverySide::RhsBlockSolve,
            statement: "A_ii x_i = b_i - g_i - sum_{j!=i} A_ij x_j",
        },
        RelationEntry {
            solver: Solver::BiCgStab,
            protects: "d (during update)",
            form: RelationForm::DoubleBuffer,
            side: RecoverySide::Lhs,
            statement: "d is double-buffered across iterations",
        },
    ]
}

/// The redundancy relations protecting GMRES (Listing 4): every Arnoldi vector
/// is recoverable from its predecessors and the Hessenberg coefficients, and
/// `H` itself is recoverable from the Givens rotations (`H = Q·R`).
pub fn gmres_relations() -> Vec<RelationEntry> {
    vec![
        RelationEntry {
            solver: Solver::Gmres,
            protects: "v_l",
            form: RelationForm::Arnoldi,
            side: RecoverySide::Lhs,
            statement: "v_l = (A v_{l-1} - sum_{k<l} h_{k,l-1} v_k) / h_{l,l-1}",
        },
        RelationEntry {
            solver: Solver::Gmres,
            protects: "H",
            form: RelationForm::LinearCombination,
            side: RecoverySide::Lhs,
            statement: "H = Q R (Givens rotations are invertible)",
        },
        RelationEntry {
            solver: Solver::Gmres,
            protects: "x",
            form: RelationForm::Residual,
            side: RecoverySide::RhsBlockSolve,
            statement: "A_ii x_i = b_i - g_i - sum_{j!=i} A_ij x_j (g conserved for this purpose)",
        },
    ]
}

/// Residual of the identity `g = b − A·x`, normalised by `‖b‖`.
///
/// A value at round-off level certifies the relation holds; the same check is
/// usable as an online SDC detector (Chen, PPoPP'13).
pub fn residual_relation_violation(a: &CsrMatrix, b: &[f64], x: &[f64], g: &[f64]) -> f64 {
    let mut ax = vec![0.0; a.rows()];
    a.spmv(x, &mut ax);
    let mut violation = 0.0;
    for i in 0..a.rows() {
        let expected = b[i] - ax[i];
        violation += (expected - g[i]) * (expected - g[i]);
    }
    let norm_b = vecops::norm2(b).max(f64::MIN_POSITIVE);
    violation.sqrt() / norm_b
}

/// Residual of the identity `q = A·d`, normalised by `‖q‖`.
pub fn matvec_relation_violation(a: &CsrMatrix, d: &[f64], q: &[f64]) -> f64 {
    let mut ad = vec![0.0; a.rows()];
    a.spmv(d, &mut ad);
    let mut violation = 0.0;
    for i in 0..a.rows() {
        violation += (ad[i] - q[i]) * (ad[i] - q[i]);
    }
    violation.sqrt() / vecops::norm2(q).max(f64::MIN_POSITIVE)
}

/// Residual of the identity `u = α·v + β·w`, normalised by `‖u‖`.
pub fn linear_combination_violation(u: &[f64], alpha: f64, v: &[f64], beta: f64, w: &[f64]) -> f64 {
    let mut violation = 0.0;
    for i in 0..u.len() {
        let expected = alpha * v[i] + beta * w[i];
        violation += (expected - u[i]) * (expected - u[i]);
    }
    violation.sqrt() / vecops::norm2(u).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d};

    #[test]
    fn catalogue_covers_all_cg_dynamic_vectors() {
        let rel = cg_relations();
        for name in ["x", "g", "d", "q"] {
            assert!(
                rel.iter().any(|r| r.protects.starts_with(name)),
                "no relation protects {name}"
            );
        }
        // CG needs the double-buffer trick (Listing 2).
        assert!(rel.iter().any(|r| r.form == RelationForm::DoubleBuffer));
    }

    #[test]
    fn pcg_adds_preconditioner_relation() {
        let rel = pcg_relations();
        assert!(rel
            .iter()
            .any(|r| r.form == RelationForm::PreconditionerSolve && r.protects == "z"));
        assert!(rel.iter().all(|r| r.solver == Solver::Pcg));
    }

    #[test]
    fn bicgstab_has_more_redundancy_than_cg() {
        // The paper notes BiCGStab "exhibits more redundancies than CG".
        assert!(bicgstab_relations().len() > cg_relations().len());
    }

    #[test]
    fn gmres_protects_basis_through_arnoldi() {
        let rel = gmres_relations();
        assert!(rel.iter().any(|r| r.form == RelationForm::Arnoldi));
    }

    #[test]
    fn cg_state_satisfies_residual_and_matvec_relations() {
        // Run a few CG iterations by hand and verify that the invariants the
        // recovery relies on actually hold on the live state.
        let a = poisson_2d(8);
        let n = a.rows();
        let (_, b) = manufactured_rhs(&a, 13);
        let mut x = vec![0.0; n];
        let mut g = b.clone();
        let mut d = vec![0.0; n];
        let mut q = vec![0.0; n];
        let mut eps_old = f64::INFINITY;
        for _ in 0..5 {
            let eps = vecops::norm2_squared(&g);
            let beta = if eps_old.is_finite() {
                eps / eps_old
            } else {
                0.0
            };
            vecops::xpay(&g, beta, &mut d);
            a.spmv(&d, &mut q);
            let alpha = eps / vecops::dot(&q, &d);
            vecops::axpy(alpha, &d, &mut x);
            vecops::axpy(-alpha, &q, &mut g);
            eps_old = eps;

            assert!(residual_relation_violation(&a, &b, &x, &g) < 1e-12);
            assert!(matvec_relation_violation(&a, &d, &q) < 1e-12);
        }
    }

    #[test]
    fn violation_detects_corruption() {
        let a = poisson_2d(6);
        let (x_true, b) = manufactured_rhs(&a, 1);
        let mut g = vec![0.0; a.rows()];
        a.spmv(&x_true, &mut g);
        for (gi, bi) in g.iter_mut().zip(&b) {
            *gi = bi - *gi;
        }
        assert!(residual_relation_violation(&a, &b, &x_true, &g) < 1e-12);
        // Corrupt one entry of x: the violation must become visible.
        let mut x_bad = x_true.clone();
        x_bad[7] += 1.0;
        assert!(residual_relation_violation(&a, &b, &x_bad, &g) > 1e-3);
    }

    #[test]
    fn linear_combination_violation_detects_mismatch() {
        let v = vec![1.0, 2.0, 3.0];
        let w = vec![0.5, 0.5, 0.5];
        let u: Vec<f64> = v.iter().zip(&w).map(|(a, b)| 2.0 * a - b).collect();
        assert!(linear_combination_violation(&u, 2.0, &v, -1.0, &w) < 1e-15);
        let mut u_bad = u.clone();
        u_bad[1] += 0.1;
        assert!(linear_combination_violation(&u_bad, 2.0, &v, -1.0, &w) > 1e-3);
    }
}
