//! Merged-reduction Conjugate Gradient (Chronopoulos–Gear recurrences).
//!
//! The textbook CG of [`crate::cg::cg`] computes two dependent scalar reductions
//! per iteration — `ε = ‖g‖²` and `⟨d, q⟩` — separated by the matvec, so a
//! distributed run synchronizes twice per iteration and a shared-memory run
//! makes two extra passes over the vectors. The Chronopoulos–Gear
//! rearrangement computes the matvec on the *residual* instead of the
//! direction and maintains `q = A·d` by recurrence:
//!
//! ```text
//! w ⇐ A·g ; γ = ‖g‖² ; δ = ⟨g, w⟩          (one fused sweep, both scalars)
//! β = γ/γ_old ; α = γ / (δ − β·γ/α_old)
//! d ⇐ g + β·d ; q ⇐ w + β·q ; x ⇐ x + α·d ; g ⇐ g − α·q
//! ```
//!
//! Both scalars of an iteration come out of a **single reduction sweep**
//! (the distributed twin batches them into one allreduce), and every vector
//! update is fused with the reduction it feeds: [`fused::spmv_dot`] produces
//! `w` and `δ` together, and the `g` update returns the next iteration's `γ`
//! via [`fused::axpy_norm2`]. Per iteration the merged loop reads each
//! vector once — the fused hot path of the ISSUE-5 tentpole.
//!
//! In exact arithmetic the iterates are identical to classic CG; in floating
//! point the recurrence for `q` introduces round-off of the same order as
//! CG's own residual recurrence, so iteration counts match classic CG
//! closely (asserted within ±10% in the tests) but **not bitwise** — this is
//! a new solver path, not a re-bracketing of the old one.

use std::time::Instant;

use feir_sparse::{fused, vecops, CsrMatrix, SpmvBackend};

use crate::history::{ConvergenceHistory, SolveOptions, SolveResult, StopReason};

/// Solves `A x = b` with merged-reduction (Chronopoulos–Gear) CG for SPD `A`.
///
/// Same contract as [`crate::cg::cg`]: `x0` is the initial guess (zeros when
/// `None`), options select tolerance, iteration cap, history recording and
/// the parallel kernels.
pub fn cg_merged(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    options: &SolveOptions,
) -> SolveResult {
    assert_eq!(a.rows(), a.cols(), "CG requires a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    let start = Instant::now();

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "initial guess length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let norm_b = vecops::norm2(b);
    if norm_b == 0.0 {
        return SolveResult {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            stop_reason: StopReason::Converged,
            elapsed: start.elapsed(),
            history: ConvergenceHistory::default(),
        };
    }

    // Storage backend for every matvec of this solve (CSR or SELL-C-σ);
    // bitwise-identical kernels either way, see `feir_sparse::format`.
    let op = SpmvBackend::select(a);
    let spmv = |v: &[f64], out: &mut [f64]| {
        if options.parallel {
            op.spmv_parallel(a, v, out);
        } else {
            op.spmv(a, v, out);
        }
    };
    let spmv_dot = |v: &[f64], out: &mut [f64]| {
        if options.parallel {
            op.spmv_dot_parallel(a, v, out)
        } else {
            op.spmv_dot(a, v, out)
        }
    };
    let axpy = |alpha: f64, u: &[f64], v: &mut [f64]| {
        if options.parallel {
            vecops::axpy_parallel(alpha, u, v);
        } else {
            vecops::axpy(alpha, u, v);
        }
    };
    let axpy_norm2 = |alpha: f64, u: &[f64], v: &mut [f64]| {
        if options.parallel {
            fused::axpy_norm2_parallel(alpha, u, v)
        } else {
            fused::axpy_norm2(alpha, u, v)
        }
    };
    let xpay = |u: &[f64], beta: f64, v: &mut [f64]| {
        if options.parallel {
            vecops::xpay_parallel(u, beta, v);
        } else {
            vecops::xpay(u, beta, v);
        }
    };

    // g = b − A x
    let mut g = vec![0.0; n];
    spmv(&x, &mut g);
    for (gi, bi) in g.iter_mut().zip(b) {
        *gi = bi - *gi;
    }
    let mut w = vec![0.0; n]; // A·g
    let mut d = vec![0.0; n];
    let mut q = vec![0.0; n]; // A·d, maintained by recurrence.

    let mut history = ConvergenceHistory::default();
    let mut gamma = if options.parallel {
        vecops::norm2_squared_parallel(&g)
    } else {
        vecops::norm2_squared(&g)
    };
    let mut gamma_old = f64::INFINITY;
    let mut alpha_old = 0.0;
    let mut stop_reason = StopReason::MaxIterations;
    let mut iterations = 0usize;

    for t in 0..options.max_iterations {
        let rel = gamma.max(0.0).sqrt() / norm_b;
        if options.record_history {
            history.push(t, rel, start.elapsed());
        }
        if rel <= options.tolerance {
            stop_reason = StopReason::Converged;
            iterations = t;
            break;
        }
        let _it = feir_trace::span(feir_trace::Phase::Iteration);
        // w ⇐ A·g fused with δ = ⟨g, w⟩; γ is carried from the previous
        // fused residual update (or the pre-loop norm).
        let delta = {
            let _probe = feir_trace::span(feir_trace::Phase::Spmv);
            spmv_dot(&g, &mut w)
        };
        let beta = if gamma_old.is_finite() {
            gamma / gamma_old
        } else {
            0.0
        };
        // The Chronopoulos–Gear step length: α = γ / (δ − β·γ/α_old), which
        // equals classic CG's γ/⟨d, q⟩ in exact arithmetic.
        let denom = if beta == 0.0 {
            delta
        } else {
            delta - beta * gamma / alpha_old
        };
        if denom == 0.0 || !denom.is_finite() {
            stop_reason = StopReason::Breakdown;
            iterations = t;
            break;
        }
        let alpha = gamma / denom;
        // d ⇐ g + β·d ; q ⇐ w + β·q ; x ⇐ x + α·d ; g ⇐ g − α·q with the
        // last update fused with the next iteration's γ = ‖g‖².
        xpay(&g, beta, &mut d);
        xpay(&w, beta, &mut q);
        axpy(alpha, &d, &mut x);
        gamma_old = gamma;
        gamma = axpy_norm2(-alpha, &q, &mut g);
        alpha_old = alpha;
        iterations = t + 1;
    }

    // Recompute the true residual explicitly for the report.
    let mut r = vec![0.0; n];
    spmv(&x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let relative_residual = vecops::norm2(&r) / norm_b;
    if stop_reason == StopReason::MaxIterations && relative_residual <= options.tolerance {
        stop_reason = StopReason::Converged;
    }

    SolveResult {
        x,
        iterations,
        relative_residual,
        stop_reason,
        elapsed: start.elapsed(),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d, poisson_3d_27pt, random_spd};

    /// Iteration counts of the merged and classic variants must agree within
    /// ±10% (they span the same Krylov space; only round-off differs).
    fn assert_iterations_close(merged: usize, classic: usize) {
        let tolerance = (classic as f64 * 0.10).ceil() as i64 + 1;
        let diff = (merged as i64 - classic as i64).abs();
        assert!(
            diff <= tolerance,
            "merged {merged} vs classic {classic} iterations (allowed ±{tolerance})"
        );
    }

    #[test]
    fn merged_cg_solves_poisson_and_matches_classic_iteration_count() {
        let a = poisson_2d(24);
        let (x_true, b) = manufactured_rhs(&a, 7);
        let options = SolveOptions::default();
        let classic = cg(&a, &b, None, &options);
        let merged = cg_merged(&a, &b, None, &options);
        assert!(merged.converged(), "stop reason {:?}", merged.stop_reason);
        assert!(merged.relative_residual <= options.tolerance);
        assert_iterations_close(merged.iterations, classic.iterations);
        for (u, v) in merged.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn merged_cg_matches_classic_on_figure5_operator() {
        // The paper's scaling study distributes the 27-point Poisson
        // operator; the merged recurrences must not change its convergence.
        let a = poisson_3d_27pt(8);
        let (_, b) = manufactured_rhs(&a, 3);
        let options = SolveOptions::default().with_tolerance(1e-8);
        let classic = cg(&a, &b, None, &options);
        let merged = cg_merged(&a, &b, None, &options);
        assert!(classic.converged() && merged.converged());
        assert_iterations_close(merged.iterations, classic.iterations);
    }

    #[test]
    fn merged_cg_residual_history_tracks_classic() {
        let a = random_spd(300, 5, 11);
        let (_, b) = manufactured_rhs(&a, 2);
        let options = SolveOptions::default().with_tolerance(1e-9);
        let classic = cg(&a, &b, None, &options);
        let merged = cg_merged(&a, &b, None, &options);
        assert!(merged.converged());
        assert_iterations_close(merged.iterations, classic.iterations);
        assert!(merged.history.len() >= 2);
        let first = merged.history.samples.first().unwrap().1;
        let last = merged.history.final_residual().unwrap();
        assert!(last < first * 1e-6);
    }

    #[test]
    fn merged_cg_parallel_kernels_agree_with_serial() {
        let a = poisson_2d(20);
        let (_, b) = manufactured_rhs(&a, 11);
        let serial = cg_merged(&a, &b, None, &SolveOptions::default());
        let parallel = cg_merged(&a, &b, None, &SolveOptions::default().with_parallel(true));
        assert!(serial.converged() && parallel.converged());
        assert_eq!(serial.iterations, parallel.iterations);
        for (s, p) in serial.x.iter().zip(&parallel.x) {
            assert!((s - p).abs() < 1e-9);
        }
    }

    #[test]
    fn merged_cg_zero_rhs_and_warm_start() {
        let a = poisson_2d(6);
        let zero_b = vec![0.0; a.rows()];
        let result = cg_merged(&a, &zero_b, None, &SolveOptions::default());
        assert!(result.converged());
        assert_eq!(result.iterations, 0);

        let (x_true, b) = manufactured_rhs(&a, 4);
        let warm_guess: Vec<f64> = x_true.iter().map(|v| v * (1.0 + 1e-6)).collect();
        let cold = cg_merged(&a, &b, None, &SolveOptions::default());
        let warm = cg_merged(&a, &b, Some(&warm_guess), &SolveOptions::default());
        assert!(warm.converged());
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn merged_cg_honours_iteration_cap() {
        let a = poisson_2d(24);
        let (_, b) = manufactured_rhs(&a, 1);
        let result = cg_merged(
            &a,
            &b,
            None,
            &SolveOptions::default().with_max_iterations(3),
        );
        assert_eq!(result.iterations, 3);
        assert_eq!(result.stop_reason, StopReason::MaxIterations);
    }
}
