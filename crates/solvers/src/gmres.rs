//! Restarted GMRES(m) (Listing 4 / 7 of the paper).
//!
//! Each outer iteration runs `m` steps of the Arnoldi process to build an
//! orthonormal basis `v_0 … v_m` and an upper-Hessenberg matrix `H`, solves the
//! small least-squares problem `min_y ‖β·e₁ − H·y‖` through Givens rotations,
//! and updates the iterate. The Hessenberg matrix is the redundancy the paper
//! uses to recover any lost Arnoldi vector (Section 3.1.3):
//!
//! ```text
//! v_l = (A·v_{l−1} − Σ_{k<l} h_{k,l−1} v_k) / h_{l,l−1}
//! ```

use std::time::Instant;

use feir_sparse::{vecops, CsrMatrix, DenseMatrix};

use crate::history::{ConvergenceHistory, SolveOptions, SolveResult, StopReason};
use crate::preconditioner::{IdentityPreconditioner, Preconditioner};

/// Options specific to GMRES.
#[derive(Debug, Clone)]
pub struct GmresOptions {
    /// Restart length `m`.
    pub restart: usize,
}

impl Default for GmresOptions {
    fn default() -> Self {
        Self { restart: 30 }
    }
}

/// Solves `A x = b` with restarted GMRES(m).
pub fn gmres(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    options: &SolveOptions,
    gmres_options: &GmresOptions,
) -> SolveResult {
    gmres_preconditioned(a, b, x0, &IdentityPreconditioner, options, gmres_options)
}

/// Right-preconditioned restarted GMRES(m) (Listing 7 of the paper).
///
/// Right preconditioning (`A M⁻¹ u = b`, `x = M⁻¹ u`) is used instead of left
/// preconditioning because the least-squares problem then minimises the *true*
/// residual norm: with a badly scaled `M` (diagonal entries spanning several
/// orders of magnitude), the left-preconditioned norm hides true-residual
/// components by up to `cond(M)`, which caps the attainable accuracy near
/// `ε·cond(M)` regardless of restart length.
pub fn gmres_preconditioned(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    preconditioner: &dyn Preconditioner,
    options: &SolveOptions,
    gmres_options: &GmresOptions,
) -> SolveResult {
    assert_eq!(a.rows(), a.cols(), "GMRES requires a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    let m = gmres_options.restart.max(1).min(n.max(1));
    let start = Instant::now();

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "initial guess length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let norm_b = vecops::norm2(b);
    if norm_b == 0.0 {
        return SolveResult {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            stop_reason: StopReason::Converged,
            elapsed: start.elapsed(),
            history: ConvergenceHistory::default(),
        };
    }

    let spmv = |mat: &CsrMatrix, v: &[f64], out: &mut [f64]| {
        if options.parallel {
            mat.spmv_parallel(v, out);
        } else {
            mat.spmv(v, out);
        }
    };

    let mut history = ConvergenceHistory::default();
    let mut stop_reason = StopReason::MaxIterations;
    let mut total_inner = 0usize;
    let mut scratch = vec![0.0; n];
    let mut precond_scratch = vec![0.0; n];

    'outer: while total_inner < options.max_iterations {
        // r ⇐ b − A·x: with right preconditioning the Arnoldi process runs on
        // the true residual, so the inner estimate needs no rescaling.
        spmv(a, &x, &mut scratch);
        for (si, bi) in scratch.iter_mut().zip(b) {
            *si = bi - *si;
        }
        let true_rel = vecops::norm2(&scratch) / norm_b;
        if options.record_history {
            history.push(total_inner, true_rel, start.elapsed());
        }
        if true_rel <= options.tolerance {
            stop_reason = StopReason::Converged;
            break;
        }
        let beta = vecops::norm2(&scratch);
        if beta == 0.0 || !beta.is_finite() {
            stop_reason = StopReason::Breakdown;
            break;
        }

        // Arnoldi basis (m+1 vectors) and Hessenberg matrix (m+1 x m).
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        basis.push(scratch.iter().map(|v| v / beta).collect());
        let mut h = DenseMatrix::zeros(m + 1, m);

        // Givens rotations and the rotated rhs `g_vec = beta * e1`.
        let mut cs = vec![0.0; m];
        let mut sn = vec![0.0; m];
        let mut g_vec = vec![0.0; m + 1];
        g_vec[0] = beta;

        let mut inner_used = 0usize;
        for l in 0..m {
            if total_inner + l >= options.max_iterations {
                break;
            }
            // w ⇐ A M⁻¹ v_l
            preconditioner.apply(&basis[l], &mut precond_scratch);
            spmv(a, &precond_scratch, &mut scratch);
            let mut w = scratch.clone();
            // Modified Gram-Schmidt.
            for (k, vk) in basis.iter().enumerate().take(l + 1) {
                let hkl = vecops::dot(&w, vk);
                h.set(k, l, hkl);
                vecops::axpy(-hkl, vk, &mut w);
            }
            let wnorm = vecops::norm2(&w);
            h.set(l + 1, l, wnorm);
            inner_used = l + 1;

            // Apply the previous Givens rotations to the new column of H.
            for k in 0..l {
                let temp = cs[k] * h.get(k, l) + sn[k] * h.get(k + 1, l);
                let lower = -sn[k] * h.get(k, l) + cs[k] * h.get(k + 1, l);
                h.set(k, l, temp);
                h.set(k + 1, l, lower);
            }
            // Compute the new rotation annihilating h[l+1, l].
            let (c, s) = givens(h.get(l, l), h.get(l + 1, l));
            cs[l] = c;
            sn[l] = s;
            let hll = c * h.get(l, l) + s * h.get(l + 1, l);
            h.set(l, l, hll);
            h.set(l + 1, l, 0.0);
            // Update the rotated residual norm estimate.
            let g_new = -s * g_vec[l];
            g_vec[l + 1] = g_new;
            g_vec[l] *= c;

            let est_rel = g_vec[l + 1].abs() / norm_b;
            if options.record_history {
                history.push(total_inner + l + 1, est_rel, start.elapsed());
            }
            if est_rel <= options.tolerance {
                break;
            }
            if wnorm == 0.0 {
                // Lucky breakdown: the Krylov space is invariant, solution exact.
                break;
            }
            basis.push(w.iter().map(|v| v / wnorm).collect());
        }

        if inner_used == 0 {
            stop_reason = StopReason::Breakdown;
            break 'outer;
        }

        // Back-substitute R y = g_vec (R is the rotated H, upper triangular).
        let mut y = vec![0.0; inner_used];
        for i in (0..inner_used).rev() {
            let dot: f64 = ((i + 1)..inner_used).map(|k| h.get(i, k) * y[k]).sum();
            let sum = g_vec[i] - dot;
            let diag = h.get(i, i);
            y[i] = if diag.abs() > f64::EPSILON {
                sum / diag
            } else {
                0.0
            };
        }
        // x ⇐ x + M⁻¹ Σ y_l v_l (the update lives in the preconditioned
        // variable u; map it back through M⁻¹ once per cycle).
        vecops::zero(&mut scratch);
        for (l, yl) in y.iter().enumerate() {
            vecops::axpy(*yl, &basis[l], &mut scratch);
        }
        preconditioner.apply(&scratch, &mut precond_scratch);
        for (xi, zi) in x.iter_mut().zip(&precond_scratch) {
            *xi += zi;
        }
        total_inner += inner_used;
    }

    // Final explicit residual.
    spmv(a, &x, &mut scratch);
    for (si, bi) in scratch.iter_mut().zip(b) {
        *si = bi - *si;
    }
    let relative_residual = vecops::norm2(&scratch) / norm_b;
    if relative_residual <= options.tolerance {
        stop_reason = StopReason::Converged;
    }

    SolveResult {
        x,
        iterations: total_inner,
        relative_residual,
        stop_reason,
        elapsed: start.elapsed(),
        history,
    }
}

/// Computes the Givens rotation (c, s) such that
/// `[c s; -s c]ᵀ [a; b] = [r; 0]`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a == 0.0 {
        (0.0, 1.0)
    } else {
        let r = a.hypot(b);
        (a / r, b / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preconditioner::JacobiPreconditioner;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d};
    use feir_sparse::CooMatrix;

    fn nonsymmetric_matrix(n: usize) -> CsrMatrix {
        let size = n * n;
        let mut coo = CooMatrix::new(size, size);
        let idx = |i: usize, j: usize| i * n + j;
        for i in 0..n {
            for j in 0..n {
                let row = idx(i, j);
                coo.push(row, row, 4.0).unwrap();
                if i > 0 {
                    coo.push(row, idx(i - 1, j), -1.4).unwrap();
                }
                if i + 1 < n {
                    coo.push(row, idx(i + 1, j), -0.6).unwrap();
                }
                if j > 0 {
                    coo.push(row, idx(i, j - 1), -1.2).unwrap();
                }
                if j + 1 < n {
                    coo.push(row, idx(i, j + 1), -0.8).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn givens_rotation_annihilates_second_entry() {
        let (c, s) = givens(3.0, 4.0);
        let r = c * 3.0 + s * 4.0;
        let zero = -s * 3.0 + c * 4.0;
        assert!((r - 5.0).abs() < 1e-12);
        assert!(zero.abs() < 1e-12);
        assert_eq!(givens(1.0, 0.0), (1.0, 0.0));
        assert_eq!(givens(0.0, 1.0), (0.0, 1.0));
    }

    #[test]
    fn solves_spd_system() {
        let a = poisson_2d(10);
        let (x_true, b) = manufactured_rhs(&a, 4);
        let result = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tolerance(1e-9),
            &GmresOptions { restart: 40 },
        );
        assert!(result.converged(), "{:?}", result.stop_reason);
        let err: f64 = result
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-5, "error {err}");
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = nonsymmetric_matrix(10);
        let (x_true, b) = manufactured_rhs(&a, 9);
        let result = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tolerance(1e-9),
            &GmresOptions { restart: 50 },
        );
        assert!(result.converged());
        let err: f64 = result
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-5);
    }

    #[test]
    fn short_restart_still_converges() {
        let a = poisson_2d(8);
        let (_, b) = manufactured_rhs(&a, 2);
        let result = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_tolerance(1e-8),
            &GmresOptions { restart: 5 },
        );
        assert!(result.converged());
        assert!(result.iterations > 5, "restarting must have happened");
    }

    #[test]
    fn preconditioned_gmres_converges_and_tracks_plain_gmres() {
        // With a diagonally-scaled variant of the convection-diffusion matrix
        // the Jacobi preconditioner genuinely helps; on the original matrix
        // (constant diagonal) it must at least not hurt by more than a couple
        // of iterations, since it reduces to a scaled identity there.
        let a = nonsymmetric_matrix(14);
        let (_, b) = manufactured_rhs(&a, 3);
        let opts = SolveOptions::default().with_tolerance(1e-9);
        let gopts = GmresOptions { restart: 20 };
        let plain = gmres(&a, &b, None, &opts, &gopts);
        let jacobi = JacobiPreconditioner::new(&a);
        let pre = gmres_preconditioned(&a, &b, None, &jacobi, &opts, &gopts);
        assert!(plain.converged() && pre.converged());
        assert!(pre.iterations <= plain.iterations + 2);

        // Badly scaled matrix: multiply row/col i by widely varying weights so
        // the diagonal varies over orders of magnitude.
        let mut coo = CooMatrix::new(a.rows(), a.cols());
        for i in 0..a.rows() {
            let (cols, vals) = a.row(i);
            let wi = 10f64.powi((i % 5) as i32 - 2);
            for (c, v) in cols.iter().zip(vals) {
                let wj = 10f64.powi((*c % 5) as i32 - 2);
                coo.push(i, *c, v * wi * wj).unwrap();
            }
        }
        let scaled = coo.to_csr();
        let (_, b2) = manufactured_rhs(&scaled, 5);
        let plain2 = gmres(&scaled, &b2, None, &opts, &gopts);
        let jacobi2 = JacobiPreconditioner::new(&scaled);
        let pre2 = gmres_preconditioned(&scaled, &b2, None, &jacobi2, &opts, &gopts);
        assert!(pre2.converged());
        assert!(
            pre2.iterations < plain2.iterations || !plain2.converged(),
            "Jacobi should help on a badly scaled system ({} vs {})",
            pre2.iterations,
            plain2.iterations
        );
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = poisson_2d(4);
        let b = vec![0.0; a.rows()];
        let result = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default(),
            &GmresOptions::default(),
        );
        assert!(result.converged());
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = poisson_2d(16);
        let (_, b) = manufactured_rhs(&a, 6);
        let result = gmres(
            &a,
            &b,
            None,
            &SolveOptions::default().with_max_iterations(7),
            &GmresOptions { restart: 4 },
        );
        assert!(result.iterations <= 8);
        assert!(!result.converged());
    }
}
