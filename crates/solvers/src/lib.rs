//! # feir-solvers
//!
//! Reference implementations of the Krylov-subspace methods the paper protects
//! — Conjugate Gradient (CG), Bi-Conjugate Gradient Stabilized (BiCGStab) and
//! restarted GMRES — in plain and preconditioned form, plus the catalogue of
//! algebraic redundancy relations (Table 1 / Listings 1–7 of the paper) that
//! the forward-recovery schemes exploit.
//!
//! The solvers here are the *ideal* (non-resilient) versions used as the
//! baseline of every experiment; the task-decomposed, fault-tolerant CG lives
//! in `feir-recovery` and reuses these kernels.

#![warn(missing_docs)]

pub mod bicgstab;
pub mod cg;
pub mod cg_merged;
pub mod gmres;
pub mod history;
pub mod pcg;
pub mod preconditioner;
pub mod relations;

pub use bicgstab::bicgstab;
pub use cg::cg;
pub use cg_merged::cg_merged;
pub use gmres::gmres;
pub use history::{ConvergenceHistory, SolveOptions, SolveResult, StopReason};
pub use pcg::pcg;
pub use preconditioner::{IdentityPreconditioner, JacobiPreconditioner, Preconditioner};
