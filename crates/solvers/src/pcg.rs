//! Preconditioned Conjugate Gradient (Listing 5 of the paper).

use std::time::Instant;

use feir_sparse::{fused, vecops, CsrMatrix, SpmvBackend};

use crate::history::{ConvergenceHistory, SolveOptions, SolveResult, StopReason};
use crate::preconditioner::Preconditioner;

/// Solves `A x = b` with preconditioned CG for SPD `A` and SPD `M`.
///
/// Follows Listing 5 of the paper:
///
/// ```text
/// g ⇐ b − A·x
/// loop: solve M·z = g ; ρ ⇐ ⟨z,g⟩ ; β ⇐ ρ/ρ_old ; d ⇐ β·d + z ;
///       q ⇐ A·d ; α ⇐ ρ / ⟨q,d⟩ ; x ⇐ x + α·d ; g ⇐ g − α·q
/// ```
pub fn pcg(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    preconditioner: &dyn Preconditioner,
    options: &SolveOptions,
) -> SolveResult {
    assert_eq!(a.rows(), a.cols(), "PCG requires a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    let start = Instant::now();

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "initial guess length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let norm_b = vecops::norm2(b);
    if norm_b == 0.0 {
        return SolveResult {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            stop_reason: StopReason::Converged,
            elapsed: start.elapsed(),
            history: ConvergenceHistory::default(),
        };
    }

    // Storage backend for every matvec of this solve (CSR or SELL-C-σ);
    // bitwise-identical kernels either way, see `feir_sparse::format`.
    let op = SpmvBackend::select(a);
    let spmv = |v: &[f64], out: &mut [f64]| {
        if options.parallel {
            op.spmv_parallel(a, v, out);
        } else {
            op.spmv(a, v, out);
        }
    };

    let mut g = vec![0.0; n];
    spmv(&x, &mut g);
    for (gi, bi) in g.iter_mut().zip(b) {
        *gi = bi - *gi;
    }
    let mut z = vec![0.0; n];
    let mut d = vec![0.0; n];
    let mut q = vec![0.0; n];

    let mut history = ConvergenceHistory::default();
    let mut rho_old = f64::INFINITY;
    let mut stop_reason = StopReason::MaxIterations;
    let mut iterations = 0usize;

    // ‖g‖² of the upcoming convergence check, refreshed by the fused
    // residual update at the bottom of each iteration. The scalar reductions
    // of this loop have always been serial (they feed the recurrence
    // immediately), so the fused matvec+dot applies on the serial SpMV path
    // only — fusing against the parallel SpMV would change the dot's fold
    // order and break bitwise identity with the pre-fusion loop.
    let mut g_norm2 = vecops::norm2_squared(&g);
    for t in 0..options.max_iterations {
        let rel = g_norm2.sqrt() / norm_b;
        if options.record_history {
            history.push(t, rel, start.elapsed());
        }
        if rel <= options.tolerance {
            stop_reason = StopReason::Converged;
            iterations = t;
            break;
        }
        let _it = feir_trace::span(feir_trace::Phase::Iteration);
        // solve M z = g
        preconditioner.apply(&g, &mut z);
        let rho = vecops::dot(&z, &g);
        if rho == 0.0 || !rho.is_finite() {
            stop_reason = StopReason::Breakdown;
            iterations = t;
            break;
        }
        let beta = if rho_old.is_finite() {
            rho / rho_old
        } else {
            0.0
        };
        // d ⇐ β·d + z
        vecops::xpay(&z, beta, &mut d);
        // q ⇐ A·d, fused with ⟨d, q⟩ on the serial path.
        let dq = {
            let _probe = feir_trace::span(feir_trace::Phase::Spmv);
            if options.parallel {
                op.spmv_parallel(a, &d, &mut q);
                vecops::dot(&q, &d)
            } else {
                op.spmv_dot(a, &d, &mut q)
            }
        };
        if dq == 0.0 || !dq.is_finite() {
            stop_reason = StopReason::Breakdown;
            iterations = t;
            break;
        }
        let alpha = rho / dq;
        vecops::axpy(alpha, &d, &mut x);
        // g ⇐ g − α·q fused with ‖g‖² for the next convergence check.
        g_norm2 = fused::axpy_norm2(-alpha, &q, &mut g);
        rho_old = rho;
        iterations = t + 1;
    }

    let mut r = vec![0.0; n];
    spmv(&x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let relative_residual = vecops::norm2(&r) / norm_b;
    if stop_reason == StopReason::MaxIterations && relative_residual <= options.tolerance {
        stop_reason = StopReason::Converged;
    }

    SolveResult {
        x,
        iterations,
        relative_residual,
        stop_reason,
        elapsed: start.elapsed(),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use crate::preconditioner::{IdentityPreconditioner, JacobiPreconditioner};
    use feir_sparse::blocking::BlockPartition;
    use feir_sparse::generators::{anisotropic_2d, manufactured_rhs, poisson_2d};
    use feir_sparse::BlockJacobi;

    #[test]
    fn identity_preconditioner_matches_plain_cg() {
        let a = poisson_2d(12);
        let (_, b) = manufactured_rhs(&a, 5);
        let opts = SolveOptions::default();
        let plain = cg(&a, &b, None, &opts);
        let pre = pcg(&a, &b, None, &IdentityPreconditioner, &opts);
        assert!(plain.converged() && pre.converged());
        // Same Krylov space => same iteration count (within one).
        assert!((plain.iterations as i64 - pre.iterations as i64).abs() <= 1);
        for (u, v) in plain.x.iter().zip(&pre.x) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn block_jacobi_reduces_iterations_on_hard_problem() {
        let a = anisotropic_2d(32, 0.01);
        let (_, b) = manufactured_rhs(&a, 6);
        let opts = SolveOptions::default().with_tolerance(1e-8);
        let plain = cg(&a, &b, None, &opts);
        let bj = BlockJacobi::new(&a, BlockPartition::new(a.rows(), 64), true).unwrap();
        let pre = pcg(&a, &b, None, &bj, &opts);
        assert!(plain.converged() && pre.converged());
        assert!(
            pre.iterations < plain.iterations,
            "PCG ({}) should beat CG ({})",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn jacobi_preconditioner_converges() {
        let a = poisson_2d(16);
        let (x_true, b) = manufactured_rhs(&a, 8);
        let p = JacobiPreconditioner::new(&a);
        let result = pcg(&a, &b, None, &p, &SolveOptions::default());
        assert!(result.converged());
        let err: f64 = result
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = poisson_2d(6);
        let b = vec![0.0; a.rows()];
        let result = pcg(
            &a,
            &b,
            None,
            &IdentityPreconditioner,
            &SolveOptions::default(),
        );
        assert!(result.converged());
        assert_eq!(result.iterations, 0);
    }
}
