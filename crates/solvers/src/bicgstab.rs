//! Bi-Conjugate Gradient Stabilized (Listing 3 / 6 of the paper).

use std::time::Instant;

use feir_sparse::{vecops, CsrMatrix};

use crate::history::{ConvergenceHistory, SolveOptions, SolveResult, StopReason};
use crate::preconditioner::{IdentityPreconditioner, Preconditioner};

/// Solves `A x = b` with BiCGStab (general non-symmetric `A`).
///
/// Follows Listing 3 of the paper (`r` is the constant shadow residual):
///
/// ```text
/// g, r, d ⇐ b − A·x ; ρ ⇐ ⟨g,r⟩
/// loop: q ⇐ A·d ; α ⇐ ρ/⟨q,r⟩ ; s ⇐ g − α·q ; t ⇐ A·s ;
///       ω ⇐ ⟨t,s⟩/⟨t,t⟩ ; x ⇐ x + α·d + ω·s ; g ⇐ s − ω·t ;
///       ρ_old ⇐ ρ ; ρ ⇐ ⟨g,r⟩ ; β ⇐ (ρ/ρ_old)·(α/ω) ; d ⇐ g + β(d − ω·q)
/// ```
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    options: &SolveOptions,
) -> SolveResult {
    bicgstab_preconditioned(a, b, x0, &IdentityPreconditioner, options)
}

/// Preconditioned BiCGStab (Listing 6 of the paper), with a generic
/// "solve `M u = v`" preconditioner.
pub fn bicgstab_preconditioned(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    preconditioner: &dyn Preconditioner,
    options: &SolveOptions,
) -> SolveResult {
    assert_eq!(a.rows(), a.cols(), "BiCGStab requires a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    let start = Instant::now();

    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "initial guess length mismatch");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let norm_b = vecops::norm2(b);
    if norm_b == 0.0 {
        return SolveResult {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            stop_reason: StopReason::Converged,
            elapsed: start.elapsed(),
            history: ConvergenceHistory::default(),
        };
    }

    let spmv = |m: &CsrMatrix, v: &[f64], out: &mut [f64]| {
        if options.parallel {
            m.spmv_parallel(v, out);
        } else {
            m.spmv(v, out);
        }
    };

    // g, r, d ⇐ b − A·x
    let mut g = vec![0.0; n];
    spmv(a, &x, &mut g);
    for (gi, bi) in g.iter_mut().zip(b) {
        *gi = bi - *gi;
    }
    let r = g.clone(); // constant shadow residual
    let mut d = g.clone();
    let mut rho = vecops::dot(&g, &r);

    let mut p = vec![0.0; n]; // preconditioned d
    let mut q = vec![0.0; n];
    let mut s_hat = vec![0.0; n]; // preconditioned s
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];

    let mut history = ConvergenceHistory::default();
    let mut stop_reason = StopReason::MaxIterations;
    let mut iterations = 0usize;

    for iter in 0..options.max_iterations {
        let rel = vecops::norm2(&g) / norm_b;
        if options.record_history {
            history.push(iter, rel, start.elapsed());
        }
        if rel <= options.tolerance {
            stop_reason = StopReason::Converged;
            iterations = iter;
            break;
        }
        // solve M p = d ; q ⇐ A·p
        preconditioner.apply(&d, &mut p);
        spmv(a, &p, &mut q);
        let qr = vecops::dot(&q, &r);
        if qr == 0.0 || !qr.is_finite() {
            stop_reason = StopReason::Breakdown;
            iterations = iter;
            break;
        }
        let alpha = rho / qr;
        // s ⇐ g − α·q
        vecops::linear_combination(1.0, &g, -alpha, &q, &mut s);
        // Early exit on tiny s keeps ω well defined.
        if vecops::norm2(&s) / norm_b <= options.tolerance {
            vecops::axpy(alpha, &p, &mut x);
            stop_reason = StopReason::Converged;
            iterations = iter + 1;
            break;
        }
        // solve M ŝ = s ; t ⇐ A·ŝ
        preconditioner.apply(&s, &mut s_hat);
        spmv(a, &s_hat, &mut t);
        let tt = vecops::dot(&t, &t);
        if tt == 0.0 || !tt.is_finite() {
            stop_reason = StopReason::Breakdown;
            iterations = iter;
            break;
        }
        let omega = vecops::dot(&t, &s) / tt;
        if omega == 0.0 || !omega.is_finite() {
            stop_reason = StopReason::Breakdown;
            iterations = iter;
            break;
        }
        // x ⇐ x + α·p + ω·ŝ
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(omega, &s_hat, &mut x);
        // g ⇐ s − ω·t
        vecops::linear_combination(1.0, &s, -omega, &t, &mut g);
        let rho_old = rho;
        rho = vecops::dot(&g, &r);
        if rho_old == 0.0 || !rho.is_finite() {
            stop_reason = StopReason::Breakdown;
            iterations = iter + 1;
            break;
        }
        let beta = (rho / rho_old) * (alpha / omega);
        // d ⇐ g + β(d − ω·q)
        for ((di, gi), qi) in d.iter_mut().zip(&g).zip(&q) {
            *di = gi + beta * (*di - omega * qi);
        }
        iterations = iter + 1;
    }

    let mut res = vec![0.0; n];
    spmv(a, &x, &mut res);
    for (ri, bi) in res.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let relative_residual = vecops::norm2(&res) / norm_b;
    if relative_residual <= options.tolerance {
        stop_reason = StopReason::Converged;
    }

    SolveResult {
        x,
        iterations,
        relative_residual,
        stop_reason,
        elapsed: start.elapsed(),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preconditioner::JacobiPreconditioner;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d, random_spd};
    use feir_sparse::CooMatrix;

    /// A non-symmetric convection–diffusion style matrix.
    fn nonsymmetric_matrix(n: usize) -> CsrMatrix {
        let size = n * n;
        let mut coo = CooMatrix::new(size, size);
        let idx = |i: usize, j: usize| i * n + j;
        for i in 0..n {
            for j in 0..n {
                let row = idx(i, j);
                coo.push(row, row, 4.0).unwrap();
                if i > 0 {
                    coo.push(row, idx(i - 1, j), -1.0 - 0.3).unwrap();
                }
                if i + 1 < n {
                    coo.push(row, idx(i + 1, j), -1.0 + 0.3).unwrap();
                }
                if j > 0 {
                    coo.push(row, idx(i, j - 1), -1.0 - 0.2).unwrap();
                }
                if j + 1 < n {
                    coo.push(row, idx(i, j + 1), -1.0 + 0.2).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn solves_spd_system() {
        let a = poisson_2d(10);
        let (x_true, b) = manufactured_rhs(&a, 3);
        let result = bicgstab(&a, &b, None, &SolveOptions::default().with_tolerance(1e-9));
        assert!(result.converged(), "{:?}", result.stop_reason);
        let err: f64 = result
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-5, "error {err}");
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = nonsymmetric_matrix(12);
        assert!(!a.is_symmetric(1e-12));
        let (x_true, b) = manufactured_rhs(&a, 5);
        let result = bicgstab(&a, &b, None, &SolveOptions::default().with_tolerance(1e-9));
        assert!(result.converged());
        let err: f64 = result
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-5, "error {err}");
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let a = random_spd(300, 5, 17);
        let (_, b) = manufactured_rhs(&a, 2);
        let opts = SolveOptions::default().with_tolerance(1e-9);
        let plain = bicgstab(&a, &b, None, &opts);
        let jacobi = JacobiPreconditioner::new(&a);
        let pre = bicgstab_preconditioned(&a, &b, None, &jacobi, &opts);
        assert!(plain.converged() && pre.converged());
        assert!(pre.iterations <= plain.iterations);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = poisson_2d(4);
        let b = vec![0.0; a.rows()];
        let result = bicgstab(&a, &b, None, &SolveOptions::default());
        assert!(result.converged());
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = nonsymmetric_matrix(16);
        let (_, b) = manufactured_rhs(&a, 8);
        let result = bicgstab(
            &a,
            &b,
            None,
            &SolveOptions::default().with_max_iterations(2),
        );
        assert!(result.iterations <= 2);
    }
}
