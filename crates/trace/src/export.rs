//! Cross-rank merge, Chrome trace-event export and the per-phase summary.
//!
//! Rank 0 collects one [`RankTrace`] per rank (its own via
//! [`crate::drain_rank`], the workers' via the `TraceDump` wire message),
//! wraps them in a [`SolveTrace`], and either exports Chrome trace-event
//! JSON — loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev),
//! one track (`tid`) per rank — or folds everything into a
//! [`TraceSummary`] table.
//!
//! Per-process clocks are aligned on each rank's trace origin: every rank
//! ships the unix-microsecond wall time of its monotonic origin, and the
//! merge subtracts the minimum so all tracks share `t = 0` at the earliest
//! origin. Within one machine (the only deployment here) wall clocks agree
//! to well under the span durations being plotted.

use crate::metrics::Histogram;
use crate::{Event, Phase};

/// One rank's drained events plus the link-layer counters that traveled
/// with them (zero for in-process backends, which have no links).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankTrace {
    /// The rank these events belong to.
    pub rank: u32,
    /// Unix microseconds of this process's trace origin (merge alignment).
    pub origin_micros: u64,
    /// Events lost to ring-buffer overflow on this rank.
    pub dropped: u64,
    /// Recorded events, sorted by start time.
    pub events: Vec<Event>,
    /// Reliability-layer data frames sent by this rank.
    pub link_frames: u64,
    /// Reliability-layer retransmissions performed by this rank.
    pub link_retransmits: u64,
    /// Chaos-injected frame faults observed on this rank's outgoing links.
    pub link_faults: u64,
    /// Inbound frames rejected (bad envelope / failed parse).
    pub link_rejected: u64,
    /// Duplicate data frames received (and suppressed) by this rank.
    pub link_dup_received: u64,
}

/// Per-phase aggregate across every rank of a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Number of events (spans + instants).
    pub count: u64,
    /// Summed span duration in nanoseconds.
    pub total_ns: u64,
    /// Mean span duration in nanoseconds.
    pub mean_ns: f64,
    /// 99th-percentile span duration in nanoseconds (log-bucket bound).
    pub p99_ns: u64,
}

/// The per-phase totals and fault counts of one solve — what
/// `DistSolveResult`/`DistResilientReport` carry and campaigns print.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Phases that occurred at least once, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseStat>,
    /// Reliability-layer retransmissions across all ranks (link counters,
    /// falling back to retransmit trace events when no links exist).
    pub retransmits: u64,
    /// Chaos-injected frame faults across all ranks.
    pub frame_faults: u64,
    /// Elastic rejoins observed in the trace.
    pub rejoins: u64,
    /// Events lost to ring-buffer overflow across all ranks.
    pub dropped_events: u64,
}

impl TraceSummary {
    /// Total nanoseconds recorded for `phase`, 0 if it never occurred.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map_or(0, |p| p.total_ns)
    }

    /// A plain-text table: one row per phase plus a fault-count footer.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str("phase                  count    total_ms    mean_us     p99_us\n");
        for p in &self.phases {
            out.push_str(&format!(
                "{:<20} {:>8} {:>11.3} {:>10.2} {:>10.2}\n",
                p.phase.name(),
                p.count,
                p.total_ns as f64 / 1e6,
                p.mean_ns / 1e3,
                p.p99_ns as f64 / 1e3,
            ));
        }
        out.push_str(&format!(
            "retransmits={} frame_faults={} rejoins={} dropped_events={}\n",
            self.retransmits, self.frame_faults, self.rejoins, self.dropped_events
        ));
        out
    }
}

/// The merged traces of one distributed solve: one [`RankTrace`] per rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveTrace {
    /// Per-rank streams, sorted by rank.
    pub ranks: Vec<RankTrace>,
}

impl SolveTrace {
    /// Wraps per-rank traces, sorting them by rank.
    pub fn new(mut ranks: Vec<RankTrace>) -> Self {
        ranks.sort_by_key(|r| r.rank);
        SolveTrace { ranks }
    }

    /// True when no rank recorded any event.
    pub fn is_empty(&self) -> bool {
        self.ranks.iter().all(|r| r.events.is_empty())
    }

    /// The earliest origin among the ranks — the merged timeline's zero.
    fn min_origin_micros(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.origin_micros)
            .min()
            .unwrap_or(0)
    }

    /// Exports Chrome trace-event JSON: `pid` 0, one `tid` per rank,
    /// `ph:"B"`/`ph:"E"` pairs for spans and `ph:"i"` for instants, `ts` in
    /// microseconds on the shared clock origin. Loadable in
    /// `chrome://tracing` and Perfetto.
    pub fn chrome_json(&self) -> String {
        // (ts_ns, order, name, ph, tid); `order` breaks ties at equal ts:
        // E before i before B so adjacent spans don't read as nested, E ties
        // close the innermost (shortest) span first, B ties open the
        // outermost (longest) first.
        let mut records: Vec<(u64, u64, &'static str, u8, u32)> = Vec::new();
        const PH_B: u8 = 0;
        const PH_E: u8 = 1;
        const PH_I: u8 = 2;
        let t0 = self.min_origin_micros();
        for rank in &self.ranks {
            let offset_ns = rank.origin_micros.saturating_sub(t0) * 1_000;
            for e in &rank.events {
                let start = e.start_ns + offset_ns;
                if e.dur_ns == 0 {
                    records.push((start, 1 << 62, e.phase.name(), PH_I, rank.rank));
                } else {
                    records.push((start, u64::MAX - e.dur_ns, e.phase.name(), PH_B, rank.rank));
                    records.push((start + e.dur_ns, e.dur_ns, e.phase.name(), PH_E, rank.rank));
                }
            }
        }
        records.sort_by_key(|r| (r.4, r.0, r.1));
        let mut out = String::with_capacity(64 + records.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, (ts_ns, _, name, ph, tid)) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ph_str = match *ph {
                PH_B => "B",
                PH_E => "E",
                _ => "i",
            };
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":0,\"tid\":{}",
                name,
                ph_str,
                ts_ns / 1_000,
                ts_ns % 1_000,
                tid
            ));
            if *ph == PH_I {
                out.push_str(",\"s\":\"t\"");
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Folds every rank's events into per-phase totals and fault counts.
    pub fn summary(&self) -> TraceSummary {
        let mut hists: Vec<Histogram> = (0..Phase::ALL.len()).map(|_| Histogram::new()).collect();
        let mut instants = [0u64; 11];
        let mut dropped = 0;
        let mut link_retransmits = 0;
        let mut frame_faults = 0;
        for rank in &self.ranks {
            dropped += rank.dropped;
            link_retransmits += rank.link_retransmits;
            frame_faults += rank.link_faults;
            for e in &rank.events {
                if e.dur_ns == 0 {
                    instants[e.phase as usize] += 1;
                } else {
                    hists[e.phase as usize].observe(e.dur_ns);
                }
            }
        }
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let h = &hists[phase as usize];
            let count = h.count() + instants[phase as usize];
            if count == 0 {
                continue;
            }
            phases.push(PhaseStat {
                phase,
                count,
                total_ns: h.sum(),
                mean_ns: h.mean(),
                p99_ns: h.p99(),
            });
        }
        let event_retransmits = phases
            .iter()
            .find(|p| p.phase == Phase::Retransmit)
            .map_or(0, |p| p.count);
        let rejoins = phases
            .iter()
            .find(|p| p.phase == Phase::Rejoin)
            .map_or(0, |p| p.count);
        TraceSummary {
            phases,
            retransmits: link_retransmits.max(event_retransmits),
            frame_faults,
            rejoins,
            dropped_events: dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(phase: Phase, start_ns: u64, dur_ns: u64) -> Event {
        Event {
            phase,
            start_ns,
            dur_ns,
        }
    }

    fn rank_trace(rank: u32, origin_micros: u64, events: Vec<Event>) -> RankTrace {
        RankTrace {
            rank,
            origin_micros,
            events,
            ..RankTrace::default()
        }
    }

    /// Minimal structural validation of the exported JSON: balanced
    /// braces/brackets, equal B/E counts, per-tid monotonic ts.
    fn validate_chrome_json(json: &str) {
        let mut depth_brace = 0i64;
        let mut depth_bracket = 0i64;
        let mut in_string = false;
        let mut prev = ' ';
        for c in json.chars() {
            if in_string {
                if c == '"' && prev != '\\' {
                    in_string = false;
                }
            } else {
                match c {
                    '"' => in_string = true,
                    '{' => depth_brace += 1,
                    '}' => depth_brace -= 1,
                    '[' => depth_bracket += 1,
                    ']' => depth_bracket -= 1,
                    _ => {}
                }
                assert!(depth_brace >= 0 && depth_bracket >= 0, "unbalanced");
            }
            prev = c;
        }
        assert_eq!(depth_brace, 0, "unbalanced braces");
        assert_eq!(depth_bracket, 0, "unbalanced brackets");
        assert!(!in_string, "unterminated string");
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends, "unmatched B/E pairs");
        // Per-tid ts monotonicity.
        let mut per_tid: std::collections::BTreeMap<u32, f64> = Default::default();
        for line in json.lines().filter(|l| l.contains("\"ts\":")) {
            let ts: f64 = line
                .split("\"ts\":")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            let tid: u32 = line
                .split("\"tid\":")
                .nth(1)
                .unwrap()
                .trim_end_matches(['}', ','])
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            let last = per_tid.entry(tid).or_insert(0.0);
            assert!(ts >= *last, "ts went backwards on tid {tid}: {ts} < {last}");
            *last = ts;
        }
    }

    #[test]
    fn chrome_export_is_well_formed_and_monotonic() {
        let trace = SolveTrace::new(vec![
            rank_trace(
                0,
                1_000_000,
                vec![
                    ev(Phase::Iteration, 0, 10_000),
                    ev(Phase::Spmv, 1_000, 4_000),
                    ev(Phase::Retransmit, 5_000, 0),
                    ev(Phase::Allreduce, 6_000, 3_000),
                ],
            ),
            rank_trace(
                1,
                1_000_500, // origin 500us later than rank 0
                vec![ev(Phase::Iteration, 0, 9_000), ev(Phase::Halo, 500, 2_000)],
            ),
        ]);
        let json = trace.chrome_json();
        validate_chrome_json(&json);
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"name\":\"spmv\""));
        assert!(json.contains("\"ph\":\"i\""));
        // Rank 1's iteration starts at its local 0ns = 500us on the merged
        // clock (its origin is 500us after rank 0's).
        assert!(
            json.contains("\"name\":\"iteration\",\"ph\":\"B\",\"ts\":500.000,\"pid\":0,\"tid\":1")
        );
    }

    #[test]
    fn nested_spans_emit_properly_ordered_pairs() {
        // Inner span ends exactly when outer does: the E for the inner
        // (shorter) span must come first, and at the shared start the outer
        // (longer) B must come first.
        let trace = SolveTrace::new(vec![rank_trace(
            0,
            0,
            vec![
                ev(Phase::Iteration, 100, 900),
                ev(Phase::Spmv, 100, 900 - 1),
            ],
        )]);
        let json = trace.chrome_json();
        validate_chrome_json(&json);
        let b_iter = json.find("\"name\":\"iteration\",\"ph\":\"B\"").unwrap();
        let b_spmv = json.find("\"name\":\"spmv\",\"ph\":\"B\"").unwrap();
        let e_iter = json.find("\"name\":\"iteration\",\"ph\":\"E\"").unwrap();
        let e_spmv = json.find("\"name\":\"spmv\",\"ph\":\"E\"").unwrap();
        assert!(b_iter < b_spmv, "outer B before inner B");
        assert!(e_spmv < e_iter, "inner E before outer E");
    }

    #[test]
    fn merge_orders_ranks_and_aligns_origins() {
        let trace = SolveTrace::new(vec![
            rank_trace(3, 2_000, vec![ev(Phase::Halo, 0, 100)]),
            rank_trace(1, 1_000, vec![ev(Phase::Halo, 0, 100)]),
            rank_trace(0, 1_500, vec![ev(Phase::Halo, 0, 100)]),
            rank_trace(2, 3_000, vec![ev(Phase::Halo, 0, 100)]),
        ]);
        assert_eq!(
            trace.ranks.iter().map(|r| r.rank).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        let json = trace.chrome_json();
        validate_chrome_json(&json);
        // Rank 1 has the earliest origin → its halo B sits at ts 0; rank 2 is
        // 2000us later.
        assert!(json.contains("\"name\":\"halo\",\"ph\":\"B\",\"ts\":0.000,\"pid\":0,\"tid\":1"));
        assert!(json.contains("\"name\":\"halo\",\"ph\":\"B\",\"ts\":2000.000,\"pid\":0,\"tid\":2"));
    }

    #[test]
    fn summary_totals_and_counts() {
        let mut r0 = rank_trace(
            0,
            0,
            vec![
                ev(Phase::Iteration, 0, 1_000),
                ev(Phase::Iteration, 1_000, 3_000),
                ev(Phase::Retransmit, 500, 0),
            ],
        );
        r0.dropped = 7;
        r0.link_retransmits = 4;
        r0.link_faults = 9;
        let r1 = rank_trace(1, 0, vec![ev(Phase::Rejoin, 0, 2_000)]);
        let summary = SolveTrace::new(vec![r0, r1]).summary();
        assert_eq!(summary.phase_total_ns(Phase::Iteration), 4_000);
        assert_eq!(summary.phase_total_ns(Phase::Halo), 0);
        let iter = summary
            .phases
            .iter()
            .find(|p| p.phase == Phase::Iteration)
            .unwrap();
        assert_eq!(iter.count, 2);
        assert!((iter.mean_ns - 2_000.0).abs() < 1e-9);
        // Link counter (4) beats the single retransmit instant.
        assert_eq!(summary.retransmits, 4);
        assert_eq!(summary.frame_faults, 9);
        assert_eq!(summary.rejoins, 1);
        assert_eq!(summary.dropped_events, 7);
        let table = summary.table();
        assert!(table.contains("iteration"));
        assert!(table.contains("rejoin"));
        assert!(table.contains("retransmits=4"));
    }

    #[test]
    fn empty_trace_summary_is_default_shaped() {
        let trace = SolveTrace::default();
        assert!(trace.is_empty());
        let summary = trace.summary();
        assert!(summary.phases.is_empty());
        assert_eq!(summary.retransmits, 0);
        let json = trace.chrome_json();
        validate_chrome_json(&json);
    }
}
