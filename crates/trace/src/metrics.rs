//! Counter / gauge / histogram registry.
//!
//! The [`Histogram`] is log-bucketed (one bucket per power of two of
//! nanoseconds), which gives percentile estimates with bounded relative
//! error at a fixed 64-slot footprint — cheap enough to sit on a hot path
//! and mergeable across ranks by summing buckets.
//!
//! This module also hosts the worker state-time accounting
//! ([`StateTimes`] / [`StateBreakdown`]) that used to live in
//! `feir-runtime`, so the workspace has exactly one metrics home.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two buckets; covers `0..2^63` ns (≈ 292 years).
const BUCKETS: usize = 64;

/// A log-bucketed histogram of `u64` samples (nanoseconds by convention).
///
/// Bucket `i` holds samples whose highest set bit is `i - 1` (bucket 0 holds
/// the value 0), i.e. values in `[2^(i-1), 2^i)`. Percentiles are reported
/// as the upper bound of the bucket the rank falls into, so they
/// over-estimate by at most 2× — plenty for "where did the time go".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= BUCKETS {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = Self::bucket_index(value).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the samples, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (bucket upper bound; 0 when
    /// empty). `q` outside the range is clamped.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; ceil so p100 hits the last one.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Adds another histogram's samples into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// One named metric in a [`Metrics`] registry.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-value-wins measurement.
    Gauge(f64),
    /// A distribution of `u64` samples (boxed: a [`Histogram`] is two
    /// orders of magnitude larger than the other variants).
    Histogram(Box<Histogram>),
}

/// A process-wide registry of named counters, gauges and histograms.
///
/// Writes take a single mutex; this is deliberately simple — the hot-path
/// probes only touch it at `FEIR_TRACE=counters`, and the solvers' inner
/// loops go through [`crate::span`], not through named lookups.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter `name` by 1, creating it at 0 first.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increments the counter `name` by `delta`. Replaces a same-named
    /// gauge/histogram with a counter.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.get_mut(name) {
            Some(Metric::Counter(v)) => *v += delta,
            _ => {
                inner.insert(name.to_string(), Metric::Counter(delta));
            }
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .unwrap()
            .insert(name.to_string(), Metric::Gauge(value));
    }

    /// Records `value` into the histogram `name`, creating it if absent.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        match inner.get_mut(name) {
            Some(Metric::Histogram(h)) => h.observe(value),
            _ => {
                let mut h = Histogram::new();
                h.observe(value);
                inner.insert(name.to_string(), Metric::Histogram(Box::new(h)));
            }
        }
    }

    /// The current value of counter `name`, 0 if absent or not a counter.
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.inner.lock().unwrap().get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Removes every metric.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }
}

// ----- worker state-time accounting (moved from feir-runtime) ---------------

/// Time one worker spent in each of the three states of the paper's
/// Table 3 breakdown (useful / runtime / imbalance).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StateTimes {
    /// Time spent executing task bodies.
    pub useful: Duration,
    /// Time spent inside the scheduler (popping tasks, releasing dependents).
    pub runtime: Duration,
    /// Time spent idle waiting for work (load imbalance).
    pub idle: Duration,
}

impl StateTimes {
    /// Total tracked time.
    pub fn total(&self) -> Duration {
        self.useful + self.runtime + self.idle
    }

    /// Adds another accumulation into this one.
    pub fn accumulate(&mut self, other: &StateTimes) {
        self.useful += other.useful;
        self.runtime += other.runtime;
        self.idle += other.idle;
    }
}

/// Aggregated breakdown over all workers, expressed as fractions of the total.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StateBreakdown {
    /// Fraction of worker time doing useful work.
    pub useful_fraction: f64,
    /// Fraction of worker time doing runtime work.
    pub runtime_fraction: f64,
    /// Fraction of worker time idling.
    pub idle_fraction: f64,
}

impl StateBreakdown {
    /// Aggregates per-worker times into global fractions.
    pub fn from_workers(workers: &[StateTimes]) -> Self {
        let mut sum = StateTimes::default();
        for w in workers {
            sum.accumulate(w);
        }
        let total = sum.total().as_secs_f64();
        if total <= 0.0 {
            return Self::default();
        }
        Self {
            useful_fraction: sum.useful.as_secs_f64() / total,
            runtime_fraction: sum.runtime.as_secs_f64() / total,
            idle_fraction: sum.idle.as_secs_f64() / total,
        }
    }

    /// Percentage-point increase of each state relative to a baseline run —
    /// the quantity reported in Table 3 ("increase of time spent per state").
    ///
    /// Returns `(imbalance, runtime, useful)` increases in percent, matching
    /// the column order of the paper's table.
    pub fn increase_over(&self, baseline: &StateBreakdown) -> (f64, f64, f64) {
        let rel = |ours: f64, base: f64| {
            if base <= 0.0 {
                if ours <= 0.0 {
                    0.0
                } else {
                    100.0
                }
            } else {
                (ours - base) / base * 100.0
            }
        };
        (
            rel(self.idle_fraction, baseline.idle_fraction),
            rel(self.runtime_fraction, baseline.runtime_fraction),
            rel(self.useful_fraction, baseline.useful_fraction),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_006);
        assert!((h.mean() - 1_001_006.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        // 99 fast samples around 100ns, one slow 1ms outlier.
        for _ in 0..99 {
            h.observe(100);
        }
        h.observe(1_000_000);
        // 100 lands in [64,128) → upper bound 127.
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p90(), 127);
        // p99 rank is 99 → still the fast bucket; p100 hits the outlier.
        assert_eq!(h.p99(), 127);
        assert!(h.percentile(1.0) >= 1_000_000);
        // Bucket bound over-estimates by < 2x.
        assert!(h.percentile(1.0) < 2_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn merge_sums_counts_and_preserves_percentiles() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..10 {
            a.observe(100);
            b.observe(100_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert_eq!(a.p50(), 127);
        assert!(a.p99() >= 100_000 && a.p99() < 200_000);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let m = Metrics::new();
        m.inc("retransmit");
        m.add("retransmit", 4);
        m.set_gauge("ranks", 4.0);
        m.observe("halo_ns", 1500);
        m.observe("halo_ns", 2500);
        assert_eq!(m.counter_value("retransmit"), 5);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 3);
        match snap.iter().find(|(k, _)| k == "halo_ns").map(|(_, v)| v) {
            Some(Metric::Histogram(h)) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
        m.clear();
        assert_eq!(m.counter_value("retransmit"), 0);
    }

    #[test]
    fn state_totals_and_accumulation() {
        let mut a = StateTimes {
            useful: Duration::from_millis(10),
            runtime: Duration::from_millis(2),
            idle: Duration::from_millis(3),
        };
        assert_eq!(a.total(), Duration::from_millis(15));
        let b = StateTimes {
            useful: Duration::from_millis(5),
            runtime: Duration::from_millis(1),
            idle: Duration::from_millis(0),
        };
        a.accumulate(&b);
        assert_eq!(a.useful, Duration::from_millis(15));
        assert_eq!(a.total(), Duration::from_millis(21));
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let workers = vec![
            StateTimes {
                useful: Duration::from_millis(80),
                runtime: Duration::from_millis(10),
                idle: Duration::from_millis(10),
            },
            StateTimes {
                useful: Duration::from_millis(60),
                runtime: Duration::from_millis(20),
                idle: Duration::from_millis(20),
            },
        ];
        let b = StateBreakdown::from_workers(&workers);
        let sum = b.useful_fraction + b.runtime_fraction + b.idle_fraction;
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(b.useful_fraction > 0.6);
    }

    #[test]
    fn empty_worker_list_gives_zero_breakdown() {
        let b = StateBreakdown::from_workers(&[]);
        assert_eq!(b, StateBreakdown::default());
    }

    #[test]
    fn increase_over_baseline() {
        let baseline = StateBreakdown {
            useful_fraction: 0.8,
            runtime_fraction: 0.1,
            idle_fraction: 0.1,
        };
        let with_recovery = StateBreakdown {
            useful_fraction: 0.82,
            runtime_fraction: 0.11,
            idle_fraction: 0.125,
        };
        let (imbalance, runtime, useful) = with_recovery.increase_over(&baseline);
        assert!((imbalance - 25.0).abs() < 1e-9);
        assert!((runtime - 10.0).abs() < 1e-9);
        assert!((useful - 2.5).abs() < 1e-9);
    }

    #[test]
    fn increase_from_zero_baseline_is_capped() {
        let baseline = StateBreakdown::default();
        let other = StateBreakdown {
            useful_fraction: 0.5,
            runtime_fraction: 0.0,
            idle_fraction: 0.5,
        };
        let (imbalance, runtime, useful) = other.increase_over(&baseline);
        assert_eq!(runtime, 0.0);
        assert_eq!(imbalance, 100.0);
        assert_eq!(useful, 100.0);
    }
}
