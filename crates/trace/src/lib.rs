//! # feir-trace
//!
//! Zero-dependency structured tracing and metrics for the FEIR project —
//! the observability layer under the distributed solvers, the process
//! transport and the recovery engine.
//!
//! The environment vendors no registry crates, so this is hand-rolled like
//! `feir-wire`: a runtime level switch, thread-local bounded event sinks,
//! RAII span guards, a counter/gauge/histogram [`Metrics`] registry and a
//! Chrome-trace-event exporter, all on `std` alone.
//!
//! ## Levels
//!
//! The probe cost is governed by [`TraceLevel`], read once from the
//! `FEIR_TRACE` environment variable (`off` | `counters` | `spans`,
//! default `off`) and overridable with [`set_level`]:
//!
//! * **off** — every probe is a single relaxed atomic load and a branch.
//!   No clock reads, no allocation, no floating-point work: the
//!   bitwise-identity and performance contracts of the solvers are
//!   untouched.
//! * **counters** — probes bump named counters in the global [`Metrics`]
//!   registry ([`metrics()`]); still no clock reads on the hot path.
//! * **spans** — probes record timed [`Event`]s (two monotonic clock reads
//!   per span) into the calling thread's bounded sink.
//!
//! ## Spans and sinks
//!
//! [`span`] returns a guard that records a completed event when dropped, so
//! spans stay balanced even under panic unwinding — the guard's `Drop` runs
//! during unwind and closes the span. The span *stack* is the program stack
//! itself: nested guards drop in reverse order, which is exactly the
//! begin/end nesting the Chrome trace viewer expects.
//!
//! Every thread writes to its own bounded ring buffer ([`set_capacity`];
//! drop-oldest, with a dropped-events counter), registered in a process-wide
//! list so [`drain_all`] / [`drain_rank`] can collect a rank's events from
//! the main solver thread *and* its transport reader threads. Rank
//! attribution: solver threads call [`set_thread_rank`]; worker processes
//! call [`set_process_rank`] once, which covers every untagged thread
//! (e.g. per-link reader threads).
//!
//! ## Clock
//!
//! Timestamps are nanoseconds from a process-wide monotonic origin
//! ([`now_ns`]). The origin's wall-clock instant is captured once as unix
//! microseconds ([`origin_unix_micros`]) and shipped alongside each rank's
//! events, which is what lets rank 0 merge per-process streams onto a
//! shared timeline (see [`export::SolveTrace`]).

#![warn(missing_docs)]

pub mod export;
pub mod metrics;

pub use export::{PhaseStat, RankTrace, SolveTrace, TraceSummary};
pub use metrics::{Histogram, Metrics, StateBreakdown, StateTimes};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

// ----- level switch ---------------------------------------------------------

/// How much the probes record (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// Probes compile to one atomic load + branch; nothing is recorded.
    Off = 0,
    /// Probes bump named counters in the global [`Metrics`] registry.
    Counters = 1,
    /// Probes record timed events into the per-thread sinks.
    Spans = 2,
}

impl TraceLevel {
    /// Parses the `FEIR_TRACE` value; unknown strings mean [`TraceLevel::Off`].
    pub fn parse(s: &str) -> TraceLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "counters" | "1" => TraceLevel::Counters,
            "spans" | "2" | "on" | "full" => TraceLevel::Spans,
            _ => TraceLevel::Off,
        }
    }

    fn from_u8(v: u8) -> TraceLevel {
        match v {
            1 => TraceLevel::Counters,
            2 => TraceLevel::Spans,
            _ => TraceLevel::Off,
        }
    }
}

/// Sentinel meaning "not yet read from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The active trace level: the `FEIR_TRACE` environment variable, read once,
/// unless overridden by [`set_level`]. This is the one branch every probe
/// pays when tracing is off.
#[inline]
pub fn level() -> TraceLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNSET {
        return TraceLevel::from_u8(v);
    }
    init_level_from_env()
}

#[cold]
fn init_level_from_env() -> TraceLevel {
    let parsed = std::env::var("FEIR_TRACE")
        .map(|v| TraceLevel::parse(&v))
        .unwrap_or(TraceLevel::Off);
    // Another thread may have raced the init or called set_level; keep
    // whichever value landed first.
    match LEVEL.compare_exchange(
        LEVEL_UNSET,
        parsed as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    ) {
        Ok(_) => parsed,
        Err(existing) => TraceLevel::from_u8(existing),
    }
}

/// Overrides the trace level for this process (tests, examples, tools).
pub fn set_level(level: TraceLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

// ----- phases ---------------------------------------------------------------

/// The typed event kinds of the solver/transport/recovery stack. The `u8`
/// values are the wire encoding of the `TraceDump` message — append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// One solver iteration (outermost span of the rank loop body).
    Iteration = 0,
    /// Local sparse matrix-vector product (incl. the fused dot partial).
    Spmv = 1,
    /// Halo exchange of the vector the matvec reads.
    Halo = 2,
    /// A blocking scalar or vector allreduce, entry to exit.
    Allreduce = 3,
    /// Posting the local partial of a split-phase allreduce.
    AllreducePost = 4,
    /// Waiting for (and finishing) a split-phase allreduce.
    AllreduceWait = 5,
    /// Planning page reconstructions from a read-only snapshot.
    RecoveryPlan = 6,
    /// A coupled-row reconstruction solve (exact or lossy).
    RecoveryReconstruct = 7,
    /// Installing a recovery plan into the live solver state.
    RecoveryInstall = 8,
    /// A reliability-layer frame retransmission (instant event).
    Retransmit = 9,
    /// Elastic rejoin: barrier, re-handshake and state repair.
    Rejoin = 10,
}

impl Phase {
    /// Every phase, in `u8` order.
    pub const ALL: [Phase; 11] = [
        Phase::Iteration,
        Phase::Spmv,
        Phase::Halo,
        Phase::Allreduce,
        Phase::AllreducePost,
        Phase::AllreduceWait,
        Phase::RecoveryPlan,
        Phase::RecoveryReconstruct,
        Phase::RecoveryInstall,
        Phase::Retransmit,
        Phase::Rejoin,
    ];

    /// Stable display name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Iteration => "iteration",
            Phase::Spmv => "spmv",
            Phase::Halo => "halo",
            Phase::Allreduce => "allreduce",
            Phase::AllreducePost => "allreduce_post",
            Phase::AllreduceWait => "allreduce_wait",
            Phase::RecoveryPlan => "recovery_plan",
            Phase::RecoveryReconstruct => "recovery_reconstruct",
            Phase::RecoveryInstall => "recovery_install",
            Phase::Retransmit => "retransmit",
            Phase::Rejoin => "rejoin",
        }
    }

    /// Decodes the wire byte; `None` for values from a newer protocol.
    pub fn from_u8(v: u8) -> Option<Phase> {
        Phase::ALL.get(v as usize).copied()
    }
}

/// One recorded event: a completed span (`dur_ns > 0` possible) or an
/// instant marker (`dur_ns == 0` by convention for [`instant`] probes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub phase: Phase,
    /// Nanoseconds since this process's trace origin.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
}

// ----- clock ----------------------------------------------------------------

static ORIGIN: OnceLock<(Instant, u64)> = OnceLock::new();

fn origin() -> &'static (Instant, u64) {
    ORIGIN.get_or_init(|| {
        let wall = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (Instant::now(), wall)
    })
}

/// Monotonic nanoseconds since the process-wide trace origin.
#[inline]
pub fn now_ns() -> u64 {
    origin().0.elapsed().as_nanos() as u64
}

/// The wall-clock instant of the trace origin, in unix microseconds — the
/// per-process `t0` the cross-rank merge aligns streams on.
pub fn origin_unix_micros() -> u64 {
    origin().1
}

// ----- sinks ----------------------------------------------------------------

/// Default per-thread ring-buffer capacity, in events.
pub const DEFAULT_CAPACITY: usize = 65_536;

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// Rank every untagged thread in this process reports as (`u32::MAX` =
/// unset). One-rank worker processes set this once at startup.
static PROCESS_RANK: AtomicU32 = AtomicU32::new(u32::MAX);

struct SinkInner {
    rank: Option<u32>,
    events: VecDeque<Event>,
    dropped: u64,
}

static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<SinkInner>>>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Arc<Mutex<SinkInner>>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SINK: Arc<Mutex<SinkInner>> = {
        let sink = Arc::new(Mutex::new(SinkInner {
            rank: None,
            events: VecDeque::new(),
            dropped: 0,
        }));
        registry().lock().unwrap().push(sink.clone());
        sink
    };
}

/// Caps every sink's ring buffer at `capacity` events (drop-oldest beyond
/// it). Applies to subsequent records; existing buffered events stay.
pub fn set_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// Tags the calling thread's events with `rank` (in-process backends: one
/// solver thread per rank).
pub fn set_thread_rank(rank: u32) {
    SINK.with(|sink| sink.lock().unwrap().rank = Some(rank));
}

/// Tags every *untagged* thread of this process with `rank` (process
/// backend: one rank per worker, with per-link reader threads that never
/// call [`set_thread_rank`]).
pub fn set_process_rank(rank: u32) {
    PROCESS_RANK.store(rank, Ordering::Relaxed);
}

fn record(event: Event) {
    let cap = CAPACITY.load(Ordering::Relaxed);
    SINK.with(|sink| {
        let mut inner = sink.lock().unwrap();
        if inner.events.len() >= cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    });
}

// ----- probes ---------------------------------------------------------------

/// A RAII span guard: records a completed [`Event`] when dropped (including
/// during panic unwinding, which is what keeps begin/end pairs balanced).
/// At [`TraceLevel::Off`] and [`TraceLevel::Counters`] the guard is inert.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span(Option<(Phase, u64)>);

/// Opens a span for `phase`. One branch when tracing is off; a counter bump
/// at `counters`; two clock reads and a ring-buffer push at `spans`.
#[inline]
pub fn span(phase: Phase) -> Span {
    match level() {
        TraceLevel::Off => Span(None),
        TraceLevel::Counters => {
            metrics().inc(phase.name());
            Span(None)
        }
        TraceLevel::Spans => Span(Some((phase, now_ns()))),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((phase, start_ns)) = self.0.take() {
            let dur_ns = now_ns().saturating_sub(start_ns).max(1);
            record(Event {
                phase,
                start_ns,
                dur_ns,
            });
        }
    }
}

/// Records an instant (zero-duration) event for `phase` — retransmissions,
/// faults, anything without a meaningful extent.
#[inline]
pub fn instant(phase: Phase) {
    match level() {
        TraceLevel::Off => {}
        TraceLevel::Counters => metrics().inc(phase.name()),
        TraceLevel::Spans => record(Event {
            phase,
            start_ns: now_ns(),
            dur_ns: 0,
        }),
    }
}

/// The process-global [`Metrics`] registry the `counters` level feeds.
pub fn metrics() -> &'static Metrics {
    static GLOBAL: OnceLock<Metrics> = OnceLock::new();
    GLOBAL.get_or_init(Metrics::new)
}

// ----- draining -------------------------------------------------------------

fn effective_rank(tagged: Option<u32>) -> Option<u32> {
    tagged.or({
        let p = PROCESS_RANK.load(Ordering::Relaxed);
        (p != u32::MAX).then_some(p)
    })
}

/// Drains every sink whose effective rank is `rank` into one [`RankTrace`]
/// (events sorted by start time). Draining empties the buffers, so two
/// consecutive solves don't double-report.
pub fn drain_rank(rank: u32) -> RankTrace {
    let mut events = Vec::new();
    let mut dropped = 0;
    for sink in registry().lock().unwrap().iter() {
        let mut inner = sink.lock().unwrap();
        if effective_rank(inner.rank) == Some(rank) {
            events.extend(inner.events.drain(..));
            dropped += inner.dropped;
            inner.dropped = 0;
        }
    }
    events.sort_by_key(|e| e.start_ns);
    RankTrace {
        rank,
        origin_micros: origin_unix_micros(),
        dropped,
        events,
        link_frames: 0,
        link_retransmits: 0,
        link_faults: 0,
        link_rejected: 0,
        link_dup_received: 0,
    }
}

/// Drains every tagged sink of the process, grouped by rank, in rank order.
/// Untagged sinks with no process rank set are left untouched.
pub fn drain_all() -> Vec<RankTrace> {
    let mut ranks: Vec<u32> = Vec::new();
    for sink in registry().lock().unwrap().iter() {
        let inner = sink.lock().unwrap();
        if let Some(rank) = effective_rank(inner.rank) {
            if !inner.events.is_empty() && !ranks.contains(&rank) {
                ranks.push(rank);
            }
        }
    }
    ranks.sort_unstable();
    ranks.into_iter().map(drain_rank).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The level, sinks and registry are process-global, so every test that
    // records events serializes on this lock and restores `Off` at the end.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_spans<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(TraceLevel::Spans);
        set_capacity(DEFAULT_CAPACITY);
        let out = f();
        set_level(TraceLevel::Off);
        out
    }

    #[test]
    fn off_level_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(TraceLevel::Off);
        set_thread_rank(91);
        let _s = span(Phase::Spmv);
        drop(_s);
        instant(Phase::Retransmit);
        assert!(drain_rank(91).events.is_empty());
    }

    #[test]
    fn spans_nest_and_balance_under_panic_unwind() {
        with_spans(|| {
            set_thread_rank(92);
            drop(drain_rank(92)); // clear anything earlier tests left
            let result = std::panic::catch_unwind(|| {
                let _outer = span(Phase::Iteration);
                let _inner = span(Phase::Spmv);
                panic!("solver died mid-iteration");
            });
            assert!(result.is_err());
            let trace = drain_rank(92);
            // Both guards dropped during unwind: two completed events, the
            // inner one contained in the outer one.
            assert_eq!(trace.events.len(), 2);
            let outer = trace
                .events
                .iter()
                .find(|e| e.phase == Phase::Iteration)
                .unwrap();
            let inner = trace
                .events
                .iter()
                .find(|e| e.phase == Phase::Spmv)
                .unwrap();
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        });
    }

    #[test]
    fn ring_buffer_overflow_drops_oldest_and_counts() {
        with_spans(|| {
            set_thread_rank(93);
            drop(drain_rank(93));
            set_capacity(8);
            for _ in 0..20 {
                instant(Phase::Retransmit);
            }
            set_capacity(DEFAULT_CAPACITY);
            let trace = drain_rank(93);
            assert_eq!(trace.events.len(), 8);
            assert_eq!(trace.dropped, 12);
            // The retained events are the newest ones.
            assert!(trace
                .events
                .windows(2)
                .all(|w| w[0].start_ns <= w[1].start_ns));
        });
    }

    #[test]
    fn counters_level_feeds_the_global_registry() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(TraceLevel::Counters);
        set_thread_rank(94);
        let before = metrics().counter_value("halo");
        {
            let _s = span(Phase::Halo);
        }
        instant(Phase::Halo);
        set_level(TraceLevel::Off);
        assert_eq!(metrics().counter_value("halo"), before + 2);
        assert!(
            drain_rank(94).events.is_empty(),
            "counters record no events"
        );
    }

    #[test]
    fn drain_groups_by_thread_rank() {
        with_spans(|| {
            set_thread_rank(95);
            drop(drain_rank(95));
            drop(drain_rank(96));
            instant(Phase::Rejoin);
            std::thread::spawn(|| {
                set_level(TraceLevel::Spans);
                set_thread_rank(96);
                instant(Phase::Halo);
            })
            .join()
            .unwrap();
            assert_eq!(drain_rank(95).events.len(), 1);
            let other = drain_rank(96);
            assert_eq!(other.events.len(), 1);
            assert_eq!(other.events[0].phase, Phase::Halo);
        });
    }

    #[test]
    fn level_parse_accepts_the_documented_values() {
        assert_eq!(TraceLevel::parse("off"), TraceLevel::Off);
        assert_eq!(TraceLevel::parse("counters"), TraceLevel::Counters);
        assert_eq!(TraceLevel::parse("SPANS"), TraceLevel::Spans);
        assert_eq!(TraceLevel::parse("garbage"), TraceLevel::Off);
    }

    #[test]
    fn phase_wire_bytes_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_u8(phase as u8), Some(phase));
        }
        assert_eq!(Phase::from_u8(200), None);
    }
}
