//! Versioned, self-describing binary wire protocol for the multi-process
//! transport.
//!
//! Every message travels as a length-prefixed frame with an 8-byte header:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  (0xFE 0x17)
//! 2       1     schema version (currently 2)
//! 3       1     message tag
//! 4       4     payload length in bytes, little-endian u32
//! 8       ...   payload
//! ```
//!
//! All multi-byte integers and every `f64` are encoded little-endian; floats
//! use their IEEE-754 bit pattern verbatim, so a round trip through the codec
//! is bitwise lossless. Halo payloads are flat `f64` arrays that a receiver
//! can scatter straight out of the frame buffer via [`f64_payload_iter`]
//! without building an intermediate `Vec<f64>`.
//!
//! The header is self-describing: a reader can always validate the magic and
//! version, learn the message kind from the tag, and skip or reject unknown
//! frames by length, independent of any out-of-band schema knowledge.

pub mod chaos;

use std::fmt;
use std::io::{Read, Write};

/// Frame magic bytes; `0xFE17` as two bytes on the wire.
pub const MAGIC: [u8; 2] = [0xFE, 0x17];

/// Current schema version. Bump when the payload layout of any tag changes.
/// v2 added the `epoch` field to [`Message::Hello`] and the
/// [`Message::RejoinBarrier`] resynchronization frame for rank elasticity.
/// v3 added the `t0_micros` clock-origin field to [`Message::Hello`] and the
/// [`Message::TraceDump`] trace-collection frame.
/// v4 added the [`Message::CoupledGather`] / [`Message::CoupledResult`]
/// frames for cross-rank coupled recovery.
pub const WIRE_VERSION: u8 = 4;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 8;

/// Hard upper bound on a single frame payload (64 MiB). Guards a corrupt or
/// adversarial length field from forcing an enormous allocation.
pub const MAX_PAYLOAD: u32 = 1 << 26;

/// Errors produced while encoding or decoding frames.
#[derive(Debug)]
pub enum WireError {
    /// Underlying I/O failure (includes mid-frame EOF while reading a header).
    Io(std::io::Error),
    /// The stream closed cleanly at a frame boundary (0 bytes of a new frame).
    Closed,
    /// The first two bytes of a frame were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The peer speaks a different schema version.
    VersionMismatch {
        /// Version this library implements.
        ours: u8,
        /// Version found in the frame header.
        theirs: u8,
    },
    /// The tag byte does not name a known message type.
    UnknownTag(u8),
    /// The frame ended before the declared payload length was available, or a
    /// payload was shorter than its message layout requires.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Structurally invalid payload (bad lengths, non-UTF-8 text, ...).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Closed => write!(f, "stream closed at frame boundary"),
            WireError::BadMagic(m) => {
                write!(
                    f,
                    "bad frame magic {:02x}{:02x} (expected fe17)",
                    m[0], m[1]
                )
            }
            WireError::VersionMismatch { ours, theirs } => write!(
                f,
                "wire version mismatch: we speak v{ours}, peer sent v{theirs}"
            ),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::Oversized(len) => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds cap of {MAX_PAYLOAD}"
                )
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Message kind carried in the frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Tag {
    /// Connection handshake: announces the sender's rank and world size.
    Hello = 1,
    /// Halo payload: boundary values for a neighbour's ghost columns.
    Halo = 2,
    /// Leaf-to-root contribution of a scalar allreduce.
    GatherScalar = 3,
    /// Leaf-to-root contribution of a vector allreduce.
    GatherVec = 4,
    /// Root-to-leaf result of a scalar allreduce.
    BroadcastScalar = 5,
    /// Root-to-leaf result of a vector allreduce.
    BroadcastVec = 6,
    /// Recovery neighbourhood collective: request for remote entries.
    RecoveryRequest = 7,
    /// Recovery neighbourhood collective: values + validity flags reply.
    RecoveryReply = 8,
    /// Worker-to-launcher final result report.
    RankResult = 9,
    /// Worker-to-launcher failure report.
    RankError = 10,
    /// Mesh-wide resynchronization point after a rank rejoins.
    RejoinBarrier = 11,
    /// Worker-to-launcher trace buffer dump (follows the final report).
    TraceDump = 12,
    /// Coupled cross-rank recovery: lost rows + surviving stencil support
    /// offered down the rank chain.
    CoupledGather = 13,
    /// Coupled cross-rank recovery: reconstructed row values shipped back
    /// up the rank chain.
    CoupledResult = 14,
}

impl Tag {
    /// All tags, for exhaustive round-trip tests.
    pub const ALL: [Tag; 14] = [
        Tag::Hello,
        Tag::Halo,
        Tag::GatherScalar,
        Tag::GatherVec,
        Tag::BroadcastScalar,
        Tag::BroadcastVec,
        Tag::RecoveryRequest,
        Tag::RecoveryReply,
        Tag::RankResult,
        Tag::RankError,
        Tag::RejoinBarrier,
        Tag::TraceDump,
        Tag::CoupledGather,
        Tag::CoupledResult,
    ];

    /// Decodes a tag byte.
    pub fn from_u8(byte: u8) -> Result<Tag, WireError> {
        Ok(match byte {
            1 => Tag::Hello,
            2 => Tag::Halo,
            3 => Tag::GatherScalar,
            4 => Tag::GatherVec,
            5 => Tag::BroadcastScalar,
            6 => Tag::BroadcastVec,
            7 => Tag::RecoveryRequest,
            8 => Tag::RecoveryReply,
            9 => Tag::RankResult,
            10 => Tag::RankError,
            11 => Tag::RejoinBarrier,
            12 => Tag::TraceDump,
            13 => Tag::CoupledGather,
            14 => Tag::CoupledResult,
            other => return Err(WireError::UnknownTag(other)),
        })
    }
}

/// Failure kind carried by a [`Message::RankError`] report, so the launcher
/// can reconstruct a typed error instead of parsing a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RankErrorKind {
    /// Anything that is not a communication failure (setup, solve, ...).
    Other = 0,
    /// A peer rank disconnected mid-solve.
    Disconnected = 1,
    /// A read deadline expired waiting on a peer.
    Timeout = 2,
    /// A frame failed to decode.
    Wire = 3,
}

impl RankErrorKind {
    fn from_u8(byte: u8) -> Result<RankErrorKind, WireError> {
        Ok(match byte {
            0 => RankErrorKind::Other,
            1 => RankErrorKind::Disconnected,
            2 => RankErrorKind::Timeout,
            3 => RankErrorKind::Wire,
            _ => return Err(WireError::Malformed("unknown rank-error kind")),
        })
    }
}

/// A decoded wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Handshake frame exchanged on connect/accept.
    Hello {
        /// Sender's rank.
        rank: u32,
        /// Sender's view of the world size.
        ranks: u32,
        /// Respawn generation of the sending rank: 0 for an original mesh
        /// member, incremented each time the rank is respawned. Lets a
        /// survivor validate that the peer re-handshaking on an epoch-
        /// suffixed address really is the expected newcomer.
        epoch: u32,
        /// Wall-clock unix microseconds of the sender's trace clock origin
        /// (`t0`). Lets any receiver place the sender's monotonic trace
        /// timestamps on a shared timeline; 0 when tracing is off.
        t0_micros: u64,
    },
    /// Halo boundary values, in the column order both sides agreed on.
    Halo {
        /// The boundary values.
        values: Vec<f64>,
    },
    /// Scalar allreduce contribution from a leaf.
    GatherScalar {
        /// Contributing rank (determines fold order at the root).
        rank: u32,
        /// Local partial value.
        value: f64,
    },
    /// Vector allreduce contribution from a leaf.
    GatherVec {
        /// Contributing rank (determines fold order at the root).
        rank: u32,
        /// Local partial values.
        values: Vec<f64>,
    },
    /// Scalar allreduce result from the root.
    BroadcastScalar {
        /// Reduced value.
        value: f64,
    },
    /// Vector allreduce result from the root.
    BroadcastVec {
        /// Reduced values.
        values: Vec<f64>,
    },
    /// Request for remote vector entries during recovery.
    RecoveryRequest {
        /// Global indices being requested.
        indices: Vec<u64>,
    },
    /// Reply to a [`Message::RecoveryRequest`].
    RecoveryReply {
        /// Values for the requested indices, in request order.
        values: Vec<f64>,
        /// Whether each value is healthy on the serving rank.
        valid: Vec<bool>,
    },
    /// Final report a worker process writes to its launcher.
    RankResult {
        /// Reporting rank.
        rank: u32,
        /// Iterations the solver ran.
        iterations: u64,
        /// Allreduce collectives the rank participated in.
        collectives: u64,
        /// The rank's owned block of the solution vector.
        x: Vec<f64>,
        /// Residual history (meaningful on rank 0).
        history: Vec<f64>,
    },
    /// Failure report a worker process writes to its launcher.
    RankError {
        /// Reporting rank.
        rank: u32,
        /// Failure classification.
        kind: RankErrorKind,
        /// Peer rank involved, or `-1` when not applicable.
        peer: i32,
        /// Human-readable description.
        message: String,
    },
    /// Mesh-wide resynchronization point after a rank rejoins. Every rank
    /// sends one to every peer, then drains the link until the matching
    /// barrier arrives; frames from before the barrier are stale and
    /// discarded. `iteration` lets the mesh agree on the resume point (the
    /// maximum over all ranks).
    RejoinBarrier {
        /// Mesh epoch the barrier belongs to (sum of per-rank respawn
        /// generations — identical on every rank after a rejoin).
        epoch: u32,
        /// The sending rank's current iteration number.
        iteration: u64,
    },
    /// A worker's drained trace buffer, written to the launcher after the
    /// final [`Message::RankResult`]/[`Message::RankError`] report. Events
    /// are raw `(phase, start_ns, dur_ns)` tuples so this crate stays free
    /// of a `feir-trace` dependency; the launcher reassembles them.
    TraceDump {
        /// Reporting rank.
        rank: u32,
        /// Unix microseconds of the worker's trace clock origin.
        origin_micros: u64,
        /// Events lost to ring-buffer overflow on the worker.
        dropped: u64,
        /// Link-layer counters summed over the worker's peers:
        /// `[data_frames, retransmits, injected_faults, rejected,
        /// dup_received]`.
        link: [u64; 5],
        /// Recorded events as `(phase_byte, start_ns, dur_ns)`.
        events: Vec<(u8, u64, u64)>,
    },
    /// Coupled cross-rank recovery offer, merged down the rank chain: the
    /// sender's view of the lost-row union plus every surviving stencil
    /// entry the coupled solve needs from outside that union.
    CoupledGather {
        /// Global row indices of lost rows in the coupled union.
        rows: Vec<u64>,
        /// Right-hand-side values retained for those rows (`g` or `s`).
        values: Vec<f64>,
        /// Global column indices of stencil support entries outside the
        /// union.
        support_cols: Vec<u64>,
        /// Current values of the support entries on their owning rank.
        support_values: Vec<f64>,
        /// Whether each support entry is healthy on its owning rank.
        support_valid: Vec<bool>,
    },
    /// Coupled cross-rank recovery result, relayed back up the rank chain:
    /// reconstructed values for rows the solving rank does not own.
    CoupledResult {
        /// Global row indices of reconstructed entries.
        rows: Vec<u64>,
        /// Reconstructed values, in `rows` order.
        values: Vec<f64>,
    },
}

impl Message {
    /// The tag this message is framed with.
    pub fn tag(&self) -> Tag {
        match self {
            Message::Hello { .. } => Tag::Hello,
            Message::Halo { .. } => Tag::Halo,
            Message::GatherScalar { .. } => Tag::GatherScalar,
            Message::GatherVec { .. } => Tag::GatherVec,
            Message::BroadcastScalar { .. } => Tag::BroadcastScalar,
            Message::BroadcastVec { .. } => Tag::BroadcastVec,
            Message::RecoveryRequest { .. } => Tag::RecoveryRequest,
            Message::RecoveryReply { .. } => Tag::RecoveryReply,
            Message::RankResult { .. } => Tag::RankResult,
            Message::RankError { .. } => Tag::RankError,
            Message::RejoinBarrier { .. } => Tag::RejoinBarrier,
            Message::TraceDump { .. } => Tag::TraceDump,
            Message::CoupledGather { .. } => Tag::CoupledGather,
            Message::CoupledResult { .. } => Tag::CoupledResult,
        }
    }

    /// Appends the full frame (header + payload) for this message to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let header_at = out.len();
        out.extend_from_slice(&MAGIC);
        out.push(WIRE_VERSION);
        out.push(self.tag() as u8);
        out.extend_from_slice(&[0u8; 4]); // payload length backpatched below
        let payload_at = out.len();
        match self {
            Message::Hello {
                rank,
                ranks,
                epoch,
                t0_micros,
            } => {
                put_u32(out, *rank);
                put_u32(out, *ranks);
                put_u32(out, *epoch);
                put_u64(out, *t0_micros);
            }
            Message::Halo { values } => put_f64s(out, values),
            Message::GatherScalar { rank, value } => {
                put_u32(out, *rank);
                put_f64(out, *value);
            }
            Message::GatherVec { rank, values } => {
                put_u32(out, *rank);
                put_f64s(out, values);
            }
            Message::BroadcastScalar { value } => put_f64(out, *value),
            Message::BroadcastVec { values } => put_f64s(out, values),
            Message::RecoveryRequest { indices } => {
                for idx in indices {
                    put_u64(out, *idx);
                }
            }
            Message::RecoveryReply { values, valid } => {
                assert_eq!(values.len(), valid.len(), "reply values/valid must align");
                put_u32(out, values.len() as u32);
                put_f64s(out, values);
                out.extend(valid.iter().map(|&b| b as u8));
            }
            Message::RankResult {
                rank,
                iterations,
                collectives,
                x,
                history,
            } => {
                put_u32(out, *rank);
                put_u64(out, *iterations);
                put_u64(out, *collectives);
                put_u32(out, x.len() as u32);
                put_f64s(out, x);
                put_u32(out, history.len() as u32);
                put_f64s(out, history);
            }
            Message::RankError {
                rank,
                kind,
                peer,
                message,
            } => {
                put_u32(out, *rank);
                out.push(*kind as u8);
                put_u32(out, *peer as u32);
                out.extend_from_slice(message.as_bytes());
            }
            Message::RejoinBarrier { epoch, iteration } => {
                put_u32(out, *epoch);
                put_u64(out, *iteration);
            }
            Message::TraceDump {
                rank,
                origin_micros,
                dropped,
                link,
                events,
            } => {
                put_u32(out, *rank);
                put_u64(out, *origin_micros);
                put_u64(out, *dropped);
                for v in link {
                    put_u64(out, *v);
                }
                put_u32(out, events.len() as u32);
                for (phase, start_ns, dur_ns) in events {
                    out.push(*phase);
                    put_u64(out, *start_ns);
                    put_u64(out, *dur_ns);
                }
            }
            Message::CoupledGather {
                rows,
                values,
                support_cols,
                support_values,
                support_valid,
            } => {
                assert_eq!(rows.len(), values.len(), "gather rows/values must align");
                assert_eq!(
                    support_cols.len(),
                    support_values.len(),
                    "gather support cols/values must align"
                );
                assert_eq!(
                    support_cols.len(),
                    support_valid.len(),
                    "gather support cols/valid must align"
                );
                put_u32(out, rows.len() as u32);
                for r in rows {
                    put_u64(out, *r);
                }
                put_f64s(out, values);
                put_u32(out, support_cols.len() as u32);
                for c in support_cols {
                    put_u64(out, *c);
                }
                put_f64s(out, support_values);
                out.extend(support_valid.iter().map(|&b| b as u8));
            }
            Message::CoupledResult { rows, values } => {
                assert_eq!(rows.len(), values.len(), "result rows/values must align");
                put_u32(out, rows.len() as u32);
                for r in rows {
                    put_u64(out, *r);
                }
                put_f64s(out, values);
            }
        }
        let payload_len = (out.len() - payload_at) as u32;
        assert!(payload_len <= MAX_PAYLOAD, "frame payload exceeds cap");
        out[header_at + 4..header_at + 8].copy_from_slice(&payload_len.to_le_bytes());
    }

    /// Encodes this message into a fresh frame buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 32);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a message of the given tag from its payload bytes.
    pub fn decode(tag: Tag, payload: &[u8]) -> Result<Message, WireError> {
        let mut rd = Rd::new(payload);
        let msg = match tag {
            Tag::Hello => Message::Hello {
                rank: rd.take_u32()?,
                ranks: rd.take_u32()?,
                epoch: rd.take_u32()?,
                t0_micros: rd.take_u64()?,
            },
            Tag::Halo => Message::Halo {
                values: rd.take_f64s_rest()?,
            },
            Tag::GatherScalar => Message::GatherScalar {
                rank: rd.take_u32()?,
                value: rd.take_f64()?,
            },
            Tag::GatherVec => Message::GatherVec {
                rank: rd.take_u32()?,
                values: rd.take_f64s_rest()?,
            },
            Tag::BroadcastScalar => Message::BroadcastScalar {
                value: rd.take_f64()?,
            },
            Tag::BroadcastVec => Message::BroadcastVec {
                values: rd.take_f64s_rest()?,
            },
            Tag::RecoveryRequest => {
                let rest = rd.rest();
                if !rest.len().is_multiple_of(8) {
                    return Err(WireError::Malformed("request payload not 8-byte aligned"));
                }
                Message::RecoveryRequest {
                    indices: rest
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                }
            }
            Tag::RecoveryReply => {
                let count = rd.take_u32()? as usize;
                let values = rd.take_f64s(count)?;
                let valid_bytes = rd.take_bytes(count)?;
                let valid = valid_bytes.iter().map(|&b| b != 0).collect();
                Message::RecoveryReply { values, valid }
            }
            Tag::RankResult => {
                let rank = rd.take_u32()?;
                let iterations = rd.take_u64()?;
                let collectives = rd.take_u64()?;
                let x_len = rd.take_u32()? as usize;
                let x = rd.take_f64s(x_len)?;
                let hist_len = rd.take_u32()? as usize;
                let history = rd.take_f64s(hist_len)?;
                Message::RankResult {
                    rank,
                    iterations,
                    collectives,
                    x,
                    history,
                }
            }
            Tag::RankError => {
                let rank = rd.take_u32()?;
                let kind = RankErrorKind::from_u8(rd.take_u8()?)?;
                let peer = rd.take_u32()? as i32;
                let message = String::from_utf8(rd.rest().to_vec())
                    .map_err(|_| WireError::Malformed("rank-error message is not UTF-8"))?;
                Message::RankError {
                    rank,
                    kind,
                    peer,
                    message,
                }
            }
            Tag::RejoinBarrier => Message::RejoinBarrier {
                epoch: rd.take_u32()?,
                iteration: rd.take_u64()?,
            },
            Tag::TraceDump => {
                let rank = rd.take_u32()?;
                let origin_micros = rd.take_u64()?;
                let dropped = rd.take_u64()?;
                let mut link = [0u64; 5];
                for v in &mut link {
                    *v = rd.take_u64()?;
                }
                let count = rd.take_u32()? as usize;
                let mut events = Vec::with_capacity(count.min(MAX_PAYLOAD as usize / 17));
                for _ in 0..count {
                    let phase = rd.take_u8()?;
                    let start_ns = rd.take_u64()?;
                    let dur_ns = rd.take_u64()?;
                    events.push((phase, start_ns, dur_ns));
                }
                Message::TraceDump {
                    rank,
                    origin_micros,
                    dropped,
                    link,
                    events,
                }
            }
            Tag::CoupledGather => {
                let row_count = rd.take_u32()? as usize;
                let rows = rd.take_u64s(row_count)?;
                let values = rd.take_f64s(row_count)?;
                let support_count = rd.take_u32()? as usize;
                let support_cols = rd.take_u64s(support_count)?;
                let support_values = rd.take_f64s(support_count)?;
                let support_valid = rd
                    .take_bytes(support_count)?
                    .iter()
                    .map(|&b| b != 0)
                    .collect();
                Message::CoupledGather {
                    rows,
                    values,
                    support_cols,
                    support_values,
                    support_valid,
                }
            }
            Tag::CoupledResult => {
                let count = rd.take_u32()? as usize;
                let rows = rd.take_u64s(count)?;
                let values = rd.take_f64s(count)?;
                Message::CoupledResult { rows, values }
            }
        };
        Ok(msg)
    }
}

/// Writes one complete frame to `w`, reusing `scratch` as the encode buffer.
pub fn write_message<W: Write>(
    w: &mut W,
    msg: &Message,
    scratch: &mut Vec<u8>,
) -> Result<(), WireError> {
    scratch.clear();
    msg.encode_into(scratch);
    w.write_all(scratch)?;
    Ok(())
}

/// Parses and validates a frame header, returning `(tag, payload_len)`.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(Tag, u32), WireError> {
    if header[0..2] != MAGIC {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    if header[2] != WIRE_VERSION {
        return Err(WireError::VersionMismatch {
            ours: WIRE_VERSION,
            theirs: header[2],
        });
    }
    let tag = Tag::from_u8(header[3])?;
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    Ok((tag, len))
}

/// Decodes one complete frame (header + payload) from an in-memory buffer,
/// validating the header and that the buffer carries exactly the declared
/// payload. This is the integrity gate the reliability sublayer applies to
/// frames that arrived inside a chaos envelope: corruption injected by
/// [`chaos::ChaosLink`] surfaces here as `BadMagic` / `VersionMismatch` /
/// `Truncated`, never as a silently wrong message.
pub fn decode_frame_buf(buf: &[u8]) -> Result<Message, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    let header: [u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().unwrap();
    let (tag, len) = parse_header(&header)?;
    let payload = &buf[HEADER_LEN..];
    if payload.len() != len as usize {
        return Err(WireError::Truncated {
            needed: HEADER_LEN + len as usize,
            have: buf.len(),
        });
    }
    Message::decode(tag, payload)
}

/// Iterates the `f64` values of a flat float payload (e.g. a halo frame)
/// without copying it into an intermediate vector.
pub fn f64_payload_iter(payload: &[u8]) -> impl Iterator<Item = f64> + '_ {
    payload
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
}

/// Incremental frame reader with a reusable payload buffer.
#[derive(Debug, Default)]
pub struct FrameReader {
    payload: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Reads one frame, returning its tag and a borrow of the payload bytes.
    ///
    /// A clean EOF at a frame boundary returns [`WireError::Closed`]; EOF in
    /// the middle of a header or payload returns [`WireError::Truncated`].
    pub fn read_frame<R: Read>(&mut self, r: &mut R) -> Result<(Tag, &[u8]), WireError> {
        let mut header = [0u8; HEADER_LEN];
        // Read the first byte separately so a clean close (zero bytes at a
        // frame boundary) is distinguishable from a mid-frame truncation.
        let mut got = 0usize;
        while got == 0 {
            match r.read(&mut header[..1]) {
                Ok(0) => return Err(WireError::Closed),
                Ok(n) => got = n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        read_exact_or_truncated(r, &mut header[1..], HEADER_LEN, 1)?;
        let (tag, len) = parse_header(&header)?;
        self.payload.clear();
        self.payload.resize(len as usize, 0);
        read_exact_or_truncated(r, &mut self.payload, len as usize, 0)?;
        Ok((tag, &self.payload))
    }

    /// Reads and decodes one full message.
    pub fn read_message<R: Read>(&mut self, r: &mut R) -> Result<Message, WireError> {
        let (tag, payload) = self.read_frame(r)?;
        Message::decode(tag, payload)
    }
}

fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    needed: usize,
    already: usize,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed,
                    have: already + filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    out.reserve(vs.len() * 8);
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Cursor over a payload slice with bounds-checked primitive reads.
struct Rd<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, off: 0 }
    }

    fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.off < n {
            return Err(WireError::Truncated {
                needed: self.off + n,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take_bytes(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    fn take_f64s(&mut self, n: usize) -> Result<Vec<f64>, WireError> {
        Ok(f64_payload_iter(self.take_bytes(n * 8)?).collect())
    }

    fn take_u64s(&mut self, n: usize) -> Result<Vec<u64>, WireError> {
        Ok(self
            .take_bytes(n * 8)?
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn take_f64s_rest(&mut self) -> Result<Vec<f64>, WireError> {
        let rest = self.rest();
        if !rest.len().is_multiple_of(8) {
            return Err(WireError::Malformed("float payload not 8-byte aligned"));
        }
        Ok(f64_payload_iter(rest).collect())
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.off..];
        self.off = self.buf.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                rank: 3,
                ranks: 4,
                epoch: 2,
                t0_micros: 1_700_000_000_000_000,
            },
            Message::Halo {
                values: vec![1.5, -2.25, 1.2e+05, f64::MIN_POSITIVE],
            },
            Message::GatherScalar {
                rank: 1,
                value: -0.125,
            },
            Message::GatherVec {
                rank: 2,
                values: vec![0.1, 0.2, 0.30000000000000004],
            },
            Message::BroadcastScalar { value: 42.0 },
            Message::BroadcastVec {
                values: vec![-1.0, f64::NAN, 3.5],
            },
            Message::RecoveryRequest {
                indices: vec![0, 17, u64::MAX / 2],
            },
            Message::RecoveryReply {
                values: vec![9.0, -8.5],
                valid: vec![true, false],
            },
            Message::RankResult {
                rank: 0,
                iterations: 88,
                collectives: 178,
                x: vec![0.5; 7],
                history: vec![1.0, 0.25, 0.0625],
            },
            Message::RankError {
                rank: 2,
                kind: RankErrorKind::Disconnected,
                peer: 1,
                message: "peer 1 vanished".into(),
            },
            Message::RejoinBarrier {
                epoch: 3,
                iteration: 1729,
            },
            Message::TraceDump {
                rank: 1,
                origin_micros: 1_700_000_000_000_123,
                dropped: 5,
                link: [400, 12, 31, 2, 9],
                events: vec![(0, 10, 1_000), (9, 500, 0), (3, 2_000, 750)],
            },
            Message::CoupledGather {
                rows: vec![30, 31, 32, 33],
                values: vec![0.5, -0.25, 1.0e-3, 7.75],
                support_cols: vec![14, 29, 34],
                support_values: vec![2.5, -1.0, 0.0625],
                support_valid: vec![true, false, true],
            },
            Message::CoupledResult {
                rows: vec![30, 31],
                values: vec![1.125, -3.5],
            },
        ]
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn roundtrip_every_message_type() {
        let msgs = sample_messages();
        assert_eq!(msgs.len(), Tag::ALL.len(), "cover every tag");
        for msg in msgs {
            let frame = msg.encode();
            let mut reader = FrameReader::new();
            let mut cursor = frame.as_slice();
            let decoded = reader.read_message(&mut cursor).unwrap();
            // Compare float payloads bitwise (NaN != NaN under PartialEq).
            match (&msg, &decoded) {
                (Message::BroadcastVec { values: a }, Message::BroadcastVec { values: b }) => {
                    assert_eq!(bits(a), bits(b));
                }
                _ => assert_eq!(msg, decoded),
            }
            assert!(cursor.is_empty(), "frame fully consumed");
        }
    }

    #[test]
    fn back_to_back_frames_on_one_stream() {
        let mut stream = Vec::new();
        for msg in sample_messages() {
            msg.encode_into(&mut stream);
        }
        let mut reader = FrameReader::new();
        let mut cursor = stream.as_slice();
        for _ in 0..Tag::ALL.len() {
            reader.read_message(&mut cursor).unwrap();
        }
        assert!(matches!(
            reader.read_message(&mut cursor),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn truncated_frames_are_rejected_at_every_cut() {
        let frame = Message::GatherVec {
            rank: 1,
            values: vec![1.0, 2.0, 3.0],
        }
        .encode();
        for cut in 1..frame.len() {
            let mut reader = FrameReader::new();
            let mut cursor = &frame[..cut];
            let err = reader.read_message(&mut cursor).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut frame = Message::Hello {
            rank: 0,
            ranks: 2,
            epoch: 0,
            t0_micros: 0,
        }
        .encode();
        frame[2] = WIRE_VERSION + 1;
        let mut reader = FrameReader::new();
        let err = reader.read_message(&mut frame.as_slice()).unwrap_err();
        match err {
            WireError::VersionMismatch { ours, theirs } => {
                assert_eq!(ours, WIRE_VERSION);
                assert_eq!(theirs, WIRE_VERSION + 1);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_unknown_tag_are_rejected() {
        let good = Message::Hello {
            rank: 0,
            ranks: 2,
            epoch: 0,
            t0_micros: 0,
        }
        .encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = 0x00;
        assert!(matches!(
            FrameReader::new().read_message(&mut bad_magic.as_slice()),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_tag = good;
        bad_tag[3] = 0xEE;
        assert!(matches!(
            FrameReader::new().read_message(&mut bad_tag.as_slice()),
            Err(WireError::UnknownTag(0xEE))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut frame = Message::Hello {
            rank: 0,
            ranks: 2,
            epoch: 0,
            t0_micros: 0,
        }
        .encode();
        frame[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            FrameReader::new().read_message(&mut frame.as_slice()),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn halo_payload_iter_is_bitwise_zero_copy() {
        let values = vec![1.0, -0.0, f64::INFINITY, std::f64::consts::PI, 1.2e+05];
        let frame = Message::Halo {
            values: values.clone(),
        }
        .encode();
        let mut reader = FrameReader::new();
        let (tag, payload) = reader.read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(tag, Tag::Halo);
        let scattered: Vec<f64> = f64_payload_iter(payload).collect();
        assert_eq!(bits(&values), bits(&scattered));
    }

    #[test]
    fn misaligned_float_payload_is_malformed() {
        let mut frame = Message::Halo { values: vec![1.0] }.encode();
        // Declare 9 payload bytes and append one: no longer 8-byte aligned.
        frame[4..8].copy_from_slice(&9u32.to_le_bytes());
        frame.push(0xAB);
        assert!(matches!(
            FrameReader::new().read_message(&mut frame.as_slice()),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn header_is_self_describing() {
        let frame = Message::BroadcastScalar { value: 7.0 }.encode();
        let header: [u8; HEADER_LEN] = frame[..HEADER_LEN].try_into().unwrap();
        let (tag, len) = parse_header(&header).unwrap();
        assert_eq!(tag, Tag::BroadcastScalar);
        assert_eq!(len as usize, frame.len() - HEADER_LEN);
    }
}
