//! Deterministic transport fault injection ("chaos") for the process mesh.
//!
//! The reliability sublayer wraps every inner wire frame in a 13-byte
//! **envelope** before it hits the socket:
//!
//! ```text
//! offset  size  field
//! 0       1     kind  (1 = data, 2 = ack)
//! 1       8     sequence number, little-endian u64
//! 9       4     inner frame length in bytes, little-endian u32
//! 13      ...   inner frame (a complete feir-wire frame), data only
//! ```
//!
//! A [`ChaosLink`] sits between the envelope encoder and the socket and
//! misbehaves **deterministically**: whether frame `seq` (on send attempt
//! `attempt`) is dropped, duplicated, delayed, corrupted or truncated is a
//! pure function of the [`FaultPlan`] — a seed, per-kind rates and an
//! optional explicit script. No wall-clock, no global RNG: two runs with the
//! same plan misbehave identically, which is what lets the lossy-mesh solve
//! be asserted bitwise against the clean one.
//!
//! Two invariants keep injected faults *detectable* instead of silently
//! wrong:
//!
//! - The envelope itself is **never** faulted. The byte stream stays framed,
//!   so the receiver always knows where the next envelope starts; faults are
//!   confined to the inner frame (or its absence).
//! - Corruption only flips bits in the inner frame's first three bytes — the
//!   magic pair and the version byte. Those are exactly the fields
//!   [`crate::parse_header`] validates, so a corrupted frame always surfaces
//!   as [`crate::WireError::BadMagic`] or
//!   [`crate::WireError::VersionMismatch`]. Flipping a bit elsewhere (say in
//!   the tag byte) could produce a *different valid message*, which no
//!   integrity check of ours could catch.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Size of the reliability envelope prefixed to every chaos-layer record.
pub const ENVELOPE_LEN: usize = 13;

/// Envelope kind: a data record carrying one inner wire frame.
pub const ENV_DATA: u8 = 1;

/// Envelope kind: a cumulative acknowledgement (empty inner frame).
pub const ENV_ACK: u8 = 2;

/// Encodes a reliability envelope header.
pub fn encode_envelope(kind: u8, seq: u64, inner_len: u32) -> [u8; ENVELOPE_LEN] {
    let mut env = [0u8; ENVELOPE_LEN];
    env[0] = kind;
    env[1..9].copy_from_slice(&seq.to_le_bytes());
    env[9..13].copy_from_slice(&inner_len.to_le_bytes());
    env
}

/// Decodes a reliability envelope header into `(kind, seq, inner_len)`.
pub fn parse_envelope(env: &[u8; ENVELOPE_LEN]) -> (u8, u64, u32) {
    let kind = env[0];
    let seq = u64::from_le_bytes(env[1..9].try_into().unwrap());
    let inner_len = u32::from_le_bytes(env[9..13].try_into().unwrap());
    (kind, seq, inner_len)
}

/// One way a frame can be mistreated on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame is never written; the peer sees nothing for this seq.
    Drop,
    /// The frame is written twice back to back.
    Duplicate,
    /// The frame is held back and written after the *next* record (a
    /// one-slot reorder).
    Delay,
    /// One bit among the inner frame's magic/version bytes is flipped.
    Corrupt,
    /// Only a deterministic prefix of the inner frame is written (the
    /// envelope advertises the short length, so the stream stays framed).
    Truncate,
}

/// Independent per-kind fault probabilities, each in `[0, 1]`. Evaluated
/// cumulatively in declaration order, so the sum should stay at or below 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// Probability a frame is dropped.
    pub drop: f64,
    /// Probability a frame is duplicated.
    pub duplicate: f64,
    /// Probability a frame is delayed one slot.
    pub delay: f64,
    /// Probability a frame gets a header bit flip.
    pub corrupt: f64,
    /// Probability a frame is truncated.
    pub truncate: f64,
}

impl FaultRates {
    fn total(&self) -> f64 {
        self.drop + self.duplicate + self.delay + self.corrupt + self.truncate
    }
}

/// Deterministic schedule of transport faults for one directed link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every per-frame decision.
    pub seed: u64,
    /// Random (but reproducible) per-kind fault rates.
    pub rates: FaultRates,
    /// Explicit per-sequence-number faults; takes precedence over `rates`.
    pub script: BTreeMap<u64, FaultKind>,
    /// When `true` (the default for rate-driven plans), only the first send
    /// attempt of a sequence number can be faulted — retransmissions pass
    /// clean, so every fault is recoverable and a lossy solve terminates.
    /// Set to `false` to model a link where retries fail too (used by the
    /// exhausted-retry tests).
    pub first_attempt_only: bool,
}

impl FaultPlan {
    /// A plan that never faults anything.
    pub fn clean() -> Self {
        FaultPlan {
            first_attempt_only: true,
            ..FaultPlan::default()
        }
    }

    /// A rate-driven plan: each first-attempt frame is faulted with the
    /// given per-kind probabilities, decided by hashing `seed` with the
    /// sequence number.
    pub fn from_rates(seed: u64, rates: FaultRates) -> Self {
        debug_assert!(rates.total() <= 1.0 + 1e-12, "fault rates sum over 1");
        FaultPlan {
            seed,
            rates,
            script: BTreeMap::new(),
            first_attempt_only: true,
        }
    }

    /// An explicit script: fault exactly the listed sequence numbers.
    pub fn scripted(entries: &[(u64, FaultKind)]) -> Self {
        FaultPlan {
            seed: 0,
            rates: FaultRates::default(),
            script: entries.iter().copied().collect(),
            first_attempt_only: true,
        }
    }

    /// Whether this plan can ever fault a frame.
    pub fn is_clean(&self) -> bool {
        self.script.is_empty() && self.rates.total() == 0.0
    }

    /// Decides the fate of send attempt `attempt` of frame `seq`. Pure:
    /// depends only on the plan and the arguments.
    pub fn decide(&self, seq: u64, attempt: u32) -> Option<FaultKind> {
        if attempt > 0 && self.first_attempt_only {
            return None;
        }
        if let Some(&kind) = self.script.get(&seq) {
            return Some(kind);
        }
        let total = self.rates.total();
        if total <= 0.0 {
            return None;
        }
        let u = unit_hash(self.seed, seq, u64::from(attempt), 0);
        let mut threshold = self.rates.drop;
        if u < threshold {
            return Some(FaultKind::Drop);
        }
        threshold += self.rates.duplicate;
        if u < threshold {
            return Some(FaultKind::Duplicate);
        }
        threshold += self.rates.delay;
        if u < threshold {
            return Some(FaultKind::Delay);
        }
        threshold += self.rates.corrupt;
        if u < threshold {
            return Some(FaultKind::Corrupt);
        }
        threshold += self.rates.truncate;
        if u < threshold {
            return Some(FaultKind::Truncate);
        }
        None
    }

    /// Deterministic auxiliary draw in `0..bound` for shaping a fault (which
    /// bit to flip, where to cut). `salt` separates independent draws.
    fn draw(&self, seq: u64, attempt: u32, salt: u64, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        splitmix(self.seed ^ splitmix(seq) ^ splitmix(u64::from(attempt) ^ salt)) % bound
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash of `(seed, seq, attempt, salt)` mapped uniformly onto `[0, 1)`.
fn unit_hash(seed: u64, seq: u64, attempt: u64, salt: u64) -> f64 {
    let h = splitmix(seed ^ splitmix(seq) ^ splitmix(attempt ^ salt));
    // 53 mantissa bits of the hash as a fraction in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Shared counters describing what a [`ChaosLink`] (and the reliability
/// layer above it) actually did. All relaxed atomics — diagnostics only.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Data records sent (first attempts).
    pub data_frames: AtomicU64,
    /// Frames the chaos layer swallowed.
    pub dropped: AtomicU64,
    /// Frames written twice.
    pub duplicated: AtomicU64,
    /// Frames held back one slot.
    pub delayed: AtomicU64,
    /// Frames with an injected header bit flip.
    pub corrupted: AtomicU64,
    /// Frames cut short.
    pub truncated: AtomicU64,
    /// Retransmissions issued by the reliability layer.
    pub retransmits: AtomicU64,
    /// Received data records that failed frame validation.
    pub rejected: AtomicU64,
    /// Received data records that were duplicates of delivered frames.
    pub dup_received: AtomicU64,
}

impl LinkStats {
    /// Total injected faults of any kind.
    pub fn faults(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
            + self.duplicated.load(Ordering::Relaxed)
            + self.delayed.load(Ordering::Relaxed)
            + self.corrupted.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
    }

    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A fault-injecting writer for envelope-framed records.
///
/// All reliability-layer writes for one directed link funnel through one
/// `ChaosLink`, which applies the [`FaultPlan`] to data records and passes
/// acknowledgements through untouched (faulting acks would only exercise
/// the same retransmit path twice).
#[derive(Debug)]
pub struct ChaosLink<W: Write> {
    inner: W,
    plan: FaultPlan,
    /// A delayed record waiting to be written after the next one.
    held: Option<Vec<u8>>,
    stats: std::sync::Arc<LinkStats>,
}

impl<W: Write> ChaosLink<W> {
    /// Wraps `inner` with the given plan; `stats` is shared so the endpoint
    /// can report what happened.
    pub fn new(inner: W, plan: FaultPlan, stats: std::sync::Arc<LinkStats>) -> Self {
        ChaosLink {
            inner,
            plan,
            held: None,
            stats,
        }
    }

    /// The wrapped writer (used for raw pre-reliability traffic like the
    /// mesh handshake).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    /// Writes (or mistreats) one data record: envelope + `frame`, where
    /// `frame` is a complete inner wire frame. `attempt` is 0 for the first
    /// transmission and increments on each retransmit.
    pub fn write_data(&mut self, seq: u64, attempt: u32, frame: &[u8]) -> io::Result<()> {
        if attempt == 0 {
            self.stats.bump(&self.stats.data_frames);
        } else {
            self.stats.bump(&self.stats.retransmits);
        }
        let fault = self.plan.decide(seq, attempt);
        match fault {
            Some(FaultKind::Drop) => {
                self.stats.bump(&self.stats.dropped);
                // Nothing hits the wire; still release any held record so a
                // delayed frame cannot be stranded behind a dropped one.
                self.flush_held()?;
                Ok(())
            }
            Some(FaultKind::Delay) => {
                self.stats.bump(&self.stats.delayed);
                let mut record = Vec::with_capacity(ENVELOPE_LEN + frame.len());
                record.extend_from_slice(&encode_envelope(ENV_DATA, seq, frame.len() as u32));
                record.extend_from_slice(frame);
                // One delay slot: an already-held record goes out first.
                let previous = self.held.replace(record);
                if let Some(old) = previous {
                    self.inner.write_all(&old)?;
                    self.inner.flush()?;
                }
                Ok(())
            }
            Some(FaultKind::Duplicate) => {
                self.stats.bump(&self.stats.duplicated);
                let env = encode_envelope(ENV_DATA, seq, frame.len() as u32);
                for _ in 0..2 {
                    self.inner.write_all(&env)?;
                    self.inner.write_all(frame)?;
                }
                self.inner.flush()?;
                self.flush_held()
            }
            Some(FaultKind::Corrupt) => {
                self.stats.bump(&self.stats.corrupted);
                let mut mangled = frame.to_vec();
                // Flip one bit among bytes 0..3 (magic + version): the
                // receiver's header validation is guaranteed to reject it.
                let bit = self.plan.draw(seq, attempt, 0xC0, 24);
                mangled[(bit / 8) as usize] ^= 1 << (bit % 8);
                self.inner
                    .write_all(&encode_envelope(ENV_DATA, seq, mangled.len() as u32))?;
                self.inner.write_all(&mangled)?;
                self.inner.flush()?;
                self.flush_held()
            }
            Some(FaultKind::Truncate) => {
                self.stats.bump(&self.stats.truncated);
                // Cut strictly inside the frame; the envelope advertises the
                // short length so the byte stream stays in sync and the
                // receiver sees a Truncated frame, not a desync.
                let cut = 1 + self.plan.draw(seq, attempt, 0x7C, frame.len() as u64 - 1) as usize;
                self.inner
                    .write_all(&encode_envelope(ENV_DATA, seq, cut as u32))?;
                self.inner.write_all(&frame[..cut])?;
                self.inner.flush()?;
                self.flush_held()
            }
            None => {
                self.inner
                    .write_all(&encode_envelope(ENV_DATA, seq, frame.len() as u32))?;
                self.inner.write_all(frame)?;
                self.inner.flush()?;
                self.flush_held()
            }
        }
    }

    /// Writes a cumulative acknowledgement record. Never faulted.
    pub fn write_ack(&mut self, ack_seq: u64) -> io::Result<()> {
        self.inner
            .write_all(&encode_envelope(ENV_ACK, ack_seq, 0))?;
        self.inner.flush()?;
        self.flush_held()
    }

    fn flush_held(&mut self) -> io::Result<()> {
        if let Some(record) = self.held.take() {
            self.inner.write_all(&record)?;
            self.inner.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_frame_buf, Message, WireError};

    fn frame() -> Vec<u8> {
        Message::GatherScalar {
            rank: 1,
            value: 0.5,
        }
        .encode()
    }

    /// Splits a chaos byte stream back into `(kind, seq, inner bytes)`
    /// records.
    fn records(stream: &[u8]) -> Vec<(u8, u64, Vec<u8>)> {
        let mut out = Vec::new();
        let mut at = 0;
        while at < stream.len() {
            let env: [u8; ENVELOPE_LEN] = stream[at..at + ENVELOPE_LEN].try_into().unwrap();
            let (kind, seq, len) = parse_envelope(&env);
            at += ENVELOPE_LEN;
            out.push((kind, seq, stream[at..at + len as usize].to_vec()));
            at += len as usize;
        }
        out
    }

    #[test]
    fn decisions_are_deterministic_and_attempt_sensitive() {
        let rates = FaultRates {
            drop: 0.2,
            duplicate: 0.2,
            delay: 0.2,
            corrupt: 0.2,
            truncate: 0.2,
        };
        let a = FaultPlan::from_rates(7, rates);
        let b = FaultPlan::from_rates(7, rates);
        let mut faulted = 0;
        for seq in 0..200u64 {
            assert_eq!(a.decide(seq, 0), b.decide(seq, 0), "seq {seq} diverged");
            if a.decide(seq, 0).is_some() {
                faulted += 1;
            }
            // Retransmissions always pass clean under first_attempt_only.
            assert_eq!(a.decide(seq, 1), None);
        }
        // Rates sum to 1.0, so essentially every frame should be faulted.
        assert!(faulted > 150, "only {faulted}/200 frames faulted");
    }

    #[test]
    fn clean_plan_is_a_transparent_envelope_writer() {
        let mut sink = Vec::new();
        let stats = std::sync::Arc::new(LinkStats::default());
        let mut link = ChaosLink::new(&mut sink, FaultPlan::clean(), stats.clone());
        link.write_data(0, 0, &frame()).unwrap();
        link.write_ack(1).unwrap();
        let recs = records(&sink);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, ENV_DATA);
        assert_eq!(recs[0].1, 0);
        decode_frame_buf(&recs[0].2).unwrap();
        assert_eq!(recs[1].0, ENV_ACK);
        assert_eq!(recs[1].1, 1);
        assert!(recs[1].2.is_empty());
        assert_eq!(stats.faults(), 0);
    }

    #[test]
    fn drop_swallows_the_record() {
        let mut sink = Vec::new();
        let plan = FaultPlan::scripted(&[(0, FaultKind::Drop)]);
        let stats = std::sync::Arc::new(LinkStats::default());
        let mut link = ChaosLink::new(&mut sink, plan, stats.clone());
        link.write_data(0, 0, &frame()).unwrap();
        link.write_data(1, 0, &frame()).unwrap();
        let recs = records(&sink);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, 1);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn duplicate_writes_the_record_twice() {
        let mut sink = Vec::new();
        let plan = FaultPlan::scripted(&[(0, FaultKind::Duplicate)]);
        let stats = std::sync::Arc::new(LinkStats::default());
        let mut link = ChaosLink::new(&mut sink, plan, stats);
        link.write_data(0, 0, &frame()).unwrap();
        let recs = records(&sink);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], recs[1]);
        decode_frame_buf(&recs[0].2).unwrap();
    }

    #[test]
    fn delay_reorders_by_one_slot() {
        let mut sink = Vec::new();
        let plan = FaultPlan::scripted(&[(0, FaultKind::Delay)]);
        let stats = std::sync::Arc::new(LinkStats::default());
        let mut link = ChaosLink::new(&mut sink, plan, stats);
        link.write_data(0, 0, &frame()).unwrap();
        link.write_data(1, 0, &frame()).unwrap();
        let recs = records(&sink);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].1, 1, "frame 1 jumps ahead");
        assert_eq!(recs[1].1, 0, "frame 0 follows");
        decode_frame_buf(&recs[1].2).unwrap();
    }

    #[test]
    fn corrupt_always_surfaces_as_a_header_validation_error() {
        // Try many seeds: every injected corruption must land in the
        // magic/version bytes and be rejected by the existing checks.
        for seed in 0..64u64 {
            let mut sink = Vec::new();
            let mut plan = FaultPlan::scripted(&[(0, FaultKind::Corrupt)]);
            plan.seed = seed;
            let stats = std::sync::Arc::new(LinkStats::default());
            let mut link = ChaosLink::new(&mut sink, plan, stats);
            link.write_data(0, 0, &frame()).unwrap();
            let recs = records(&sink);
            assert_eq!(recs.len(), 1);
            match decode_frame_buf(&recs[0].2) {
                Err(WireError::BadMagic(_)) | Err(WireError::VersionMismatch { .. }) => {}
                other => panic!("seed {seed}: corrupt frame decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn truncate_always_surfaces_as_truncated() {
        for seed in 0..64u64 {
            let mut sink = Vec::new();
            let mut plan = FaultPlan::scripted(&[(0, FaultKind::Truncate)]);
            plan.seed = seed;
            let stats = std::sync::Arc::new(LinkStats::default());
            let mut link = ChaosLink::new(&mut sink, plan, stats);
            link.write_data(0, 0, &frame()).unwrap();
            let recs = records(&sink);
            assert_eq!(recs.len(), 1);
            assert!(recs[0].2.len() < frame().len());
            match decode_frame_buf(&recs[0].2) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("seed {seed}: truncated frame decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn retransmission_of_a_faulted_seq_passes_clean() {
        let plan = FaultPlan::scripted(&[(0, FaultKind::Drop)]);
        let stats = std::sync::Arc::new(LinkStats::default());
        let mut link = ChaosLink::new(Vec::new(), plan, stats.clone());
        link.write_data(0, 0, &frame()).unwrap();
        assert!(records(link.get_mut()).is_empty());
        link.write_data(0, 1, &frame()).unwrap();
        let recs = records(link.get_mut());
        assert_eq!(recs.len(), 1);
        decode_frame_buf(&recs[0].2).unwrap();
        assert_eq!(stats.retransmits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ack_flushes_a_held_delayed_record() {
        let plan = FaultPlan::scripted(&[(0, FaultKind::Delay)]);
        let stats = std::sync::Arc::new(LinkStats::default());
        let mut link = ChaosLink::new(Vec::new(), plan, stats);
        link.write_data(0, 0, &frame()).unwrap();
        assert!(records(link.get_mut()).is_empty(), "record is held");
        link.write_ack(5).unwrap();
        let recs = records(link.get_mut());
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, ENV_ACK);
        assert_eq!(recs[1].0, ENV_DATA);
        assert_eq!(recs[1].1, 0);
    }
}
