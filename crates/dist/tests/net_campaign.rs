//! The transport-fault campaign end to end: a small policy ×
//! frame-fault-rate × kill/respawn sweep over real worker processes must
//! produce a consistent overhead table.

use std::path::Path;
use std::time::Duration;

use feir_dist::{KillSchedule, NetFaultCampaign, WorkerSolver};
use feir_recovery::RecoveryPolicy;

fn worker() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_feir-rank-worker"))
}

#[test]
fn net_campaign_sweeps_chaos_and_respawn_cells() {
    let campaign = NetFaultCampaign {
        solver: WorkerSolver::Cg,
        policies: vec![RecoveryPolicy::Feir, RecoveryPolicy::Afeir],
        frame_fault_rates: vec![0.0, 0.02],
        schedules: vec![
            KillSchedule::None,
            KillSchedule::KillRespawn {
                rank: 1,
                after: Duration::from_millis(150),
            },
        ],
        grid: 16,
        ranks: 2,
        // Dilates every cell (baseline included) so the kill schedule lands
        // mid-solve; overheads stay comparable because the throttle is
        // uniform.
        spin: Duration::from_millis(5),
        max_iterations: 20_000,
        ..NetFaultCampaign::default()
    };
    let report = campaign.run(worker()).expect("campaign run failed");
    assert!(report.baseline.iterations > 0);
    assert_eq!(report.cells.len(), 2 * 2 * 2);
    for cell in &report.cells {
        assert!(
            cell.converged,
            "{:?} rate {} {:?} did not converge",
            cell.policy, cell.fault_rate, cell.schedule
        );
        assert!(cell.overhead_percent.is_finite());
        // A chaos-free, failure-free cell replays the ideal iteration
        // sequence exactly (bitwise identity), so its iteration overhead is
        // zero; a respawn forces a Krylov restart, which can only add work.
        match cell.schedule {
            KillSchedule::None => {
                assert_eq!(cell.iterations, report.baseline.iterations);
                assert_eq!(cell.iteration_overhead_percent, 0.0);
            }
            KillSchedule::KillRespawn { .. } => {
                assert!(cell.iterations >= report.baseline.iterations);
            }
        }
    }
    let table = report.table();
    assert!(table.contains("FEIR") && table.contains("r1@150ms"));
    assert!(table.lines().count() >= 9);
}

#[test]
fn net_campaign_trivial_replace_smoke_under_chaos() {
    // The cheap hybrid policy over real worker processes: blank-accept plus
    // residual-replacement restart. With no DUEs in the schedule the policy
    // code never fires, so both cells — clean wire and a chaos-injected one
    // the ack/retransmit sublayer absorbs (shipped via FEIR_WORKER_CHAOS) —
    // must replay the ideal iteration sequence exactly.
    let campaign = NetFaultCampaign {
        solver: WorkerSolver::Cg,
        policies: vec![RecoveryPolicy::TrivialReplace],
        frame_fault_rates: vec![0.0, 0.02],
        schedules: vec![KillSchedule::None],
        grid: 16,
        ranks: 2,
        max_iterations: 20_000,
        ..NetFaultCampaign::default()
    };
    let report = campaign.run(worker()).expect("campaign run failed");
    assert_eq!(report.cells.len(), 2);
    for cell in &report.cells {
        assert!(
            cell.converged,
            "TrivialReplace rate {} did not converge",
            cell.fault_rate
        );
        assert_eq!(cell.iterations, report.baseline.iterations);
        assert_eq!(cell.iteration_overhead_percent, 0.0);
    }
    assert!(report.table().contains("triv+rr"));
}

#[test]
fn net_campaign_rejects_a_schedule_targeting_rank_zero() {
    let campaign = NetFaultCampaign {
        schedules: vec![KillSchedule::KillRespawn {
            rank: 0,
            after: Duration::from_millis(10),
        }],
        ..NetFaultCampaign::default()
    };
    assert!(campaign.run(worker()).is_err());
}
