//! Substrate-level validation of the simulated distributed-memory layer:
//! the halo exchange and the allreduce must be *exactly* the serial kernels
//! seen through a different communication pattern.

use feir_dist::{distributed_cg, distributed_dot, distributed_spmv, RankDomains, ScalingModel};
use feir_recovery::RecoveryPolicy;
use feir_sparse::generators::{manufactured_rhs, poisson_2d, poisson_3d_27pt};
use feir_sparse::vecops;

#[test]
fn halo_exchange_round_trip_equals_serial_spmv_on_poisson_2d() {
    let a = poisson_2d(16); // 256 unknowns
    let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut serial = vec![0.0; a.rows()];
    a.spmv(&x, &mut serial);
    for ranks in [1usize, 2, 3, 5, 8, 16] {
        let dist = distributed_spmv(&a, &x, ranks);
        // Each rank computes its rows from exchanged halo values with the
        // same serial kernel, so the result is bitwise identical.
        assert_eq!(dist, serial, "{ranks} ranks");
    }
}

#[test]
fn halo_exchange_round_trip_on_the_27pt_scaling_operator() {
    let a = poisson_3d_27pt(6);
    let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 13) as f64 * 0.1).collect();
    let mut serial = vec![0.0; a.rows()];
    a.spmv(&x, &mut serial);
    let dist = distributed_spmv(&a, &x, 7);
    assert_eq!(dist, serial);
}

#[test]
fn allreduce_matches_serial_dot() {
    let n = 1000;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).cos()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.003).exp_m1()).collect();
    let serial = vecops::dot(&x, &y);
    for ranks in [1usize, 2, 4, 9] {
        let dist = distributed_dot(&x, &y, ranks);
        // Blocked summation reorders the additions, so compare to round-off.
        let tol = 1e-12 * serial.abs().max(1.0);
        assert!(
            (dist - serial).abs() <= tol,
            "{ranks} ranks: {dist} vs {serial}"
        );
        // The rank-ordered reduction is deterministic: repeating the call
        // reproduces the value bitwise.
        assert_eq!(dist, distributed_dot(&x, &y, ranks), "{ranks} ranks");
    }
}

#[test]
fn scaling_model_speedup_is_monotone_in_rank_count() {
    let model = ScalingModel::default();
    for errors in [0usize, 1, 2] {
        for policy in RecoveryPolicy::COMPARED {
            let mut previous = f64::NEG_INFINITY;
            for cores in [64usize, 96, 128, 192, 256, 384, 512, 768, 1024] {
                let s = model.speedup(policy, cores, errors);
                assert!(
                    s > previous,
                    "{} with {errors} errors regressed at {cores} cores",
                    policy.name()
                );
                previous = s;
            }
        }
    }
}

#[test]
fn distributed_cg_converges_on_the_paper_scaling_operator() {
    let a = poisson_3d_27pt(5);
    let (x_true, b) = manufactured_rhs(&a, 27);
    let result = distributed_cg(&a, &b, 4, 1e-10, 10_000);
    assert!(result.converged());
    for (u, v) in result.x.iter().zip(&x_true) {
        assert!((u - v).abs() < 1e-6);
    }
}

#[test]
fn rank_domains_partition_the_fault_space() {
    let domains = RankDomains::new(4);
    for rank in 0..4 {
        domains.register_rank_vectors(rank, &["x", "g", "d", "q"], 8);
    }
    // Inject one page into every rank: counts aggregate, domains stay
    // independent.
    for rank in 0..4 {
        let registry = domains.registry(rank);
        assert!(registry.inject(feir_pagemem::VectorId(0), rank % 8));
        assert_eq!(registry.injected_count(), 1);
    }
    assert_eq!(domains.total_injected(), 4);
    assert!(!domains.all_healthy());
    domains.reset();
    assert!(domains.all_healthy());
}

#[test]
fn split_phase_allreduce_is_bitwise_identical_to_blocking_at_1_2_4_ranks() {
    // The AFEIR overlap relies on start_allreduce/finish producing exactly
    // the value allreduce_sum would: same partials, same rank-ordered
    // accumulation, regardless of how much local work fills the window.
    use feir_dist::{HaloPlan, RankComm};
    for ranks in [1usize, 2, 4] {
        let run = |split: bool| -> Vec<f64> {
            let comms = RankComm::for_ranks(&HaloPlan::empty(ranks), ranks);
            std::thread::scope(|scope| {
                let handles: Vec<_> = comms
                    .into_iter()
                    .map(|comm| {
                        scope.spawn(move || {
                            let mut totals = Vec::new();
                            for round in 0..5 {
                                // Partials whose accumulation order matters.
                                let local = (comm.rank() as f64 + 1.0) * 0.1 + round as f64 * 1e-13;
                                let total = if split {
                                    let pending = comm.start_allreduce(local).unwrap();
                                    // Local work standing in for the page
                                    // reconstruction AFEIR runs inside the
                                    // collective.
                                    let mut acc = 0.0;
                                    for i in 0..200 * (comm.rank() + 1) {
                                        acc += (i as f64).sqrt();
                                    }
                                    assert!(acc >= 0.0);
                                    pending.finish().unwrap()
                                } else {
                                    comm.allreduce_sum(local).unwrap()
                                };
                                totals.push(total);
                            }
                            totals
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("rank panicked"))
                    .collect()
            })
        };
        let blocking = run(false);
        let split = run(true);
        assert_eq!(blocking.len(), split.len());
        for (u, v) in blocking.iter().zip(&split) {
            assert_eq!(u.to_bits(), v.to_bits(), "{ranks} ranks: {u:e} vs {v:e}");
        }
    }
}
