//! Integration tests of the distributed resilience subsystem: zero-fault
//! bitwise identity with the plain distributed CG, the full policy matrix
//! under injected DUEs, cross-boundary interpolation against the
//! shared-memory `BlockRecovery`, and live per-rank injection streams.

use std::time::Duration;

use feir_dist::resilient::{recover_direction_rows, recover_iterate_rows};
use feir_dist::{
    distributed_cg, distributed_resilient_cg, DistResilienceConfig, DistResilientCg,
    InjectionDriver, ProtectedVector, ScriptedFault,
};
use feir_pagemem::InjectionPlan;
use feir_recovery::{BlockRecovery, RecoveryPolicy};
use feir_sparse::blocking::BlockPartition;
use feir_sparse::generators::{manufactured_rhs, poisson_2d};
use feir_sparse::CsrMatrix;

const TOL: f64 = 1e-10;

fn config(policy: RecoveryPolicy) -> DistResilienceConfig {
    DistResilienceConfig::for_policy(policy)
        .with_page_doubles(16)
        .with_tolerance(TOL)
        .with_max_iterations(20_000)
}

#[test]
fn zero_fault_run_is_bitwise_identical_to_distributed_cg() {
    let a = poisson_2d(14);
    let (_, b) = manufactured_rhs(&a, 11);
    for ranks in [1usize, 2, 3, 5] {
        let plain = distributed_cg(&a, &b, ranks, TOL, 20_000);
        for policy in [
            RecoveryPolicy::Ideal,
            RecoveryPolicy::Feir,
            RecoveryPolicy::Afeir,
            RecoveryPolicy::Trivial,
            RecoveryPolicy::TrivialReplace,
            RecoveryPolicy::Checkpoint { interval: 25 },
            RecoveryPolicy::LossyRestart,
        ] {
            let resilient = distributed_resilient_cg(&a, &b, ranks, config(policy));
            assert_eq!(
                resilient.iterations, plain.iterations,
                "{policy:?} at {ranks} ranks changed the iteration count"
            );
            assert_eq!(
                resilient.residual_history.len(),
                plain.residual_history.len(),
                "{policy:?} at {ranks} ranks changed the history length"
            );
            for (i, (u, v)) in resilient
                .residual_history
                .iter()
                .zip(&plain.residual_history)
                .enumerate()
            {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{policy:?} at {ranks} ranks: history[{i}] {u:e} != {v:e}"
                );
            }
            for (i, (u, v)) in resilient.x.iter().zip(&plain.x).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{policy:?} at {ranks} ranks: x[{i}] {u:e} != {v:e}"
                );
            }
            assert_eq!(resilient.faults.total_injected(), 0);
            assert_eq!(resilient.pages_recovered, 0);
            assert_eq!(resilient.cross_rank_values, 0);
        }
    }
}

/// Scripted DUEs on the direction and matvec product: every policy in the
/// matrix must still converge to tolerance (these losses perturb the Krylov
/// space but never break the `g = b − A·x` invariant).
#[test]
fn policy_matrix_converges_under_scripted_dues() {
    let a = poisson_2d(15);
    let (x_true, b) = manufactured_rhs(&a, 4);
    let ranks = 3;
    let faults = vec![
        ScriptedFault {
            iteration: 3,
            rank: 0,
            vector: ProtectedVector::D,
            page: 1,
        },
        ScriptedFault {
            iteration: 6,
            rank: 2,
            vector: ProtectedVector::Q,
            page: 0,
        },
        ScriptedFault {
            iteration: 9,
            rank: 1,
            vector: ProtectedVector::D,
            page: 2,
        },
    ];
    let ideal = distributed_resilient_cg(&a, &b, ranks, config(RecoveryPolicy::Ideal));
    assert!(ideal.converged);
    for policy in [
        RecoveryPolicy::Feir,
        RecoveryPolicy::Afeir,
        RecoveryPolicy::Trivial,
        RecoveryPolicy::TrivialReplace,
        RecoveryPolicy::Checkpoint { interval: 4 },
        RecoveryPolicy::LossyRestart,
    ] {
        let report = distributed_resilient_cg(
            &a,
            &b,
            ranks,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert!(
            report.converged,
            "{policy:?} did not converge: residual {}",
            report.relative_residual
        );
        assert_eq!(report.faults.total_injected(), 3, "{policy:?}");
        assert!(report.faults.total_discovered() >= 1, "{policy:?}");
        assert_eq!(report.faults.faulty_ranks(), 3, "{policy:?}");
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "{policy:?}: solution error {err}");
        match policy {
            RecoveryPolicy::Feir | RecoveryPolicy::Afeir => {
                assert!(report.pages_recovered >= 3, "{policy:?} recovered nothing");
                // Exact forward recovery must not disturb convergence.
                assert!(
                    report.iterations <= ideal.iterations + 2,
                    "{policy:?}: {} vs ideal {}",
                    report.iterations,
                    ideal.iterations
                );
            }
            RecoveryPolicy::Checkpoint { .. } => {
                assert!(report.rollbacks >= 1, "checkpoint policy never rolled back")
            }
            RecoveryPolicy::LossyRestart => {
                assert!(report.restarts >= 1, "lossy policy never restarted")
            }
            RecoveryPolicy::TrivialReplace => {
                // The hybrid blank-accepts like Trivial but repairs the
                // residual invariant, so it both restarts and keeps the
                // convergence guarantee.
                assert!(report.restarts >= 1, "triv+rr never restarted");
                assert!(report.pages_ignored >= 3, "triv+rr must blank-accept");
            }
            _ => {}
        }
    }
}

/// Losing iterate and residual pages exercises the cross-rank recovery
/// protocol: the interpolation of a boundary page needs x entries owned by
/// the neighbouring rank, which are only reachable through `RecoveryMsg`.
#[test]
fn feir_and_afeir_recover_iterate_losses_across_rank_boundaries() {
    let a = poisson_2d(16);
    let (x_true, b) = manufactured_rhs(&a, 9);
    let ranks = 2;
    // Page 0 of rank 1's x spans the first rows it owns: its 5-point stencil
    // reaches into rank 0's rows, so the recovery must fetch across the
    // boundary.
    let faults = vec![
        ScriptedFault {
            iteration: 4,
            rank: 1,
            vector: ProtectedVector::X,
            page: 0,
        },
        ScriptedFault {
            iteration: 8,
            rank: 0,
            vector: ProtectedVector::G,
            page: 7,
        },
    ];
    let ideal = distributed_resilient_cg(&a, &b, ranks, config(RecoveryPolicy::Ideal));
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = distributed_resilient_cg(
            &a,
            &b,
            ranks,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert!(report.converged, "{policy:?} did not converge");
        assert!(
            report.iterations <= ideal.iterations + 2,
            "{policy:?}: exact recovery changed convergence ({} vs {})",
            report.iterations,
            ideal.iterations
        );
        assert!(report.pages_recovered >= 2, "{policy:?}");
        assert!(
            report.cross_rank_values > 0,
            "{policy:?} never used the cross-rank recovery protocol"
        );
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "{policy:?}: solution error {err}");
    }
}

/// The cross-rank row recovery must agree with the shared-memory
/// `BlockRecovery` interpolation to round-off on an aligned partition.
#[test]
fn cross_boundary_interpolation_matches_shared_memory_block_recovery() {
    let a = poisson_2d(16); // n = 256
    let n = a.rows();
    let block_size = 32;
    // With 2 ranks the boundary sits at row 128, which is block-aligned, so
    // global block 4 (rows 128..160) is exactly rank 1's first local page and
    // its stencil crosses the rank boundary.
    let partition = BlockPartition::new(n, block_size);
    let recovery = BlockRecovery::new(&a, partition, true);
    let (x_exact, b) = manufactured_rhs(&a, 3);
    // A partially converged iterate with a consistent residual g = b − A·x.
    let x: Vec<f64> = x_exact
        .iter()
        .enumerate()
        .map(|(i, v)| v + 0.01 * ((i * 13 % 7) as f64 - 3.0))
        .collect();
    let mut g = vec![0.0; n];
    a.spmv(&x, &mut g);
    for (gi, bi) in g.iter_mut().zip(&b) {
        *gi = bi - *gi;
    }
    let block = 4;
    let range = partition.range(block);
    let rows: Vec<usize> = range.clone().collect();

    // Iterate recovery: blank the block, recover through both paths.
    let mut damaged = x.clone();
    for v in &mut damaged[range.clone()] {
        *v = 0.0;
    }
    let mut shared = vec![0.0; range.len()];
    assert!(recovery.recover_iterate_rhs(&a, &b, &g, &damaged, block, &mut shared));
    let g_at_rows: Vec<f64> = range.clone().map(|r| g[r]).collect();
    let dist = recover_iterate_rows(&a, &b, &g_at_rows, &rows, &damaged)
        .expect("cross-rank iterate recovery failed");
    for (k, r) in range.clone().enumerate() {
        assert!(
            (dist[k] - shared[k]).abs() <= 1e-10 * (1.0 + shared[k].abs()),
            "row {r}: distributed {} vs shared-memory {}",
            dist[k],
            shared[k]
        );
        assert!(
            (dist[k] - x[r]).abs() < 1e-8,
            "row {r}: recovered {} vs true {}",
            dist[k],
            x[r]
        );
    }

    // Direction recovery: same comparison through the inverse matvec
    // relation q = A·d.
    let d = x_exact.clone();
    let mut q = vec![0.0; n];
    a.spmv(&d, &mut q);
    let mut d_damaged = d.clone();
    for v in &mut d_damaged[range.clone()] {
        *v = f64::NAN; // recovery must not read the lost block
    }
    let mut shared_d = vec![0.0; range.len()];
    assert!(recovery.recover_matvec_rhs(&a, &q, &d_damaged, block, &mut shared_d));
    let q_at_rows: Vec<f64> = range.clone().map(|r| q[r]).collect();
    let dist_d = recover_direction_rows(&a, &q_at_rows, &rows, &d_damaged)
        .expect("cross-rank direction recovery failed");
    for (k, r) in range.clone().enumerate() {
        assert!(
            (dist_d[k] - shared_d[k]).abs() <= 1e-10 * (1.0 + shared_d[k].abs()),
            "row {r}: distributed {} vs shared-memory {}",
            dist_d[k],
            shared_d[k]
        );
    }
}

/// Simultaneous losses spanning several pages of one rank go through the
/// coupled multi-row solve and still recover exactly.
#[test]
fn coupled_multi_page_recovery_is_exact() {
    let a = poisson_2d(16);
    let n = a.rows();
    let partition = BlockPartition::new(n, 32);
    let (x_exact, b) = manufactured_rhs(&a, 21);
    let x: Vec<f64> = x_exact.iter().map(|v| 0.93 * v + 0.01).collect();
    let mut g = vec![0.0; n];
    a.spmv(&x, &mut g);
    for (gi, bi) in g.iter_mut().zip(&b) {
        *gi = bi - *gi;
    }
    // Two adjacent blocks lost at once.
    let rows: Vec<usize> = partition.range(2).chain(partition.range(3)).collect();
    let mut damaged = x.clone();
    for &r in &rows {
        damaged[r] = 0.0;
    }
    let g_at_rows: Vec<f64> = rows.iter().map(|&r| g[r]).collect();
    let recovered =
        recover_iterate_rows(&a, &b, &g_at_rows, &rows, &damaged).expect("coupled recovery failed");
    for (k, &r) in rows.iter().enumerate() {
        assert!(
            (recovered[k] - x[r]).abs() < 1e-8,
            "row {r}: {} vs {}",
            recovered[k],
            x[r]
        );
    }
}

/// Live per-rank injector streams (the paper's exponential error process)
/// against AFEIR: the solve converges and the unified report attributes the
/// faults to the ranks that absorbed them.
#[test]
fn live_injection_streams_are_attributed_per_rank() {
    let a = poisson_2d(20);
    let (_, b) = manufactured_rhs(&a, 2);
    let ranks = 3;
    let solver = DistResilientCg::new(&a, &b, ranks, config(RecoveryPolicy::Afeir));
    let driver = InjectionDriver::start_uniform(
        solver.domains(),
        &InjectionPlan::Exponential {
            mtbe: Duration::from_millis(3),
            seed: 77,
        },
    );
    assert_eq!(driver.num_ranks(), ranks);
    let mut report = solver.solve();
    report.absorb_injection_reports(&driver.stop());
    assert!(
        report.converged,
        "AFEIR failed to converge under live injection: residual {}",
        report.relative_residual
    );
    assert_eq!(report.faults.per_rank.len(), ranks);
    // Every effective injection is one of the recorded attempts, and the
    // registry totals match the per-rank breakdown.
    assert!(report.faults.total_injected() <= report.faults.total_attempted());
    assert!(report.faults.total_discovered() <= report.faults.total_injected());
    let per_rank_sum: usize = report.faults.per_rank.iter().map(|s| s.injected).sum();
    assert_eq!(per_rank_sum, report.faults.total_injected());
}

/// A heavier deterministic storm: several pages of every vector across every
/// rank, forward policies must still converge with exact accuracy.
#[test]
fn feir_survives_a_multi_vector_fault_storm() {
    let a = poisson_2d(15);
    let (x_true, b) = manufactured_rhs(&a, 6);
    let ranks = 3;
    let mut faults = Vec::new();
    for (i, vector) in [
        ProtectedVector::X,
        ProtectedVector::G,
        ProtectedVector::D,
        ProtectedVector::Q,
    ]
    .into_iter()
    .enumerate()
    {
        for rank in 0..ranks {
            faults.push(ScriptedFault {
                iteration: 2 + 3 * i + rank,
                rank,
                vector,
                page: rank % 3,
            });
        }
    }
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = distributed_resilient_cg(
            &a,
            &b,
            ranks,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert!(report.converged, "{policy:?} did not converge");
        assert_eq!(report.faults.faulty_ranks(), ranks);
        assert!(report.pages_recovered >= 8, "{policy:?}");
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "{policy:?}: solution error {err}");
    }
}

/// Sanity: a singular-free matrix and a fault on the very first iteration
/// (the blank *is* the correct initial state).
#[test]
fn faults_before_and_at_iteration_zero_are_harmless() {
    let a: CsrMatrix = poisson_2d(10);
    let (_, b) = manufactured_rhs(&a, 1);
    let solver = DistResilientCg::new(&a, &b, 2, config(RecoveryPolicy::Feir));
    // Pre-solve injection into x and d of rank 0.
    let registry = solver.domains().registry(0);
    registry.inject(ProtectedVector::X.id(), 0);
    registry.inject(ProtectedVector::D.id(), 1);
    let report = solver.solve();
    assert!(report.converged);
    let with_t0 = distributed_resilient_cg(
        &a,
        &b,
        2,
        config(RecoveryPolicy::Afeir).with_scripted_faults(vec![ScriptedFault {
            iteration: 0,
            rank: 1,
            vector: ProtectedVector::D,
            page: 0,
        }]),
    );
    assert!(with_t0.converged);
}

// ---- PR 4: the engine-based PCG instantiation and split-phase AFEIR -------

#[test]
fn zero_fault_pcg_run_is_bitwise_identical_to_distributed_pcg() {
    let a = poisson_2d(14);
    let (_, b) = manufactured_rhs(&a, 8);
    for ranks in [1usize, 2, 4] {
        let plain = feir_dist::distributed_pcg(&a, &b, ranks, 16, TOL, 20_000);
        assert!(plain.converged(), "plain PCG at {ranks} ranks");
        for policy in [
            RecoveryPolicy::Ideal,
            RecoveryPolicy::Feir,
            RecoveryPolicy::Afeir,
            RecoveryPolicy::Trivial,
            RecoveryPolicy::TrivialReplace,
            RecoveryPolicy::Checkpoint { interval: 25 },
            RecoveryPolicy::LossyRestart,
        ] {
            let resilient = feir_dist::distributed_resilient_pcg(&a, &b, ranks, config(policy));
            assert_eq!(resilient.solver, "pcg");
            assert_eq!(
                resilient.iterations, plain.iterations,
                "{policy:?} at {ranks} ranks changed the PCG iteration count"
            );
            assert_eq!(
                resilient.residual_history.len(),
                plain.residual_history.len(),
                "{policy:?} at {ranks} ranks changed the history length"
            );
            for (i, (u, v)) in resilient
                .residual_history
                .iter()
                .zip(&plain.residual_history)
                .enumerate()
            {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{policy:?} at {ranks} ranks: history[{i}] {u:e} != {v:e}"
                );
            }
            for (i, (u, v)) in resilient.x.iter().zip(&plain.x).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{policy:?} at {ranks} ranks: x[{i}] {u:e} != {v:e}"
                );
            }
            assert_eq!(resilient.faults.total_injected(), 0);
            assert_eq!(resilient.pages_recovered, 0);
            assert_eq!(resilient.cross_rank_values, 0);
        }
    }
}

/// Scripted DUEs across every protected vector of the PCG — including the
/// preconditioned residual `z`, recovered by re-solving the block-Jacobi
/// coupled system — must leave FEIR/AFEIR converging to the same tolerance
/// as the fault-free run with undisturbed convergence.
#[test]
fn pcg_policy_matrix_converges_under_scripted_dues() {
    let a = poisson_2d(15);
    let (x_true, b) = manufactured_rhs(&a, 13);
    let ranks = 3;
    let faults = vec![
        ScriptedFault {
            iteration: 2,
            rank: 0,
            vector: ProtectedVector::D,
            page: 1,
        },
        ScriptedFault {
            iteration: 4,
            rank: 1,
            vector: ProtectedVector::Z,
            page: 0,
        },
        ScriptedFault {
            iteration: 6,
            rank: 2,
            vector: ProtectedVector::X,
            page: 0,
        },
        ScriptedFault {
            iteration: 8,
            rank: 1,
            vector: ProtectedVector::G,
            page: 2,
        },
    ];
    let ideal = feir_dist::distributed_resilient_pcg(&a, &b, ranks, config(RecoveryPolicy::Ideal));
    assert!(ideal.converged);
    for policy in [
        RecoveryPolicy::Feir,
        RecoveryPolicy::Afeir,
        RecoveryPolicy::Trivial,
        RecoveryPolicy::TrivialReplace,
        RecoveryPolicy::Checkpoint { interval: 4 },
        RecoveryPolicy::LossyRestart,
    ] {
        let report = feir_dist::distributed_resilient_pcg(
            &a,
            &b,
            ranks,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert_eq!(report.faults.total_injected(), 4, "{policy:?}");
        if policy == RecoveryPolicy::Trivial {
            // Blanking an iterate page breaks the g = b − A·x invariant:
            // trivial recovery loses its convergence guarantee (Section 4.1)
            // but must stay finite and terminate.
            assert!(report.x.iter().all(|v| v.is_finite()), "trivial PCG NaN");
            continue;
        }
        assert!(
            report.converged,
            "PCG {policy:?} did not converge: residual {}",
            report.relative_residual
        );
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "PCG {policy:?}: solution error {err}");
        if policy.is_forward_exact() {
            assert!(report.pages_recovered >= 4, "{policy:?} recovered too few");
            // Exact forward recovery must not disturb convergence: same
            // tolerance, essentially the fault-free iteration count.
            assert!(
                report.iterations <= ideal.iterations + 2,
                "PCG {policy:?}: {} vs ideal {}",
                report.iterations,
                ideal.iterations
            );
        }
    }
}

/// A cross-boundary iterate loss under PCG exercises the same RecoveryMsg
/// protocol as CG: the engine relations are solver-agnostic.
#[test]
fn pcg_recovers_iterate_losses_across_rank_boundaries() {
    let a = poisson_2d(16);
    let (_, b) = manufactured_rhs(&a, 5);
    let faults = vec![ScriptedFault {
        iteration: 4,
        rank: 1,
        vector: ProtectedVector::X,
        page: 0,
    }];
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = feir_dist::distributed_resilient_pcg(
            &a,
            &b,
            2,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert!(report.converged, "{policy:?}");
        assert!(
            report.cross_rank_values > 0,
            "{policy:?} never fetched across the rank boundary"
        );
    }
}

/// The engine-based loop (and the split-phase AFEIR overlap) must be exactly
/// reproducible: the same scripted faults give bit-for-bit the same solve,
/// run after run — the property the policy-matrix experiments rely on.
#[test]
fn engine_based_solvers_are_bitwise_deterministic_under_scripted_faults() {
    let a = poisson_2d(13);
    let (_, b) = manufactured_rhs(&a, 6);
    let ranks = 3;
    let faults = vec![
        ScriptedFault {
            iteration: 3,
            rank: 0,
            vector: ProtectedVector::X,
            page: 1,
        },
        ScriptedFault {
            iteration: 5,
            rank: 2,
            vector: ProtectedVector::G,
            page: 0,
        },
        ScriptedFault {
            iteration: 7,
            rank: 1,
            vector: ProtectedVector::D,
            page: 2,
        },
    ];
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let run_cg = || {
            distributed_resilient_cg(
                &a,
                &b,
                ranks,
                config(policy).with_scripted_faults(faults.clone()),
            )
        };
        let first = run_cg();
        let second = run_cg();
        assert!(first.converged, "{policy:?}");
        assert_eq!(first.iterations, second.iterations, "{policy:?}");
        assert_eq!(first.pages_recovered, second.pages_recovered);
        for (u, v) in first.x.iter().zip(&second.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "{policy:?} x not reproducible");
        }
        for (u, v) in first.residual_history.iter().zip(&second.residual_history) {
            assert_eq!(u.to_bits(), v.to_bits(), "{policy:?} history differs");
        }
        let run_pcg = || {
            feir_dist::distributed_resilient_pcg(
                &a,
                &b,
                ranks,
                config(policy).with_scripted_faults(faults.clone()),
            )
        };
        let p1 = run_pcg();
        let p2 = run_pcg();
        assert!(p1.converged, "PCG {policy:?}");
        for (u, v) in p1.x.iter().zip(&p2.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "PCG {policy:?} not reproducible");
        }
    }
}

/// A scripted fault against `z` on the plain CG solver (which has no `z`)
/// must be rejected loudly instead of silently never firing.
#[test]
#[should_panic(expected = "does not protect")]
fn z_faults_are_rejected_by_the_unpreconditioned_solver() {
    let a = poisson_2d(8);
    let (_, b) = manufactured_rhs(&a, 1);
    let _ = distributed_resilient_cg(
        &a,
        &b,
        2,
        config(RecoveryPolicy::Feir).with_scripted_faults(vec![ScriptedFault {
            iteration: 0,
            rank: 0,
            vector: ProtectedVector::Z,
            page: 0,
        }]),
    );
}

/// A DUE on the preconditioned residual must not be a free exact recovery
/// for the baseline policies: checkpoint rolls back, trivial blank-accepts,
/// while FEIR re-solves the block system in place with no lost iterations.
#[test]
fn z_faults_pay_each_policy_its_own_price() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 2);
    let fault = vec![ScriptedFault {
        iteration: 5,
        rank: 1,
        vector: ProtectedVector::Z,
        page: 0,
    }];
    let ideal = feir_dist::distributed_resilient_pcg(&a, &b, 2, config(RecoveryPolicy::Ideal));

    let feir = feir_dist::distributed_resilient_pcg(
        &a,
        &b,
        2,
        config(RecoveryPolicy::Feir).with_scripted_faults(fault.clone()),
    );
    assert!(feir.converged);
    assert_eq!(feir.iterations, ideal.iterations, "FEIR z recovery is free");
    assert!(feir.pages_recovered >= 1);

    let ckpt = feir_dist::distributed_resilient_pcg(
        &a,
        &b,
        2,
        config(RecoveryPolicy::Checkpoint { interval: 3 }).with_scripted_faults(fault.clone()),
    );
    assert!(ckpt.converged);
    assert!(
        ckpt.rollbacks >= 1,
        "checkpoint policy must roll back on a z DUE"
    );

    let trivial = feir_dist::distributed_resilient_pcg(
        &a,
        &b,
        2,
        config(RecoveryPolicy::Trivial).with_scripted_faults(fault),
    );
    assert!(
        trivial.pages_ignored >= 1,
        "trivial policy must blank-accept the z page"
    );
    assert!(trivial.x.iter().all(|v| v.is_finite()));
}

/// Two ranks losing stencil-adjacent iterate pages in the *same* iteration
/// is the cross-rank form of the paper's "related data" case: each rank's
/// reconstruction alone would read the other's post-scrub blanks, and up to
/// PR 9 this was honestly blank-accepted. The coupled cross-rank exchange
/// now gathers the union of the lost rows onto the boundary's lowest owner,
/// solves `A_UU x_U = b_U − g_U − Σ A_Uc x_c` once, and ships the entries
/// back — an *exact* reconstruction with `pages_ignored == 0`.
#[test]
fn simultaneous_cross_rank_x_losses_reconstruct_exactly() {
    let a = poisson_2d(16);
    let (x_true, b) = manufactured_rhs(&a, 9);
    // Rank 0's last page and rank 1's first page share a 5-point stencil
    // boundary; both are lost at iteration 4.
    let faults = vec![
        ScriptedFault {
            iteration: 4,
            rank: 0,
            vector: ProtectedVector::X,
            page: 7,
        },
        ScriptedFault {
            iteration: 4,
            rank: 1,
            vector: ProtectedVector::X,
            page: 0,
        },
    ];
    let ideal = distributed_resilient_cg(&a, &b, 2, config(RecoveryPolicy::Ideal));
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = distributed_resilient_cg(
            &a,
            &b,
            2,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert_eq!(report.pages_ignored, 0, "{policy:?} blank-accepted");
        assert!(report.pages_recovered >= 2, "{policy:?}");
        assert_eq!(
            report.pages_coupled, 2,
            "{policy:?} did not use the coupled cross-rank round"
        );
        assert!(report.cross_rank_values > 0, "{policy:?}");
        assert!(report.converged, "{policy:?} did not converge");
        assert!(
            report.iterations <= ideal.iterations + 2,
            "{policy:?}: exact coupled recovery changed convergence ({} vs {})",
            report.iterations,
            ideal.iterations
        );
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "{policy:?}: solution error {err}");
    }
}

/// The coupled round across the policy × solver × rank-count grid: adjacent
/// boundary losses reconstruct exactly (`pages_ignored == 0`) for CG and
/// PCG at 2 and 4 ranks, and the whole faulty solve is bitwise
/// run-to-run deterministic.
#[test]
fn coupled_cross_rank_recovery_spans_solvers_and_rank_counts() {
    let a = poisson_2d(16);
    let (x_true, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        // The two pages flanking the rank-0/rank-1 boundary: rank 0's last
        // page and rank 1's first (pages are 16 rows at 16 doubles/page).
        let last_page_r0 = 256 / ranks / 16 - 1;
        let faults = vec![
            ScriptedFault {
                iteration: 4,
                rank: 0,
                vector: ProtectedVector::X,
                page: last_page_r0,
            },
            ScriptedFault {
                iteration: 4,
                rank: 1,
                vector: ProtectedVector::X,
                page: 0,
            },
        ];
        for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
            for pcg in [false, true] {
                let run = || {
                    let cfg = config(policy).with_scripted_faults(faults.clone());
                    if pcg {
                        feir_dist::distributed_resilient_pcg(&a, &b, ranks, cfg)
                    } else {
                        distributed_resilient_cg(&a, &b, ranks, cfg)
                    }
                };
                let report = run();
                let tag = format!("{policy:?}/pcg={pcg}/{ranks} ranks");
                assert_eq!(report.pages_ignored, 0, "{tag} blank-accepted");
                assert_eq!(report.pages_coupled, 2, "{tag}");
                assert!(report.converged, "{tag} did not converge");
                let err: f64 = report
                    .x
                    .iter()
                    .zip(&x_true)
                    .map(|(u, v)| (u - v) * (u - v))
                    .sum::<f64>()
                    .sqrt();
                assert!(err < 1e-6, "{tag}: solution error {err}");
                let second = run();
                assert_eq!(report.iterations, second.iterations, "{tag}");
                for (u, v) in report.x.iter().zip(&second.x) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{tag} not reproducible");
                }
            }
        }
    }
}

/// A loss chain spanning *three* ranks: every page of the middle rank plus
/// the flanking boundary pages of its neighbours. The gather wave hops the
/// union through the middle rank (ranks 0 and 2 are not even halo peers),
/// the lowest owner solves the 96-row union, and the result wave walks it
/// back up.
#[test]
fn coupled_recovery_chains_across_three_ranks() {
    let a = poisson_2d(16);
    let (x_true, b) = manufactured_rhs(&a, 7);
    let ranks = 4; // 64 rows per rank, 4 pages of 16 rows each
    let mut faults = vec![ScriptedFault {
        iteration: 5,
        rank: 0,
        vector: ProtectedVector::X,
        page: 3,
    }];
    for page in 0..4 {
        faults.push(ScriptedFault {
            iteration: 5,
            rank: 1,
            vector: ProtectedVector::X,
            page,
        });
    }
    faults.push(ScriptedFault {
        iteration: 5,
        rank: 2,
        vector: ProtectedVector::X,
        page: 0,
    });
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = distributed_resilient_cg(
            &a,
            &b,
            ranks,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert_eq!(report.pages_ignored, 0, "{policy:?} blank-accepted");
        assert_eq!(report.pages_coupled, 6, "{policy:?}");
        assert!(report.converged, "{policy:?} did not converge");
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "{policy:?}: solution error {err}");
    }
}

/// Regression: the coupled round must stay honest. When the neighbour's
/// boundary page also loses its residual block, that page is conflicted —
/// it cannot join the union, the union's support stays invalid on every
/// rank, and *both* sides must blank-accept instead of solving on garbage.
#[test]
fn coupled_round_blank_accepts_when_a_residual_block_is_also_lost() {
    let a = poisson_2d(16);
    let (_, b) = manufactured_rhs(&a, 9);
    let faults = vec![
        ScriptedFault {
            iteration: 4,
            rank: 0,
            vector: ProtectedVector::X,
            page: 7,
        },
        ScriptedFault {
            iteration: 4,
            rank: 1,
            vector: ProtectedVector::X,
            page: 0,
        },
        ScriptedFault {
            iteration: 4,
            rank: 1,
            vector: ProtectedVector::G,
            page: 0,
        },
    ];
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = distributed_resilient_cg(
            &a,
            &b,
            2,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert_eq!(
            report.pages_coupled, 0,
            "{policy:?} coupled-solved against a lost residual block"
        );
        assert_eq!(
            report.pages_recovered, 0,
            "{policy:?} claimed an exact recovery built on a neighbour's blanks"
        );
        assert!(report.pages_ignored >= 3, "{policy:?} must blank-accept");
        assert!(report.x.iter().all(|v| v.is_finite()), "{policy:?}");
        assert!(
            report.converged || report.relative_residual > TOL,
            "{policy:?} inconsistent report"
        );
    }
}

/// The blank taint must propagate *transitively*: when a conflicted page
/// poisons its neighbour, a further page adjacent to that neighbour is just
/// as unrecoverable, and must not be "exactly" reconstructed from the
/// neighbour's post-scrub blanks.
#[test]
fn blank_taint_propagates_transitively_through_adjacent_lost_pages() {
    let a = poisson_2d(16);
    let (_, b) = manufactured_rhs(&a, 9);
    // Single rank: pages 4..=6 of x lost together, page 6 also loses g
    // (conflicted). Page 5 touches page 6's rows, page 4 touches page 5's —
    // the whole chain is unrecoverable.
    let faults = vec![
        ScriptedFault {
            iteration: 4,
            rank: 0,
            vector: ProtectedVector::X,
            page: 4,
        },
        ScriptedFault {
            iteration: 4,
            rank: 0,
            vector: ProtectedVector::X,
            page: 5,
        },
        ScriptedFault {
            iteration: 4,
            rank: 0,
            vector: ProtectedVector::X,
            page: 6,
        },
        ScriptedFault {
            iteration: 4,
            rank: 0,
            vector: ProtectedVector::G,
            page: 6,
        },
    ];
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = distributed_resilient_cg(
            &a,
            &b,
            1,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert_eq!(
            report.pages_recovered, 0,
            "{policy:?} reconstructed a page from a transitively tainted neighbour"
        );
        assert!(report.pages_ignored >= 4, "{policy:?}");
        assert!(report.x.iter().all(|v| v.is_finite()), "{policy:?}");
    }
}
