//! Integration tests of the merged-reduction (pipelined Chronopoulos–Gear)
//! distributed solvers: the one-allreduce-per-iteration contract, iteration
//! parity with the classic loops, fault-free bitwise identity between the
//! plain and resilient merged paths, and the recovery policy matrix on the
//! merged recurrences.

use feir_dist::{
    distributed_cg, distributed_cg_merged, distributed_pcg, distributed_pcg_merged,
    distributed_resilient_cg_merged, distributed_resilient_pcg_merged, DistResilienceConfig,
    ProtectedVector, ScriptedFault,
};
use feir_recovery::RecoveryPolicy;
use feir_sparse::generators::{manufactured_rhs, poisson_2d, poisson_3d_27pt};

const TOL: f64 = 1e-10;

fn config(policy: RecoveryPolicy) -> DistResilienceConfig {
    DistResilienceConfig::for_policy(policy)
        .with_page_doubles(16)
        .with_tolerance(TOL)
        .with_max_iterations(20_000)
}

fn assert_iterations_close(merged: usize, classic: usize, label: &str) {
    let tolerance = (classic as f64 * 0.10).ceil() as i64 + 1;
    let diff = (merged as i64 - classic as i64).abs();
    assert!(
        diff <= tolerance,
        "{label}: merged {merged} vs classic {classic} iterations (allowed ±{tolerance})"
    );
}

/// The headline contract of the merged hot path: exactly one collective per
/// iteration (plus the setup ‖b‖ reduction), at every rank count, for both
/// merged solvers — versus two/three for the classic loops.
#[test]
fn merged_solvers_issue_exactly_one_allreduce_per_iteration() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [1usize, 2, 4] {
        let cg_m = distributed_cg_merged(&a, &b, ranks, TOL, 20_000);
        assert!(cg_m.converged());
        assert_eq!(
            cg_m.allreduces,
            cg_m.residual_history.len() as u64 + 1,
            "merged CG at {ranks} ranks"
        );
        let pcg_m = distributed_pcg_merged(&a, &b, ranks, 16, TOL, 20_000);
        assert!(pcg_m.converged());
        assert_eq!(
            pcg_m.allreduces,
            pcg_m.residual_history.len() as u64 + 1,
            "merged PCG at {ranks} ranks"
        );
        // Classic loops for contrast: 2 (CG) / 3 (PCG) collectives per
        // iteration plus the two setup reductions.
        let cg_c = distributed_cg(&a, &b, ranks, TOL, 20_000);
        assert_eq!(cg_c.allreduces, 2 * cg_c.iterations as u64 + 2);
        let pcg_c = distributed_pcg(&a, &b, ranks, 16, TOL, 20_000);
        assert_eq!(pcg_c.allreduces, 3 * pcg_c.iterations as u64 + 2);
    }
}

/// The merged resilient solvers keep the single collective per iteration on
/// their fault-free forward paths: the fault flag rides inside the vector
/// allreduce instead of paying a second synchronization.
#[test]
fn merged_resilient_forward_paths_keep_one_allreduce_per_iteration() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 5);
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = distributed_resilient_cg_merged(&a, &b, 3, config(policy));
        assert!(report.converged);
        assert_eq!(
            report.allreduces,
            report.residual_history.len() as u64 + 1,
            "{policy:?}"
        );
        let report = distributed_resilient_pcg_merged(&a, &b, 3, config(policy));
        assert!(report.converged);
        assert_eq!(
            report.allreduces,
            report.residual_history.len() as u64 + 1,
            "PCG {policy:?}"
        );
    }
}

/// Merged CG matches classic CG iteration counts within ±10% on the 2-D
/// Poisson operator and the paper's Figure-5 (27-point 3-D) operator.
#[test]
fn merged_iteration_counts_match_classic_within_ten_percent() {
    let poisson = poisson_2d(16);
    let (_, b2) = manufactured_rhs(&poisson, 7);
    let fig5 = poisson_3d_27pt(7);
    let (_, b3) = manufactured_rhs(&fig5, 3);
    for (label, a, b) in [("poisson_2d", &poisson, &b2), ("fig5_27pt", &fig5, &b3)] {
        for ranks in [1usize, 2, 4] {
            let classic = distributed_cg(a, b, ranks, 1e-8, 20_000);
            let merged = distributed_cg_merged(a, b, ranks, 1e-8, 20_000);
            assert!(classic.converged() && merged.converged(), "{label}");
            assert_iterations_close(
                merged.iterations,
                classic.iterations,
                &format!("{label} at {ranks} ranks"),
            );
        }
    }
}

/// Fault-free runs of the merged resilient solvers are bitwise-identical to
/// the plain merged loops at 1, 2 and 4 ranks, for every policy — the same
/// contract the classic pair upholds.
#[test]
fn zero_fault_merged_runs_are_bitwise_identical_to_plain_merged() {
    let a = poisson_2d(14);
    let (_, b) = manufactured_rhs(&a, 11);
    for ranks in [1usize, 2, 4] {
        let plain_cg = distributed_cg_merged(&a, &b, ranks, TOL, 20_000);
        let plain_pcg = distributed_pcg_merged(&a, &b, ranks, 16, TOL, 20_000);
        for policy in [
            RecoveryPolicy::Ideal,
            RecoveryPolicy::Feir,
            RecoveryPolicy::Afeir,
            RecoveryPolicy::Trivial,
            RecoveryPolicy::TrivialReplace,
            RecoveryPolicy::Checkpoint { interval: 25 },
            RecoveryPolicy::LossyRestart,
        ] {
            let resilient = distributed_resilient_cg_merged(&a, &b, ranks, config(policy));
            assert_eq!(
                resilient.iterations, plain_cg.iterations,
                "{policy:?} at {ranks} ranks changed the merged CG iteration count"
            );
            for (i, (u, v)) in resilient
                .residual_history
                .iter()
                .zip(&plain_cg.residual_history)
                .enumerate()
            {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{policy:?} at {ranks} ranks: history[{i}] {u:e} != {v:e}"
                );
            }
            for (i, (u, v)) in resilient.x.iter().zip(&plain_cg.x).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{policy:?} at {ranks} ranks: x[{i}] {u:e} != {v:e}"
                );
            }
            assert_eq!(resilient.pages_recovered, 0);
            assert_eq!(resilient.cross_rank_values, 0);

            let resilient = distributed_resilient_pcg_merged(&a, &b, ranks, config(policy));
            assert_eq!(
                resilient.iterations, plain_pcg.iterations,
                "PCG {policy:?} at {ranks} ranks changed the iteration count"
            );
            for (i, (u, v)) in resilient.x.iter().zip(&plain_pcg.x).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "PCG {policy:?} at {ranks} ranks: x[{i}] {u:e} != {v:e}"
                );
            }
            for (u, v) in resilient
                .residual_history
                .iter()
                .zip(&plain_pcg.residual_history)
            {
                assert_eq!(u.to_bits(), v.to_bits(), "PCG {policy:?} at {ranks} ranks");
            }
        }
    }
}

/// Scripted DUEs across every protected vector of the merged CG: the full
/// policy matrix still converges to tolerance and the forward policies
/// reconstruct (or honestly blank-accept) the losses.
#[test]
fn merged_policy_matrix_converges_under_scripted_dues() {
    let a = poisson_2d(15);
    let (x_true, b) = manufactured_rhs(&a, 4);
    let ranks = 3;
    let faults = vec![
        ScriptedFault {
            iteration: 3,
            rank: 0,
            vector: ProtectedVector::D,
            page: 1,
        },
        ScriptedFault {
            iteration: 5,
            rank: 2,
            vector: ProtectedVector::X,
            page: 0,
        },
        ScriptedFault {
            iteration: 7,
            rank: 1,
            vector: ProtectedVector::Q,
            page: 2,
        },
        ScriptedFault {
            iteration: 9,
            rank: 1,
            vector: ProtectedVector::G,
            page: 0,
        },
    ];
    for policy in [
        RecoveryPolicy::Feir,
        RecoveryPolicy::Afeir,
        RecoveryPolicy::Checkpoint { interval: 4 },
        RecoveryPolicy::LossyRestart,
    ] {
        let report = distributed_resilient_cg_merged(
            &a,
            &b,
            ranks,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert!(
            report.converged,
            "{policy:?} did not converge: residual {:e} after {} iterations",
            report.relative_residual, report.iterations
        );
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "{policy:?} solution error {err}");
        assert_eq!(report.faults.total_injected(), faults.len());
        match policy {
            RecoveryPolicy::Feir | RecoveryPolicy::Afeir => {
                assert_eq!(
                    report.pages_recovered + report.pages_ignored,
                    faults.len(),
                    "{policy:?} must account for every loss"
                );
                assert!(
                    report.pages_recovered >= 3,
                    "{policy:?} recovered too little"
                );
            }
            RecoveryPolicy::Checkpoint { .. } => assert!(report.rollbacks >= 1),
            RecoveryPolicy::LossyRestart => assert!(report.restarts >= 1),
            _ => {}
        }
    }
}

/// The same scripted storm on the merged PCG, including a `u = M⁻¹·r` loss
/// (id `Z`) that only the preconditioned solver protects.
#[test]
fn merged_pcg_policy_matrix_converges_under_scripted_dues() {
    let a = poisson_2d(15);
    let (x_true, b) = manufactured_rhs(&a, 8);
    let ranks = 3;
    let faults = vec![
        ScriptedFault {
            iteration: 2,
            rank: 1,
            vector: ProtectedVector::Z,
            page: 1,
        },
        ScriptedFault {
            iteration: 4,
            rank: 0,
            vector: ProtectedVector::X,
            page: 2,
        },
        ScriptedFault {
            iteration: 6,
            rank: 2,
            vector: ProtectedVector::D,
            page: 0,
        },
    ];
    for policy in [
        RecoveryPolicy::Feir,
        RecoveryPolicy::Afeir,
        RecoveryPolicy::Checkpoint { interval: 4 },
        RecoveryPolicy::LossyRestart,
    ] {
        let report = distributed_resilient_pcg_merged(
            &a,
            &b,
            ranks,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert!(
            report.converged,
            "PCG {policy:?} did not converge: residual {:e}",
            report.relative_residual
        );
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "PCG {policy:?} solution error {err}");
        if matches!(policy, RecoveryPolicy::Feir | RecoveryPolicy::Afeir) {
            assert_eq!(report.pages_recovered + report.pages_ignored, faults.len());
            assert!(report.pages_recovered >= 2);
        }
    }
}

/// Trivial blank-acceptance on the merged recurrences: unlike classic CG —
/// whose per-iteration matvec recomputes `q = A·d` and slowly re-absorbs the
/// damage — the pipelined recurrences (`w = A·r`, `s = A·p`) never
/// self-correct, so the zero-effort policy generally fails to converge. The
/// contract here is *honest reporting*: the explicit residual on the
/// assembled solution tells the truth, and every loss shows up in
/// `pages_ignored`.
#[test]
fn merged_trivial_blank_acceptance_reports_honestly() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 4);
    let faults = vec![ScriptedFault {
        iteration: 4,
        rank: 0,
        vector: ProtectedVector::G,
        page: 1,
    }];
    let report = distributed_resilient_cg_merged(
        &a,
        &b,
        2,
        config(RecoveryPolicy::Trivial)
            .with_max_iterations(2_000)
            .with_scripted_faults(faults),
    );
    assert_eq!(report.pages_ignored, 1);
    assert_eq!(report.pages_recovered, 0);
    // converged is derived from the explicit residual, never the solver's
    // internal estimate.
    assert_eq!(report.converged, report.relative_residual <= TOL);
}

/// A direction page on a rank boundary: its stencil reaches the neighbour
/// rank, so the reconstruction must fetch remote `p` entries through the
/// recovery exchange (the merged loop has no halo snapshot of `p` to fall
/// back on).
#[test]
fn merged_direction_recovery_fetches_across_rank_boundaries() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 6);
    let ranks = 2;
    // Page sized so the last page of rank 0 touches rank 1's rows.
    let cfg = DistResilienceConfig::for_policy(RecoveryPolicy::Feir)
        .with_page_doubles(24)
        .with_tolerance(TOL)
        .with_max_iterations(20_000)
        .with_scripted_faults(vec![ScriptedFault {
            iteration: 4,
            rank: 0,
            vector: ProtectedVector::D,
            page: 2, // rows 48..72, stencil reaches row 84 on rank 1
        }]);
    let report = distributed_resilient_cg_merged(&a, &b, ranks, cfg);
    assert!(report.converged);
    assert_eq!(report.pages_recovered, 1);
    assert!(
        report.cross_rank_values > 0,
        "boundary reconstruction must fetch remote direction entries"
    );
}

/// Simultaneous loss of a page in both `p` and `s` is the merged form of the
/// related-data case: no relation can reconstruct either, so both are
/// blank-accepted and reported, never faked.
#[test]
fn merged_related_ps_losses_are_blank_accepted() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 9);
    let faults = vec![
        ScriptedFault {
            iteration: 5,
            rank: 0,
            vector: ProtectedVector::D,
            page: 1,
        },
        ScriptedFault {
            iteration: 5,
            rank: 0,
            vector: ProtectedVector::Q,
            page: 1,
        },
    ];
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = distributed_resilient_cg_merged(
            &a,
            &b,
            2,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert!(report.converged, "{policy:?}");
        assert_eq!(report.pages_recovered, 0, "{policy:?} faked a recovery");
        assert_eq!(report.pages_ignored, 2, "{policy:?}");
    }
}

/// Scripted-fault merged solves are bitwise reproducible run-to-run (the
/// recovery paths, including AFEIR's in-window planning, stay on the
/// deterministic reduction schedule).
#[test]
fn merged_resilient_solves_are_bitwise_deterministic_under_scripted_faults() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 13);
    let faults = vec![
        ScriptedFault {
            iteration: 2,
            rank: 1,
            vector: ProtectedVector::X,
            page: 1,
        },
        ScriptedFault {
            iteration: 6,
            rank: 0,
            vector: ProtectedVector::Q,
            page: 0,
        },
    ];
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let run = || {
            distributed_resilient_cg_merged(
                &a,
                &b,
                3,
                config(policy).with_scripted_faults(faults.clone()),
            )
        };
        let first = run();
        let second = run();
        assert!(first.converged);
        assert_eq!(first.iterations, second.iterations, "{policy:?}");
        for (u, v) in first.x.iter().zip(&second.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "{policy:?} x not reproducible");
        }
        for (u, v) in first.residual_history.iter().zip(&second.residual_history) {
            assert_eq!(u.to_bits(), v.to_bits(), "{policy:?} history differs");
        }
    }
}

/// Adjacent iterate pages lost across a rank boundary in the same
/// iteration: the merged loop runs the same coupled cross-rank round as the
/// classic one, so the pages reconstruct exactly (`pages_ignored == 0`, no
/// residual-replacement restart) for both merged solvers at 2 and 4 ranks —
/// and the faulty solve stays bitwise run-to-run deterministic.
#[test]
fn merged_coupled_cross_rank_recovery_is_exact() {
    let a = poisson_2d(16);
    let (x_true, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let last_page_r0 = 256 / ranks / 16 - 1;
        let faults = vec![
            ScriptedFault {
                iteration: 4,
                rank: 0,
                vector: ProtectedVector::X,
                page: last_page_r0,
            },
            ScriptedFault {
                iteration: 4,
                rank: 1,
                vector: ProtectedVector::X,
                page: 0,
            },
        ];
        for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
            for pcg in [false, true] {
                let run = || {
                    let cfg = config(policy).with_scripted_faults(faults.clone());
                    if pcg {
                        distributed_resilient_pcg_merged(&a, &b, ranks, cfg)
                    } else {
                        distributed_resilient_cg_merged(&a, &b, ranks, cfg)
                    }
                };
                let report = run();
                let tag = format!("merged {policy:?}/pcg={pcg}/{ranks} ranks");
                assert_eq!(report.pages_ignored, 0, "{tag} blank-accepted");
                assert_eq!(report.pages_coupled, 2, "{tag}");
                assert_eq!(
                    report.restarts, 0,
                    "{tag}: exact coupled recovery must not pay a restart"
                );
                assert!(report.converged, "{tag} did not converge");
                let err: f64 = report
                    .x
                    .iter()
                    .zip(&x_true)
                    .map(|(u, v)| (u - v) * (u - v))
                    .sum::<f64>()
                    .sqrt();
                assert!(err < 1e-6, "{tag}: solution error {err}");
                let second = run();
                assert_eq!(report.iterations, second.iterations, "{tag}");
                for (u, v) in report.x.iter().zip(&second.x) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{tag} not reproducible");
                }
            }
        }
    }
}

/// Adjacent *direction* pages lost across the boundary reconstruct through
/// the direction-side coupled round (`A_UU p_U = s_U − Σ A_Uc p_c`).
#[test]
fn merged_coupled_direction_losses_reconstruct_exactly() {
    let a = poisson_2d(16);
    let (x_true, b) = manufactured_rhs(&a, 8);
    let faults = vec![
        ScriptedFault {
            iteration: 4,
            rank: 0,
            vector: ProtectedVector::D,
            page: 7,
        },
        ScriptedFault {
            iteration: 4,
            rank: 1,
            vector: ProtectedVector::D,
            page: 0,
        },
    ];
    for policy in [RecoveryPolicy::Feir, RecoveryPolicy::Afeir] {
        let report = distributed_resilient_cg_merged(
            &a,
            &b,
            2,
            config(policy).with_scripted_faults(faults.clone()),
        );
        assert_eq!(report.pages_ignored, 0, "{policy:?} blank-accepted");
        assert_eq!(report.pages_coupled, 2, "{policy:?}");
        assert_eq!(report.restarts, 0, "{policy:?}");
        assert!(report.converged, "{policy:?} did not converge");
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "{policy:?}: solution error {err}");
    }
}

/// TrivialReplace on the merged recurrences: blank-accept like Trivial but
/// rebuild the recurrence state (residual replacement), which restores the
/// convergence guarantee Trivial loses.
#[test]
fn merged_trivial_replace_restarts_and_converges() {
    let a = poisson_2d(12);
    let (x_true, b) = manufactured_rhs(&a, 4);
    let faults = vec![ScriptedFault {
        iteration: 4,
        rank: 0,
        vector: ProtectedVector::G,
        page: 1,
    }];
    let report = distributed_resilient_cg_merged(
        &a,
        &b,
        2,
        config(RecoveryPolicy::TrivialReplace).with_scripted_faults(faults),
    );
    assert_eq!(report.pages_ignored, 1);
    assert_eq!(report.pages_recovered, 0);
    assert!(
        report.restarts >= 1,
        "triv+rr never rebuilt the recurrences"
    );
    assert!(report.converged, "residual replacement lost convergence");
    let err: f64 = report
        .x
        .iter()
        .zip(&x_true)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    assert!(err < 1e-6, "solution error {err}");
}

/// `Z` faults target `u = M⁻¹·r`, which only the preconditioned merged
/// solver carries — the CG variant must reject the script loudly instead of
/// silently measuring a fault-free run.
#[test]
#[should_panic(expected = "does not protect")]
fn merged_cg_rejects_z_faults() {
    let a = poisson_2d(8);
    let (_, b) = manufactured_rhs(&a, 1);
    let cfg = config(RecoveryPolicy::Feir).with_scripted_faults(vec![ScriptedFault {
        iteration: 1,
        rank: 0,
        vector: ProtectedVector::Z,
        page: 0,
    }]);
    let _ = distributed_resilient_cg_merged(&a, &b, 2, cfg);
}
