//! Tracing integration: bitwise identity of traced vs. untraced solves, the
//! cross-rank merge of the in-process backend, Chrome-trace export validity
//! and the recovery phases showing up under scripted faults.
//!
//! The trace level and sink registry are process-global, so every test here
//! serializes on one mutex and restores `TraceLevel::Off` before releasing
//! it (a poisoned-lock unwrap would cascade — use the inner value either
//! way).

use std::sync::Mutex;

use feir_dist::{
    distributed_cg, distributed_pcg, distributed_resilient_cg, DistResilienceConfig,
    ProtectedVector, ScriptedFault,
};
use feir_recovery::RecoveryPolicy;
use feir_sparse::generators::{manufactured_rhs, poisson_2d};
use feir_trace::{Phase, TraceLevel};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `body` with tracing at `level`, restoring `Off` (and draining any
/// leftover events) afterwards.
fn with_level<R>(level: TraceLevel, body: impl FnOnce() -> R) -> R {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    feir_trace::set_level(level);
    let out = body();
    feir_trace::set_level(TraceLevel::Off);
    let _ = feir_trace::drain_all();
    out
}

#[test]
fn spans_level_is_bitwise_identical_to_off_on_distributed_cg() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 5);
    let off = with_level(TraceLevel::Off, || distributed_cg(&a, &b, 3, 1e-10, 10_000));
    let spans = with_level(TraceLevel::Spans, || {
        distributed_cg(&a, &b, 3, 1e-10, 10_000)
    });
    assert!(off.converged() && spans.converged());
    assert_eq!(off.iterations, spans.iterations);
    for (u, v) in off.x.iter().zip(&spans.x) {
        assert_eq!(u.to_bits(), v.to_bits(), "iterate diverged under tracing");
    }
    for (u, v) in off.residual_history.iter().zip(&spans.residual_history) {
        assert_eq!(u.to_bits(), v.to_bits(), "history diverged under tracing");
    }
    assert!(off.trace.is_none(), "off run must not carry a trace");
    assert!(spans.trace.is_some(), "spans run must carry a trace");
}

#[test]
fn spans_level_is_bitwise_identical_to_off_on_distributed_pcg() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 7);
    let off = with_level(TraceLevel::Off, || {
        distributed_pcg(&a, &b, 2, 16, 1e-10, 10_000)
    });
    let spans = with_level(TraceLevel::Spans, || {
        distributed_pcg(&a, &b, 2, 16, 1e-10, 10_000)
    });
    assert!(off.converged() && spans.converged());
    assert_eq!(off.iterations, spans.iterations);
    for (u, v) in off.x.iter().zip(&spans.x) {
        assert_eq!(u.to_bits(), v.to_bits(), "iterate diverged under tracing");
    }
}

#[test]
fn in_process_merge_produces_one_ordered_track_per_rank() {
    let a = poisson_2d(10);
    let (_, b) = manufactured_rhs(&a, 3);
    for ranks in [2usize, 4] {
        let result = with_level(TraceLevel::Spans, || {
            distributed_cg(&a, &b, ranks, 1e-8, 10_000)
        });
        let trace = result.trace.expect("spans run carries a trace");
        assert_eq!(trace.ranks.len(), ranks, "one stream per rank");
        for (i, rt) in trace.ranks.iter().enumerate() {
            assert_eq!(rt.rank as usize, i, "streams sorted by rank");
            assert!(!rt.events.is_empty(), "rank {i} recorded events");
            // Events are sorted by start time within a rank's stream.
            assert!(
                rt.events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
                "rank {i} events out of order"
            );
            let has = |phase: Phase| rt.events.iter().any(|e| e.phase == phase);
            assert!(has(Phase::Iteration), "rank {i} missing iteration spans");
            assert!(has(Phase::Spmv), "rank {i} missing spmv spans");
            assert!(has(Phase::Allreduce), "rank {i} missing allreduce spans");
            if ranks > 1 {
                assert!(has(Phase::Halo), "rank {i} missing halo spans");
            }
        }
        // Every track appears in the Chrome export.
        let json = trace.chrome_json();
        for rank in 0..ranks {
            assert!(
                json.contains(&format!("\"tid\":{rank}")),
                "chrome json missing track for rank {rank}"
            );
        }
    }
}

#[test]
fn chrome_export_is_wellformed_with_balanced_span_markers() {
    let a = poisson_2d(10);
    let (_, b) = manufactured_rhs(&a, 1);
    let result = with_level(TraceLevel::Spans, || distributed_cg(&a, &b, 2, 1e-8, 5_000));
    let json = result.trace.expect("trace present").chrome_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    let opens = json.matches("\"ph\":\"B\"").count();
    let closes = json.matches("\"ph\":\"E\"").count();
    assert_eq!(opens, closes, "unbalanced B/E markers");
    assert!(opens > 0, "no spans exported");
    // Structural balance of the hand-rolled JSON (no string in the export
    // contains braces, so raw counting is sound here).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn recovery_phases_appear_under_scripted_faults() {
    let a = poisson_2d(12);
    let (_, b) = manufactured_rhs(&a, 5);
    let config = DistResilienceConfig::for_policy(RecoveryPolicy::Feir)
        .with_page_doubles(32)
        .with_tolerance(1e-8)
        .with_max_iterations(20_000)
        .with_scripted_faults(vec![
            ScriptedFault {
                iteration: 3,
                rank: 1,
                vector: ProtectedVector::X,
                page: 0,
            },
            ScriptedFault {
                iteration: 5,
                rank: 0,
                vector: ProtectedVector::G,
                page: 1,
            },
        ]);
    let report = with_level(TraceLevel::Spans, || {
        distributed_resilient_cg(&a, &b, 2, config)
    });
    assert!(report.converged);
    assert!(report.pages_recovered >= 2);
    let summary = report.trace.expect("trace present").summary();
    let total = |p: Phase| summary.phase_total_ns(p);
    assert!(total(Phase::RecoveryPlan) > 0, "no recovery-plan span");
    assert!(
        total(Phase::RecoveryInstall) > 0,
        "no recovery-install span"
    );
    // The summary table renders every observed phase plus the fault footer.
    let table = summary.table();
    assert!(table.contains("recovery_plan") || table.contains("recovery"));
    assert!(table.contains("dropped_events="));
}

#[test]
fn off_level_records_nothing_anywhere() {
    let a = poisson_2d(8);
    let (_, b) = manufactured_rhs(&a, 2);
    let result = with_level(TraceLevel::Off, || distributed_cg(&a, &b, 2, 1e-8, 5_000));
    assert!(result.converged());
    assert!(result.trace.is_none());
}
