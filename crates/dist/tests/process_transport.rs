//! End-to-end validation of the multi-process transport (PR 6): real rank
//! worker processes over Unix domain sockets must produce **bitwise** the
//! same solve as the in-process channel backend, and killing a rank
//! mid-solve must surface as a typed [`CommError::Disconnected`] — never a
//! panic or a hang.

use std::path::Path;
use std::time::Duration;

use feir_dist::{
    distributed_cg, distributed_pcg, solve_with_processes, spawn_workers, CommError,
    DistSolveResult, ProcessError, ProcessSpec, Transport, WorkerSolver,
};
use feir_sparse::generators::{manufactured_rhs, poisson_2d};

/// Path of the rank worker binary Cargo built alongside this test.
fn worker() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_feir-rank-worker"))
}

/// Asserts two solves agree bit for bit: solution, iteration count and the
/// full residual history (each ε comes out of the same rank-ordered fold on
/// both backends, so even the histories must match exactly).
fn assert_bitwise_identical(
    label: &str,
    via_processes: &DistSolveResult,
    in_process: &DistSolveResult,
) {
    assert_eq!(
        via_processes.iterations, in_process.iterations,
        "{label}: iteration counts differ"
    );
    assert_eq!(
        via_processes.ranks, in_process.ranks,
        "{label}: rank counts differ"
    );
    assert!(
        via_processes.converged,
        "{label}: process solve did not converge"
    );
    assert_eq!(
        via_processes.residual_history.len(),
        in_process.residual_history.len(),
        "{label}: history lengths differ"
    );
    for (i, (u, v)) in via_processes
        .residual_history
        .iter()
        .zip(&in_process.residual_history)
        .enumerate()
    {
        assert_eq!(
            u.to_bits(),
            v.to_bits(),
            "{label}: residual history diverges at iteration {i}: {u:e} vs {v:e}"
        );
    }
    assert_eq!(
        via_processes.x.len(),
        in_process.x.len(),
        "{label}: solution lengths differ"
    );
    for (i, (u, v)) in via_processes.x.iter().zip(&in_process.x).enumerate() {
        assert_eq!(
            u.to_bits(),
            v.to_bits(),
            "{label}: solution diverges at entry {i}: {u:e} vs {v:e}"
        );
    }
}

#[test]
fn process_backend_cg_is_bitwise_identical_to_in_process_at_2_and_4_ranks() {
    let grid = 12;
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let spec = ProcessSpec::cg(grid, ranks);
        let via_processes =
            solve_with_processes(worker(), &spec).expect("multi-process solve failed");
        let in_process = distributed_cg(&a, &b, ranks, spec.tolerance, spec.max_iterations);
        assert_bitwise_identical(&format!("cg/ranks{ranks}"), &via_processes, &in_process);
    }
}

#[test]
fn process_backend_pcg_is_bitwise_identical_to_in_process() {
    let grid = 12;
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let spec = ProcessSpec {
            solver: WorkerSolver::Pcg,
            page_doubles: 2,
            ..ProcessSpec::cg(grid, ranks)
        };
        let via_processes =
            solve_with_processes(worker(), &spec).expect("multi-process solve failed");
        let in_process = distributed_pcg(
            &a,
            &b,
            ranks,
            spec.page_doubles,
            spec.tolerance,
            spec.max_iterations,
        );
        assert_bitwise_identical(&format!("pcg/ranks{ranks}"), &via_processes, &in_process);
    }
}

#[test]
fn process_backend_over_tcp_matches_uds_bitwise() {
    let grid = 10;
    let spec = ProcessSpec::cg(grid, 2);
    let uds = solve_with_processes(worker(), &spec).expect("uds solve failed");
    // Find a free base port by probing; a stale listener from another test
    // run must not turn into a spurious failure.
    let base_port = (0..40)
        .map(|k| 43711 + k * 17)
        .find(|p| {
            (0..spec.ranks as u16)
                .all(|r| std::net::TcpListener::bind(("127.0.0.1", p + r)).is_ok())
        })
        .expect("no free tcp port range");
    let tcp = spawn_workers(worker(), &spec, &Transport::Tcp { base_port })
        .expect("tcp spawn failed")
        .join()
        .expect("tcp solve failed");
    assert_bitwise_identical("cg/tcp-vs-uds", &tcp, &uds);
}

#[test]
fn killing_a_rank_mid_solve_is_a_typed_disconnect_not_a_hang() {
    // A solve that cannot finish quickly: a negative tolerance is never
    // reached (the residual is non-negative), so the loop only ends at the
    // huge iteration cap or on exact breakdown — which the finite-termination
    // property of CG puts past n = 96² iterations, i.e. hundreds of
    // milliseconds of socket round trips. Kill rank 1 once the mesh is up;
    // the survivors must observe the closed sockets and report a typed
    // disconnect.
    let spec = ProcessSpec {
        tolerance: -1.0,
        max_iterations: 50_000_000,
        ..ProcessSpec::cg(96, 3)
    };
    let dir = std::env::temp_dir().join(format!("feir-kill-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut handles =
        spawn_workers(worker(), &spec, &Transport::Uds { dir: dir.clone() }).expect("spawn failed");
    // Wait for every rank's listener socket to appear — the solve starts
    // right after the mesh handshake, so from here a short sleep lands the
    // kill mid-iteration.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (0..3).any(|r| !dir.join(format!("rank{r}.sock")).exists()) {
        assert!(
            std::time::Instant::now() < deadline,
            "workers never bound their sockets"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(100));
    handles.kill_rank(1).expect("kill failed");
    match handles.join() {
        Err(ProcessError::Comm {
            error: CommError::Disconnected { .. },
            ..
        }) => {}
        Err(other) => panic!("expected a typed disconnect, got: {other}"),
        Ok(result) => panic!(
            "solve unexpectedly completed ({} iterations) despite the killed rank",
            result.iterations
        ),
    }
}
