//! End-to-end validation of the multi-process transport (PR 6/7): real rank
//! worker processes over Unix domain sockets must produce **bitwise** the
//! same solve as the in-process channel backend — including over a
//! chaos-injected lossy mesh, where the ack/retransmit sublayer absorbs
//! every frame fault — and killing a rank mid-solve must surface as a typed
//! [`CommError::Disconnected`] (never a panic or a hang) or, with
//! elasticity on, heal through [`feir_dist::WorkerHandles::respawn_rank`]
//! and the rejoin protocol.

use std::path::Path;
use std::time::Duration;

use feir_dist::{
    distributed_cg, distributed_pcg, solve_with_processes, spawn_workers, spawn_workers_with,
    ChaosConfig, CommError, DistSolveResult, ProcessError, ProcessSpec, Transport, WorkerHandles,
    WorkerOptions, WorkerSolver,
};
use feir_recovery::RecoveryPolicy;
use feir_sparse::generators::{manufactured_rhs, poisson_2d};

/// Path of the rank worker binary Cargo built alongside this test.
fn worker() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_feir-rank-worker"))
}

/// Asserts two solves agree bit for bit: solution, iteration count and the
/// full residual history (each ε comes out of the same rank-ordered fold on
/// both backends, so even the histories must match exactly).
fn assert_bitwise_identical(
    label: &str,
    via_processes: &DistSolveResult,
    in_process: &DistSolveResult,
) {
    assert_eq!(
        via_processes.iterations, in_process.iterations,
        "{label}: iteration counts differ"
    );
    assert_eq!(
        via_processes.ranks, in_process.ranks,
        "{label}: rank counts differ"
    );
    assert!(
        via_processes.converged,
        "{label}: process solve did not converge"
    );
    assert_eq!(
        via_processes.residual_history.len(),
        in_process.residual_history.len(),
        "{label}: history lengths differ"
    );
    for (i, (u, v)) in via_processes
        .residual_history
        .iter()
        .zip(&in_process.residual_history)
        .enumerate()
    {
        assert_eq!(
            u.to_bits(),
            v.to_bits(),
            "{label}: residual history diverges at iteration {i}: {u:e} vs {v:e}"
        );
    }
    assert_eq!(
        via_processes.x.len(),
        in_process.x.len(),
        "{label}: solution lengths differ"
    );
    for (i, (u, v)) in via_processes.x.iter().zip(&in_process.x).enumerate() {
        assert_eq!(
            u.to_bits(),
            v.to_bits(),
            "{label}: solution diverges at entry {i}: {u:e} vs {v:e}"
        );
    }
}

#[test]
fn process_backend_cg_is_bitwise_identical_to_in_process_at_2_and_4_ranks() {
    let grid = 12;
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let spec = ProcessSpec::cg(grid, ranks);
        let via_processes =
            solve_with_processes(worker(), &spec).expect("multi-process solve failed");
        let in_process = distributed_cg(&a, &b, ranks, spec.tolerance, spec.max_iterations);
        assert_bitwise_identical(&format!("cg/ranks{ranks}"), &via_processes, &in_process);
    }
}

#[test]
fn process_backend_pcg_is_bitwise_identical_to_in_process() {
    let grid = 12;
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let spec = ProcessSpec {
            solver: WorkerSolver::Pcg,
            page_doubles: 2,
            ..ProcessSpec::cg(grid, ranks)
        };
        let via_processes =
            solve_with_processes(worker(), &spec).expect("multi-process solve failed");
        let in_process = distributed_pcg(
            &a,
            &b,
            ranks,
            spec.page_doubles,
            spec.tolerance,
            spec.max_iterations,
        );
        assert_bitwise_identical(&format!("pcg/ranks{ranks}"), &via_processes, &in_process);
    }
}

#[test]
fn process_backend_over_tcp_matches_uds_bitwise() {
    let grid = 10;
    let spec = ProcessSpec::cg(grid, 2);
    let uds = solve_with_processes(worker(), &spec).expect("uds solve failed");
    // Find a free base port by probing; a stale listener from another test
    // run must not turn into a spurious failure.
    let base_port = (0..40)
        .map(|k| 43711 + k * 17)
        .find(|p| {
            (0..spec.ranks as u16)
                .all(|r| std::net::TcpListener::bind(("127.0.0.1", p + r)).is_ok())
        })
        .expect("no free tcp port range");
    let tcp = spawn_workers(worker(), &spec, &Transport::Tcp { base_port })
        .expect("tcp spawn failed")
        .join()
        .expect("tcp solve failed");
    assert_bitwise_identical("cg/tcp-vs-uds", &tcp, &uds);
}

/// The scripted chaos mix of the lossy-mesh tests: drops, duplicates,
/// one-slot reorders, header bit flips and truncations, with retransmissions
/// travelling clean (the default), so every fault is absorbable.
fn chaos_options() -> WorkerOptions {
    WorkerOptions {
        chaos: Some(
            ChaosConfig::parse(
                "seed=1207,drop=0.012,dup=0.006,delay=0.006,corrupt=0.004,trunc=0.004",
            )
            .expect("chaos schedule parses"),
        ),
        // A short timer keeps the retransmission stalls from dominating the
        // test's wall clock.
        retransmit_timeout: Some(Duration::from_millis(10)),
        ..WorkerOptions::default()
    }
}

/// Spawns a fresh UDS rendezvous for `spec` with `options` and joins it.
fn solve_uds_with(spec: &ProcessSpec, options: &WorkerOptions) -> DistSolveResult {
    let dir = std::env::temp_dir().join(format!(
        "feir-chaos-{}-{}",
        std::process::id(),
        spec.ranks * 1000 + spec.grid
    ));
    let _ = std::fs::remove_dir_all(&dir);
    spawn_workers_with(worker(), spec, &Transport::Uds { dir }, options)
        .expect("chaos spawn failed")
        .join()
        .expect("chaos solve failed")
}

#[test]
fn chaos_mesh_cg_is_bitwise_identical_to_clean_at_2_and_4_ranks() {
    let grid = 12;
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let spec = ProcessSpec::cg(grid, ranks);
        let lossy = solve_uds_with(&spec, &chaos_options());
        let clean = distributed_cg(&a, &b, ranks, spec.tolerance, spec.max_iterations);
        assert_bitwise_identical(&format!("chaos-cg/ranks{ranks}"), &lossy, &clean);
    }
}

#[test]
fn chaos_mesh_pcg_is_bitwise_identical_to_clean_at_2_and_4_ranks() {
    let grid = 12;
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let spec = ProcessSpec {
            solver: WorkerSolver::Pcg,
            page_doubles: 2,
            ..ProcessSpec::cg(grid, ranks)
        };
        let lossy = solve_uds_with(&spec, &chaos_options());
        let clean = distributed_pcg(
            &a,
            &b,
            ranks,
            spec.page_doubles,
            spec.tolerance,
            spec.max_iterations,
        );
        assert_bitwise_identical(&format!("chaos-pcg/ranks{ranks}"), &lossy, &clean);
    }
}

#[test]
fn chaos_mesh_over_tcp_is_bitwise_identical_to_clean_at_2_and_4_ranks() {
    let grid = 10;
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);
    for ranks in [2usize, 4] {
        let spec = ProcessSpec::cg(grid, ranks);
        let base_port = (0..40)
            .map(|k| 44519 + k * 23)
            .find(|p| {
                (0..spec.ranks as u16)
                    .all(|r| std::net::TcpListener::bind(("127.0.0.1", p + r)).is_ok())
            })
            .expect("no free tcp port range");
        let lossy = spawn_workers_with(
            worker(),
            &spec,
            &Transport::Tcp { base_port },
            &chaos_options(),
        )
        .expect("tcp chaos spawn failed")
        .join()
        .expect("tcp chaos solve failed");
        let clean = distributed_cg(&a, &b, ranks, spec.tolerance, spec.max_iterations);
        assert_bitwise_identical(&format!("chaos-cg/tcp/ranks{ranks}"), &lossy, &clean);
    }
}

/// Spawns an elastic fleet, kills rank 1 mid-solve, respawns it, and joins.
fn kill_respawn_solve(spec: &ProcessSpec, policy: RecoveryPolicy, tag: &str) -> DistSolveResult {
    let dir = std::env::temp_dir().join(format!("feir-rejoin-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = WorkerOptions {
        policy: Some(policy),
        elastic: true,
        // Dilate the iterations so the kill deterministically lands
        // mid-solve (a sleep does no floating-point work).
        spin: Some(Duration::from_millis(8)),
        ..WorkerOptions::default()
    };
    let mut handles = spawn_workers_with(
        worker(),
        spec,
        &Transport::Uds { dir: dir.clone() },
        &options,
    )
    .expect("elastic spawn failed");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (0..spec.ranks).any(|r| !dir.join(format!("rank{r}.sock")).exists()) {
        assert!(
            std::time::Instant::now() < deadline,
            "workers never bound their sockets"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // The solve starts right after the handshake and runs ≥ 8 ms per
    // iteration; a quarter second in, the kill is safely mid-solve.
    std::thread::sleep(Duration::from_millis(250));
    handles.kill_rank(1).expect("kill failed");
    std::thread::sleep(Duration::from_millis(50));
    handles.respawn_rank(1).expect("respawn failed");
    handles.join().expect("elastic solve failed after rejoin")
}

#[test]
fn kill_and_respawn_completes_under_every_recovering_policy() {
    let grid = 20;
    let ranks = 3;
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);
    let spec = ProcessSpec::cg(grid, ranks);
    let reference = distributed_cg(&a, &b, ranks, spec.tolerance, spec.max_iterations);
    assert!(reference.converged);
    let norm_ref: f64 = reference.x.iter().map(|v| v * v).sum::<f64>().sqrt();
    for policy in [
        RecoveryPolicy::Checkpoint { interval: 25 },
        RecoveryPolicy::Feir,
        RecoveryPolicy::Afeir,
    ] {
        let solve = kill_respawn_solve(&spec, policy, policy.name());
        assert!(
            solve.converged,
            "{policy:?}: rejoined solve did not converge"
        );
        assert!(
            solve.relative_residual <= spec.tolerance * 10.0,
            "{policy:?}: explicit residual {:e} after rejoin",
            solve.relative_residual
        );
        // Both solves meet the same residual tolerance, so the rejoined
        // solution must agree with the fault-free reference to round-off
        // (the conditioning of the Poisson operator bounds the gap).
        let diff: f64 = solve
            .x
            .iter()
            .zip(&reference.x)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(
            diff / norm_ref <= 1e-5,
            "{policy:?}: rejoined solution drifts {:e} from the reference",
            diff / norm_ref
        );
    }
}

#[test]
fn kill_and_respawn_under_trivial_policy_degrades_honestly_but_completes() {
    // Trivial restarts the rejoined rank's rows from zero instead of
    // interpolating them — a worse iterate, more restart iterations — but
    // CG still converges and the final answer still meets the tolerance.
    let grid = 20;
    let ranks = 3;
    let a = poisson_2d(grid);
    let (_, b) = manufactured_rhs(&a, 5);
    let spec = ProcessSpec::cg(grid, ranks);
    let reference = distributed_cg(&a, &b, ranks, spec.tolerance, spec.max_iterations);
    let solve = kill_respawn_solve(&spec, RecoveryPolicy::Trivial, "trivial");
    assert!(solve.converged, "trivial rejoin did not converge");
    assert!(
        solve.iterations >= reference.iterations,
        "a zeroed restart cannot use fewer iterations than the clean solve \
         ({} vs {})",
        solve.iterations,
        reference.iterations
    );
    assert!(solve.relative_residual <= spec.tolerance * 10.0);
}

#[test]
fn dropping_worker_handles_reaps_the_fleet() {
    // A solve that would run for minutes; dropping the handles must kill and
    // reap every worker rather than leaking orphans holding sockets.
    let spec = ProcessSpec {
        tolerance: -1.0,
        max_iterations: 50_000_000,
        ..ProcessSpec::cg(64, 2)
    };
    let dir = std::env::temp_dir().join(format!("feir-drop-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handles: WorkerHandles =
        spawn_workers(worker(), &spec, &Transport::Uds { dir: dir.clone() }).expect("spawn failed");
    let pids = handles.pids();
    assert_eq!(pids.len(), 2);
    for pid in &pids {
        assert!(
            Path::new(&format!("/proc/{pid}")).exists(),
            "worker {pid} is not running"
        );
    }
    drop(handles);
    // Drop kills and waits synchronously, so the processes are reaped (no
    // zombies) by the time it returns.
    for pid in &pids {
        assert!(
            !Path::new(&format!("/proc/{pid}")).exists(),
            "worker {pid} leaked past Drop"
        );
    }
}

#[test]
fn malformed_worker_env_values_are_hard_errors() {
    let dir = std::env::temp_dir().join(format!("feir-env-test-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let base = |cmd: &mut std::process::Command| {
        cmd.env("FEIR_WORKER_RANK", "0")
            .env("FEIR_WORKER_RANKS", "1")
            .env("FEIR_WORKER_TRANSPORT", "uds")
            .env("FEIR_WORKER_DIR", &dir)
            .env("FEIR_WORKER_SOLVER", "cg")
            .env("FEIR_WORKER_GRID", "4")
            .env("FEIR_WORKER_SEED", "1")
            .env("FEIR_WORKER_TOL", "1e-8")
            .env("FEIR_WORKER_MAXIT", "1000")
            .env("FEIR_WORKER_PAGE", "16")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
    };
    for (key, value) in [
        ("FEIR_WORKER_CHAOS", "drop=2"),         // rate out of range
        ("FEIR_WORKER_CHAOS", "blast=0.5"),      // unknown fault kind
        ("FEIR_WORKER_READ_TIMEOUT_MS", "soon"), // not a number
        ("FEIR_WORKER_ELASTIC", "yes"),          // not the strict 0/1
        ("FEIR_WORKER_RETRY_MAX", "-3"),         // negative
        ("FEIR_WORKER_POLICY", "optimism"),      // unknown policy
        ("FEIR_WORKER_EPOCHS", "0,banana"),      // malformed list entry
    ] {
        let mut cmd = std::process::Command::new(worker());
        base(&mut cmd);
        cmd.env(key, value);
        let status = cmd.status().expect("worker failed to start");
        assert!(
            !status.success(),
            "{key}={value} was accepted instead of rejected"
        );
    }
    // Control: the same env with the overrides well-formed must run the
    // (single-rank) solve to completion, proving the base env is valid.
    let mut cmd = std::process::Command::new(worker());
    base(&mut cmd);
    cmd.env("FEIR_WORKER_CHAOS", "drop=0.01")
        .env("FEIR_WORKER_READ_TIMEOUT_MS", "30000")
        .env("FEIR_WORKER_RETRY_MAX", "3");
    let status = cmd.status().expect("worker failed to start");
    assert!(status.success(), "well-formed env overrides were rejected");
}

#[test]
fn killing_a_rank_mid_solve_is_a_typed_disconnect_not_a_hang() {
    // A solve that cannot finish quickly: a negative tolerance is never
    // reached (the residual is non-negative), so the loop only ends at the
    // huge iteration cap or on exact breakdown — which the finite-termination
    // property of CG puts past n = 96² iterations, i.e. hundreds of
    // milliseconds of socket round trips. Kill rank 1 once the mesh is up;
    // the survivors must observe the closed sockets and report a typed
    // disconnect.
    let spec = ProcessSpec {
        tolerance: -1.0,
        max_iterations: 50_000_000,
        ..ProcessSpec::cg(96, 3)
    };
    let dir = std::env::temp_dir().join(format!("feir-kill-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut handles =
        spawn_workers(worker(), &spec, &Transport::Uds { dir: dir.clone() }).expect("spawn failed");
    // Wait for every rank's listener socket to appear — the solve starts
    // right after the mesh handshake, so from here a short sleep lands the
    // kill mid-iteration.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while (0..3).any(|r| !dir.join(format!("rank{r}.sock")).exists()) {
        assert!(
            std::time::Instant::now() < deadline,
            "workers never bound their sockets"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(100));
    handles.kill_rank(1).expect("kill failed");
    match handles.join() {
        Err(ProcessError::Comm {
            error: CommError::Disconnected { .. },
            ..
        }) => {}
        Err(other) => panic!("expected a typed disconnect, got: {other}"),
        Ok(result) => panic!(
            "solve unexpectedly completed ({} iterations) despite the killed rank",
            result.iterations
        ),
    }
}
