//! Storage-format parity: the distributed solvers must produce *bitwise*
//! identical results — solution bits, iteration count, residual history —
//! whether their rank-local matvecs run on CSR or SELL-C-σ, at every rank
//! count. This is the distributed end of the SELL≡CSR kernel-identity
//! contract asserted in `feir-sparse/tests/parallel_kernels.rs`, and it is
//! what makes `FEIR_SPMV_FORMAT` a pure performance knob.
//!
//! The env var is process-global, so every test serializes on one mutex and
//! restores the previous value before releasing it. Only *valid* values are
//! ever set (a concurrent reader landing on any of them gets bitwise-equal
//! results by the contract under test); malformed-value handling is covered
//! by `SpmvFormat::parse` unit tests without touching the environment.

use std::sync::Mutex;

use feir_dist::{
    distributed_cg, distributed_cg_merged, distributed_pcg, distributed_pcg_merged, DistSolveResult,
};
use feir_sparse::generators::{anisotropic_2d, manufactured_rhs, poisson_2d};
use feir_sparse::ENV_SPMV_FORMAT;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with `FEIR_SPMV_FORMAT=format`, restoring the previous value.
fn with_format<T>(format: &str, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap();
    let previous = std::env::var(ENV_SPMV_FORMAT).ok();
    std::env::set_var(ENV_SPMV_FORMAT, format);
    let value = f();
    match previous {
        Some(prev) => std::env::set_var(ENV_SPMV_FORMAT, prev),
        None => std::env::remove_var(ENV_SPMV_FORMAT),
    }
    value
}

/// Asserts two solves are indistinguishable: same iteration count, same
/// residual history bits, same solution bits.
fn assert_bitwise_identical(csr: &DistSolveResult, sell: &DistSolveResult, label: &str) {
    assert_eq!(csr.iterations, sell.iterations, "{label}: iteration count");
    assert_eq!(
        csr.residual_history.len(),
        sell.residual_history.len(),
        "{label}: history length"
    );
    for (i, (c, s)) in csr
        .residual_history
        .iter()
        .zip(&sell.residual_history)
        .enumerate()
    {
        assert_eq!(
            c.to_bits(),
            s.to_bits(),
            "{label}: residual history diverged at iteration {i}"
        );
    }
    for (i, (c, s)) in csr.x.iter().zip(&sell.x).enumerate() {
        assert_eq!(
            c.to_bits(),
            s.to_bits(),
            "{label}: solution diverged at row {i}"
        );
    }
}

#[test]
fn distributed_cg_is_bitwise_identical_across_formats_and_rank_counts() {
    let a = poisson_2d(24); // 576 rows: above the analyzer's SELL row floor.
    let (_, b) = manufactured_rhs(&a, 7);
    for ranks in [1usize, 2, 4] {
        let csr = with_format("csr", || distributed_cg(&a, &b, ranks, 1e-10, 20_000));
        let sell = with_format("sell", || distributed_cg(&a, &b, ranks, 1e-10, 20_000));
        assert!(csr.converged() && sell.converged(), "{ranks} ranks");
        assert_bitwise_identical(&csr, &sell, &format!("CG at {ranks} ranks"));
        // `auto` must agree too — whichever format it picks per rank block.
        let auto = with_format("auto", || distributed_cg(&a, &b, ranks, 1e-10, 20_000));
        assert_bitwise_identical(&csr, &auto, &format!("CG auto at {ranks} ranks"));
    }
}

#[test]
fn distributed_pcg_is_bitwise_identical_across_formats_and_rank_counts() {
    // A banded anisotropic operator — the matrix class SELL is built for.
    let a = anisotropic_2d(24, 0.05);
    let (_, b) = manufactured_rhs(&a, 9);
    for ranks in [1usize, 2, 4] {
        let csr = with_format("csr", || distributed_pcg(&a, &b, ranks, 16, 1e-10, 20_000));
        let sell = with_format("sell", || distributed_pcg(&a, &b, ranks, 16, 1e-10, 20_000));
        assert!(csr.converged() && sell.converged(), "{ranks} ranks");
        assert_bitwise_identical(&csr, &sell, &format!("PCG at {ranks} ranks"));
    }
}

#[test]
fn merged_solvers_are_bitwise_identical_across_formats() {
    let a = poisson_2d(16);
    let (_, b) = manufactured_rhs(&a, 3);
    for ranks in [1usize, 2, 4] {
        let csr = with_format("csr", || {
            distributed_cg_merged(&a, &b, ranks, 1e-10, 20_000)
        });
        let sell = with_format("sell", || {
            distributed_cg_merged(&a, &b, ranks, 1e-10, 20_000)
        });
        assert!(csr.converged() && sell.converged());
        assert_bitwise_identical(&csr, &sell, &format!("merged CG at {ranks} ranks"));

        let csr = with_format("csr", || {
            distributed_pcg_merged(&a, &b, ranks, 16, 1e-10, 20_000)
        });
        let sell = with_format("sell", || {
            distributed_pcg_merged(&a, &b, ranks, 16, 1e-10, 20_000)
        });
        assert!(csr.converged() && sell.converged());
        assert_bitwise_identical(&csr, &sell, &format!("merged PCG at {ranks} ranks"));
    }
}
