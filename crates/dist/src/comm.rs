//! Message-passing primitives between ranks: halo exchange for the block-row
//! SpMV and the rank-ordered sum allreduce for the CG dot products.
//!
//! Two backends live behind the same [`RankComm`] surface:
//!
//! * **In-process** — ranks are threads wired with `std::sync::mpsc` channels.
//!   No rank ever reads another rank's buffers, so the data movement is
//!   exactly the send/receive pattern an MPI implementation of Section 3.4
//!   would perform. This is the default for unit tests and the thread-backed
//!   solver entry points.
//! * **Process** — ranks are real OS processes connected over Unix domain
//!   sockets (TCP fallback) speaking the versioned `feir-wire` frame protocol
//!   (see [`crate::process`]). Every collective performs the *same*
//!   rank-ordered arithmetic as the in-process backend, so results are
//!   bitwise identical across backends.
//!
//! Every communication method returns `Result<_, CommError>`: a vanished
//! peer — a disconnected channel in-process, a closed socket across
//! processes — surfaces as a typed [`CommError`] instead of a panic, so the
//! resilience engine can observe rank failure the same way on both backends.

use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};

use feir_sparse::CsrMatrix;

use crate::partition::RankPartition;
use crate::process::ProcessLinks;

/// A communication failure observed by one rank.
///
/// Both backends produce the same variants for the same situations: a peer
/// that is gone mid-collective is [`CommError::Disconnected`] whether it was
/// a dropped channel endpoint or a closed socket.
#[derive(Debug)]
pub enum CommError {
    /// A peer rank is gone: its channel endpoint was dropped (in-process) or
    /// its socket closed / reset (process backend).
    Disconnected {
        /// The peer that vanished, when identifiable.
        peer: Option<usize>,
        /// The operation that observed the failure.
        during: &'static str,
    },
    /// A read deadline expired while waiting on a peer (process backend).
    Timeout {
        /// The peer that failed to respond.
        peer: usize,
        /// The operation that timed out.
        during: &'static str,
    },
    /// A frame failed to decode (bad magic, version mismatch, truncation...).
    Wire(feir_wire::WireError),
    /// The peers violated the comm protocol (wrong message, bad handshake,
    /// mismatched component counts, ...).
    Protocol(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Disconnected { peer, during } => match peer {
                Some(p) => write!(f, "rank {p} disconnected during {during}"),
                None => write!(f, "peer rank disconnected during {during}"),
            },
            CommError::Timeout { peer, during } => {
                write!(f, "timed out waiting on rank {peer} during {during}")
            }
            CommError::Wire(e) => write!(f, "wire protocol error: {e}"),
            CommError::Protocol(msg) => write!(f, "comm protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<feir_wire::WireError> for CommError {
    fn from(e: feir_wire::WireError) -> Self {
        CommError::Wire(e)
    }
}

/// For every rank, the remote entries its local rows reference, grouped by
/// owning rank.
///
/// `needs[r]` maps a peer rank `s` to the sorted column indices owned by `s`
/// that appear in rank `r`'s rows; the symmetric view `sends[s]` maps `r` to
/// the same list (what `s` must ship to `r` each iteration). Only the entries
/// actually referenced are exchanged, as a real halo exchange would.
#[derive(Debug, Clone)]
pub struct HaloPlan {
    needs: Vec<HashMap<usize, Vec<usize>>>,
    sends: Vec<HashMap<usize, Vec<usize>>>,
}

impl HaloPlan {
    /// Builds the exchange lists for `a` distributed by `partition`.
    pub fn build(a: &CsrMatrix, partition: &RankPartition) -> Self {
        let ranks = partition.num_ranks();
        let mut needs: Vec<HashMap<usize, Vec<usize>>> = vec![HashMap::new(); ranks];
        for (r, needs_of_r) in needs.iter_mut().enumerate() {
            let mut seen: Vec<usize> = Vec::new();
            for row in partition.range(r) {
                let (cols, _) = a.row(row);
                for &c in cols {
                    let owner = partition.owner_of(c);
                    if owner != r && !seen.contains(&c) {
                        seen.push(c);
                    }
                }
            }
            seen.sort_unstable();
            for c in seen {
                needs_of_r.entry(partition.owner_of(c)).or_default().push(c);
            }
        }
        let mut sends: Vec<HashMap<usize, Vec<usize>>> = vec![HashMap::new(); ranks];
        for (r, per_owner) in needs.iter().enumerate() {
            for (&owner, cols) in per_owner {
                sends[owner].insert(r, cols.clone());
            }
        }
        Self { needs, sends }
    }

    /// A plan with no halo traffic (pure reductions, no SpMV).
    pub fn empty(ranks: usize) -> Self {
        Self {
            needs: vec![HashMap::new(); ranks],
            sends: vec![HashMap::new(); ranks],
        }
    }

    /// Entries rank `rank` receives, grouped by sending rank.
    pub fn needs_of(&self, rank: usize) -> &HashMap<usize, Vec<usize>> {
        &self.needs[rank]
    }

    /// Entries rank `rank` ships, grouped by destination rank.
    pub fn sends_of(&self, rank: usize) -> &HashMap<usize, Vec<usize>> {
        &self.sends[rank]
    }

    /// Total number of values crossing rank boundaries per exchange.
    pub fn halo_volume(&self) -> usize {
        self.needs
            .iter()
            .flat_map(|m| m.values())
            .map(Vec::len)
            .sum()
    }

    /// The halo neighbours of `rank` (traffic in either direction), sorted.
    pub(crate) fn neighbours_of(&self, rank: usize) -> Vec<usize> {
        let mut peers: Vec<usize> = self.needs[rank].keys().copied().collect();
        for p in self.sends[rank].keys() {
            if !peers.contains(p) {
                peers.push(*p);
            }
        }
        peers.sort_unstable();
        peers
    }
}

/// Message exchanged on the cross-rank recovery channels.
///
/// When a rank discovers a DUE whose recovery relation reaches across a rank
/// boundary (the faulted block's matrix stencil references columns owned by a
/// neighbour), it cannot reconstruct the block from local data alone: the
/// off-diagonal contributions `A_ij · v_j` of the interpolation need the
/// neighbour's current values. The recovery round is a collective over halo
/// neighbours — every rank posts one [`RecoveryMsg::Request`] (possibly empty)
/// per neighbour and answers the neighbour's request with one
/// [`RecoveryMsg::Reply`], so the protocol stays deadlock-free in lockstep
/// with the solver.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryMsg {
    /// Ask the receiving rank for the current authoritative values of the
    /// listed global indices (which it owns). An empty list means "nothing
    /// needed this round" and still participates in the collective.
    Request(Vec<usize>),
    /// The answer to the sender's last request, in request order.
    Reply {
        /// The owner's current values at the requested indices.
        values: Vec<f64>,
        /// Per value, whether the owner can vouch for it. `false` marks an
        /// index inside a page the owner itself lost this round (its data
        /// is a post-scrub blank): two ranks faulting simultaneously on
        /// stencil-adjacent pages is the cross-rank form of the paper's
        /// "related data" case, and the requester must blank-accept rather
        /// than install a reconstruction built on garbage.
        valid: Vec<bool>,
    },
    /// Coupled cross-rank recovery offer, travelling *down* the rank chain
    /// (each rank receives from its higher-ranked halo neighbours, merges
    /// its own offer in and forwards to its lower-ranked neighbours): the
    /// sender's view of the lost-row union plus the surviving stencil
    /// support the coupled solve needs from outside it.
    CoupledGather {
        /// `(global row, rhs value)` of lost rows in the coupled union (the
        /// surviving residual / matvec value at each row).
        rows: Vec<(usize, f64)>,
        /// `(global col, value, valid)` stencil entries outside the union;
        /// `valid == false` marks an entry its owner lost this round.
        support: Vec<(usize, f64, bool)>,
    },
    /// Coupled cross-rank recovery result, travelling *up* the rank chain:
    /// reconstructed `(global row, value)` entries for installation by the
    /// rows' owners.
    CoupledResult {
        /// Reconstructed entries.
        entries: Vec<(usize, f64)>,
    },
}

/// Rank-ordered sum allreduce over channels.
///
/// Rank 0 gathers one partial value per peer, accumulates them **in rank
/// order** (so the result is bitwise deterministic run-to-run) and broadcasts
/// the sum back. This is the reduction under every `⟨d,q⟩` and `‖g‖²` of the
/// distributed CG.
///
/// Scalars and short vectors travel on separate channel pairs: the vector
/// form ([`Reducer::allreduce_vec`]) batches all of an iteration's scalars
/// into **one** collective — the merged-reduction solvers' single
/// synchronization point — and reduces each component in rank order, so
/// component `j` of the result is bitwise-identical to a scalar allreduce of
/// the same partials.
#[derive(Debug)]
pub enum Reducer {
    /// Rank 0: gathers from every peer and broadcasts the total.
    Root {
        /// Receiving side of the scalar gather channel.
        gather: Receiver<(usize, f64)>,
        /// Scalar broadcast sender per peer rank (index 0 unused).
        broadcast: Vec<Sender<f64>>,
        /// Receiving side of the vector gather channel.
        gather_vec: Receiver<(usize, Vec<f64>)>,
        /// Vector broadcast sender per peer rank (index 0 unused).
        broadcast_vec: Vec<Sender<Vec<f64>>>,
    },
    /// Ranks 1..: send their partial and await the total.
    Leaf {
        /// This rank's id.
        rank: usize,
        /// Sending side of the scalar gather channel.
        gather: Sender<(usize, f64)>,
        /// Receiving side of the scalar broadcast channel.
        broadcast: Receiver<f64>,
        /// Sending side of the vector gather channel.
        gather_vec: Sender<(usize, Vec<f64>)>,
        /// Receiving side of the vector broadcast channel.
        broadcast_vec: Receiver<Vec<f64>>,
    },
}

impl Reducer {
    /// Creates one connected [`Reducer`] per rank.
    pub fn for_ranks(ranks: usize) -> Vec<Reducer> {
        assert!(ranks > 0, "need at least one rank");
        let (gather_tx, gather_rx) = channel();
        let (gather_vec_tx, gather_vec_rx) = channel();
        let mut broadcast_txs = Vec::with_capacity(ranks);
        let mut broadcast_rxs = Vec::with_capacity(ranks);
        let mut broadcast_vec_txs = Vec::with_capacity(ranks);
        let mut broadcast_vec_rxs = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (tx, rx) = channel();
            broadcast_txs.push(tx);
            broadcast_rxs.push(rx);
            let (tx, rx) = channel();
            broadcast_vec_txs.push(tx);
            broadcast_vec_rxs.push(rx);
        }
        let mut reducers = Vec::with_capacity(ranks);
        reducers.push(Reducer::Root {
            gather: gather_rx,
            broadcast: broadcast_txs,
            gather_vec: gather_vec_rx,
            broadcast_vec: broadcast_vec_txs,
        });
        for (rank, (rx, rx_vec)) in broadcast_rxs
            .into_iter()
            .zip(broadcast_vec_rxs)
            .enumerate()
            .skip(1)
        {
            reducers.push(Reducer::Leaf {
                rank,
                gather: gather_tx.clone(),
                broadcast: rx,
                gather_vec: gather_vec_tx.clone(),
                broadcast_vec: rx_vec,
            });
        }
        reducers
    }

    /// Posts the local partial (a leaf sends it to the root; the root holds
    /// it until the fold). First half of the split-phase protocol.
    fn post_scalar(&self, local: f64) -> Result<(), CommError> {
        if let Reducer::Leaf { rank, gather, .. } = self {
            gather
                .send((*rank, local))
                .map_err(|_| CommError::Disconnected {
                    peer: Some(0),
                    during: "allreduce gather",
                })?;
            let _ = rank;
        }
        Ok(())
    }

    /// Completes a scalar allreduce whose partial was already posted.
    fn finish_scalar(&self, local: f64) -> Result<f64, CommError> {
        match self {
            Reducer::Root {
                gather, broadcast, ..
            } => {
                let peers = broadcast.len() - 1;
                let mut partials = vec![0.0; peers + 1];
                partials[0] = local;
                for _ in 0..peers {
                    let (rank, value) = gather.recv().map_err(|_| CommError::Disconnected {
                        peer: None,
                        during: "allreduce gather",
                    })?;
                    partials[rank] = value;
                }
                let total: f64 = partials.iter().sum();
                for (peer, tx) in broadcast.iter().enumerate().skip(1) {
                    tx.send(total).map_err(|_| CommError::Disconnected {
                        peer: Some(peer),
                        during: "allreduce broadcast",
                    })?;
                }
                Ok(total)
            }
            Reducer::Leaf { broadcast, .. } => {
                broadcast.recv().map_err(|_| CommError::Disconnected {
                    peer: Some(0),
                    during: "allreduce broadcast",
                })
            }
        }
    }

    /// Posts the local partial vector; a leaf relinquishes ownership (the
    /// returned vector is what the caller must hold for the fold — empty on
    /// leaves, `local` itself on the root).
    fn post_vec(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        match self {
            Reducer::Leaf {
                rank, gather_vec, ..
            } => {
                gather_vec
                    .send((*rank, local))
                    .map_err(|_| CommError::Disconnected {
                        peer: Some(0),
                        during: "vector allreduce gather",
                    })?;
                Ok(Vec::new())
            }
            Reducer::Root { .. } => Ok(local),
        }
    }

    /// Completes a vector allreduce whose partial was already posted.
    fn finish_vec(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        match self {
            Reducer::Root {
                gather_vec,
                broadcast_vec,
                ..
            } => {
                let peers = broadcast_vec.len() - 1;
                let mut partials: Vec<Vec<f64>> = vec![Vec::new(); peers + 1];
                partials[0] = local;
                for _ in 0..peers {
                    let (rank, values) =
                        gather_vec.recv().map_err(|_| CommError::Disconnected {
                            peer: None,
                            during: "vector allreduce gather",
                        })?;
                    partials[rank] = values;
                }
                let totals = fold_partials_rank_ordered(&partials)?;
                for (peer, tx) in broadcast_vec.iter().enumerate().skip(1) {
                    tx.send(totals.clone())
                        .map_err(|_| CommError::Disconnected {
                            peer: Some(peer),
                            during: "vector allreduce broadcast",
                        })?;
                }
                Ok(totals)
            }
            Reducer::Leaf { broadcast_vec, .. } => {
                broadcast_vec.recv().map_err(|_| CommError::Disconnected {
                    peer: Some(0),
                    during: "vector allreduce broadcast",
                })
            }
        }
    }

    /// Contributes `local` and returns the global sum; every rank must call
    /// this the same number of times in the same order.
    ///
    /// This is the blocking form of the split-phase pair
    /// [`Reducer::start_allreduce`] / [`ReducerPending::finish`] and is
    /// bitwise-identical to it (same partials, same rank-ordered
    /// accumulation).
    pub fn allreduce_sum(&self, local: f64) -> Result<f64, CommError> {
        self.start_allreduce(local)?.finish()
    }

    /// Starts a split-phase allreduce: the local partial is posted
    /// immediately (leaf ranks send it to the root before returning), but
    /// the blocking wait for the global sum is deferred to
    /// [`ReducerPending::finish`]. Work done between the two calls
    /// overlaps the reduction wait — this is the window AFEIR uses to run
    /// page reconstruction *inside* the collective instead of only beside
    /// local updates.
    ///
    /// At most one allreduce may be in flight per rank, and every rank must
    /// still enter the collectives in the same order. The single-flight rule
    /// is a protocol contract, not a compile-time guarantee: a leaf posts
    /// its partial in `start`, so starting a second collective before
    /// finishing the first desynchronizes the root's gather.
    pub fn start_allreduce(&self, local: f64) -> Result<ReducerPending<'_>, CommError> {
        self.post_scalar(local)?;
        Ok(ReducerPending {
            reducer: self,
            local,
        })
    }

    /// Contributes one *vector* of partials and returns the component-wise
    /// global sums; every rank must pass the same number of components. This
    /// is the single collective of the merged-reduction solvers: all of an
    /// iteration's scalars (`γ`, `δ`, the fault flag, …) ride in one
    /// message, one gather and one broadcast.
    ///
    /// Component `j` of the result is bitwise-identical to
    /// [`Reducer::allreduce_sum`] over the same per-rank partials — the root
    /// folds each component in rank order, exactly like the scalar path.
    pub fn allreduce_vec(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        self.start_allreduce_vec(local)?.finish()
    }

    /// Split-phase form of [`Reducer::allreduce_vec`]: the partial vector is
    /// posted immediately, the blocking wait is deferred to
    /// [`ReducerVecPending::finish`]. The merged-reduction solvers start
    /// the collective, run the halo exchange and the next matvec while it is
    /// in flight, and only then collect the sums — the reduction latency
    /// hides behind the matvec instead of serializing with it. The same
    /// single-flight / same-order contract as [`Reducer::start_allreduce`]
    /// applies.
    pub fn start_allreduce_vec(&self, local: Vec<f64>) -> Result<ReducerVecPending<'_>, CommError> {
        let local = self.post_vec(local)?;
        Ok(ReducerVecPending {
            reducer: self,
            local,
        })
    }
}

/// Component-wise rank-ordered fold shared by every vector-allreduce path
/// (in-process root and process root alike): each component's sum is exactly
/// what the scalar allreduce of the same partials would produce.
pub(crate) fn fold_partials_rank_ordered(partials: &[Vec<f64>]) -> Result<Vec<f64>, CommError> {
    let components = partials[0].len();
    let mut totals = vec![0.0; components];
    for partial in partials {
        if partial.len() != components {
            return Err(CommError::Protocol(format!(
                "vector allreduce: ranks disagree on component count ({} vs {components})",
                partial.len()
            )));
        }
        for (t, v) in totals.iter_mut().zip(partial) {
            *t += v;
        }
    }
    Ok(totals)
}

/// An in-flight split-phase allreduce on a bare [`Reducer`] (see
/// [`Reducer::start_allreduce`]).
///
/// The contribution has already been posted; dropping the handle without
/// calling [`ReducerPending::finish`] would deadlock the collective on the
/// other ranks, hence the `must_use`.
#[must_use = "finish() completes the collective; dropping the handle deadlocks the peers"]
#[derive(Debug)]
pub struct ReducerPending<'a> {
    reducer: &'a Reducer,
    local: f64,
}

impl ReducerPending<'_> {
    /// Completes the collective and returns the global sum. On the root this
    /// performs the rank-ordered gather + broadcast; on a leaf it blocks on
    /// the broadcast of the total.
    pub fn finish(self) -> Result<f64, CommError> {
        self.reducer.finish_scalar(self.local)
    }
}

/// An in-flight split-phase *vector* allreduce on a bare [`Reducer`] (see
/// [`Reducer::start_allreduce_vec`]).
#[must_use = "finish() completes the collective; dropping the handle deadlocks the peers"]
#[derive(Debug)]
pub struct ReducerVecPending<'a> {
    reducer: &'a Reducer,
    /// The root's own partial (leaves posted theirs at start).
    local: Vec<f64>,
}

impl ReducerVecPending<'_> {
    /// Completes the collective and returns the component-wise global sums.
    pub fn finish(self) -> Result<Vec<f64>, CommError> {
        self.reducer.finish_vec(self.local)
    }
}

/// The in-process backend's endpoints: mpsc halo and recovery channels plus
/// the channel [`Reducer`].
#[derive(Debug)]
struct InProcessLinks {
    /// Outgoing halo: `(destination, indices to ship, sender)`.
    halo_out: Vec<(usize, Vec<usize>, Sender<Vec<f64>>)>,
    /// Incoming halo: `(source, indices received, receiver)`.
    halo_in: Vec<(usize, Vec<usize>, Receiver<Vec<f64>>)>,
    /// Bidirectional recovery channels, one per halo neighbour, sorted by
    /// peer rank: `(peer, sender to peer, receiver from peer)`.
    recovery: Vec<(usize, Sender<RecoveryMsg>, Receiver<RecoveryMsg>)>,
    reducer: Reducer,
}

/// Which transport carries this rank's traffic.
#[derive(Debug)]
enum Backend {
    InProcess(InProcessLinks),
    Process(Box<ProcessLinks>),
}

/// The merged view a coupled-recovery gather wave accumulates: lost-row
/// offers as `(global row, rhs value)` and surviving stencil entries as
/// `(global column, value, valid)`, both sorted by their global id.
pub type CoupledGatherView = (Vec<(usize, f64)>, Vec<(usize, f64, bool)>);

/// One rank's communication endpoint.
///
/// Build one per rank with [`RankComm::for_ranks`] (threads + channels) or
/// [`RankComm::over_process`] (one per OS process, sockets + `feir-wire`
/// frames), move it into the rank's thread/process, and drive an iteration
/// with [`RankComm::exchange_halo`] / [`RankComm::allreduce_sum`]. Solver
/// code is backend-agnostic: the collectives perform identical rank-ordered
/// arithmetic on both transports.
#[derive(Debug)]
pub struct RankComm {
    rank: usize,
    backend: Backend,
    /// Collectives entered through this endpoint (scalar and vector alike,
    /// blocking or split-phase). The merged-reduction solver tests assert
    /// "exactly one allreduce per iteration" against this counter.
    collectives: std::cell::Cell<u64>,
}

impl RankComm {
    /// Creates the connected in-process endpoints for every rank of `plan`.
    pub fn for_ranks(plan: &HaloPlan, ranks: usize) -> Vec<RankComm> {
        let mut comms: Vec<RankComm> = Reducer::for_ranks(ranks)
            .into_iter()
            .enumerate()
            .map(|(rank, reducer)| RankComm {
                rank,
                backend: Backend::InProcess(InProcessLinks {
                    halo_out: Vec::new(),
                    halo_in: Vec::new(),
                    recovery: Vec::new(),
                    reducer,
                }),
                collectives: std::cell::Cell::new(0),
            })
            .collect();
        fn links(comm: &mut RankComm) -> &mut InProcessLinks {
            match &mut comm.backend {
                Backend::InProcess(l) => l,
                Backend::Process(_) => unreachable!("for_ranks builds in-process endpoints"),
            }
        }
        // One channel per (sender, receiver) pair with a non-empty halo.
        for receiver_rank in 0..ranks {
            let mut sources: Vec<(usize, Vec<usize>)> = plan
                .needs_of(receiver_rank)
                .iter()
                .map(|(&s, cols)| (s, cols.clone()))
                .collect();
            sources.sort_unstable_by_key(|(s, _)| *s);
            for (sender_rank, cols) in sources {
                let (tx, rx) = channel();
                links(&mut comms[sender_rank])
                    .halo_out
                    .push((receiver_rank, cols.clone(), tx));
                links(&mut comms[receiver_rank])
                    .halo_in
                    .push((sender_rank, cols, rx));
            }
        }
        // Recovery channels: one bidirectional pair per unordered neighbour
        // pair with halo traffic in either direction, so a recovering rank can
        // request the off-diagonal contributions of its interpolation from any
        // rank its stencil reaches.
        for r in 0..ranks {
            for s in plan.neighbours_of(r) {
                if s <= r {
                    continue;
                }
                let (r_to_s_tx, r_to_s_rx) = channel();
                let (s_to_r_tx, s_to_r_rx) = channel();
                links(&mut comms[r])
                    .recovery
                    .push((s, r_to_s_tx, s_to_r_rx));
                links(&mut comms[s])
                    .recovery
                    .push((r, s_to_r_tx, r_to_s_rx));
            }
        }
        for comm in &mut comms {
            links(comm)
                .recovery
                .sort_unstable_by_key(|(peer, _, _)| *peer);
        }
        comms
    }

    /// Wraps a connected process-backend endpoint (see
    /// [`crate::process::connect_mesh`]) as this rank's [`RankComm`].
    ///
    /// The halo send/receive lists and the recovery neighbourhood are derived
    /// from `plan` exactly as [`RankComm::for_ranks`] derives them, so the
    /// two backends move the same values in the same order.
    pub fn over_process(plan: &HaloPlan, endpoint: crate::process::ProcessEndpoint) -> RankComm {
        let rank = endpoint.rank();
        RankComm {
            rank,
            backend: Backend::Process(Box::new(ProcessLinks::new(plan, endpoint))),
            collectives: std::cell::Cell::new(0),
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Ships this rank's owned entries of `full` to every peer that needs
    /// them, then scatters the received remote entries back into `full`.
    ///
    /// `full` is this rank's private full-length working copy of the vector;
    /// only its owned range is authoritative before the call, and exactly the
    /// halo entries referenced by its rows are valid after it.
    pub fn exchange_halo(&self, full: &mut [f64]) -> Result<(), CommError> {
        let _probe = feir_trace::span(feir_trace::Phase::Halo);
        match &self.backend {
            Backend::InProcess(links) => {
                for (peer, cols, tx) in &links.halo_out {
                    let payload: Vec<f64> = cols.iter().map(|&c| full[c]).collect();
                    tx.send(payload).map_err(|_| CommError::Disconnected {
                        peer: Some(*peer),
                        during: "halo send",
                    })?;
                }
                for (peer, cols, rx) in &links.halo_in {
                    let payload = rx.recv().map_err(|_| CommError::Disconnected {
                        peer: Some(*peer),
                        during: "halo receive",
                    })?;
                    debug_assert_eq!(payload.len(), cols.len());
                    for (&c, v) in cols.iter().zip(payload) {
                        full[c] = v;
                    }
                }
                Ok(())
            }
            Backend::Process(links) => links.exchange_halo(full),
        }
    }

    /// Global sum of `local` over all ranks (see [`Reducer::allreduce_sum`]).
    pub fn allreduce_sum(&self, local: f64) -> Result<f64, CommError> {
        let _probe = feir_trace::span(feir_trace::Phase::Allreduce);
        self.start_allreduce(local)?.finish()
    }

    /// Starts a split-phase allreduce (see [`Reducer::start_allreduce`]):
    /// post the partial now, overlap local work with the reduction, collect
    /// the sum with [`PendingAllreduce::finish`].
    pub fn start_allreduce(&self, local: f64) -> Result<PendingAllreduce<'_>, CommError> {
        let _probe = feir_trace::span(feir_trace::Phase::AllreducePost);
        self.collectives.set(self.collectives.get() + 1);
        match &self.backend {
            Backend::InProcess(links) => links.reducer.post_scalar(local)?,
            Backend::Process(links) => links.post_scalar(local)?,
        }
        Ok(PendingAllreduce { comm: self, local })
    }

    /// Blocking vector allreduce (see [`Reducer::allreduce_vec`]): all of an
    /// iteration's scalars in one collective.
    pub fn allreduce_vec(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        let _probe = feir_trace::span(feir_trace::Phase::Allreduce);
        self.start_allreduce_vec(local)?.finish()
    }

    /// Starts a split-phase vector allreduce (see
    /// [`Reducer::start_allreduce_vec`]); the merged-reduction solvers keep
    /// it in flight across the halo exchange and the matvec.
    pub fn start_allreduce_vec(
        &self,
        local: Vec<f64>,
    ) -> Result<PendingVecAllreduce<'_>, CommError> {
        let _probe = feir_trace::span(feir_trace::Phase::AllreducePost);
        self.collectives.set(self.collectives.get() + 1);
        let local = match &self.backend {
            Backend::InProcess(links) => links.reducer.post_vec(local)?,
            Backend::Process(links) => links.post_vec(local)?,
        };
        Ok(PendingVecAllreduce { comm: self, local })
    }

    /// Number of collectives this endpoint has entered (scalar and vector,
    /// blocking and split-phase, including [`RankComm::fault_flag`]). Halo
    /// and recovery exchanges are point-to-point and do not count.
    pub fn collectives(&self) -> u64 {
        self.collectives.get()
    }

    /// Elastic-mesh rejoin (process backend only): re-links the failed peer
    /// (when `failed` is `Some`; a respawned newcomer passes `None`), then
    /// parks at the rejoin barrier until every rank of the new mesh epoch
    /// has arrived. `iteration` is the iteration this rank had reached;
    /// returns the barrier's agreed resume iteration (the maximum across
    /// ranks). See `crate::elastic` for the repair protocol layered on
    /// top.
    pub fn rejoin(&self, failed: Option<usize>, iteration: u64) -> Result<u64, CommError> {
        match &self.backend {
            Backend::InProcess(_) => Err(CommError::Protocol(
                "rank elasticity requires the process transport".into(),
            )),
            Backend::Process(links) => links.rejoin(failed, iteration),
        }
    }

    /// Global "did anyone fault?" indicator, built on the deterministic sum
    /// allreduce. Every rank contributes its local count of freshly
    /// discovered losses; the recovery round only runs when the result is
    /// true, so the fault-free path pays one scalar reduction and no data
    /// movement.
    pub fn fault_flag(&self, local_faults: usize) -> Result<bool, CommError> {
        Ok(self.allreduce_sum(local_faults as f64)? > 0.0)
    }

    /// The ranks this rank can exchange recovery data with (its halo
    /// neighbours), in ascending order.
    pub fn recovery_peers(&self) -> Vec<usize> {
        match &self.backend {
            Backend::InProcess(links) => links.recovery.iter().map(|(peer, _, _)| *peer).collect(),
            Backend::Process(links) => links.recovery_peers().to_vec(),
        }
    }

    /// One collective cross-rank recovery round (see [`RecoveryMsg`]).
    ///
    /// `requests` maps a peer rank to the sorted global indices (owned by
    /// that peer) whose current values this rank needs for its interpolation;
    /// peers absent from the map receive an empty request. `data` is this
    /// rank's full-length working buffer: its owned range answers incoming
    /// requests, and the fetched remote values are scattered into it before
    /// the call returns. `unserviceable` lists (sorted) the global indices
    /// this rank owns but cannot vouch for this round — the rows of its own
    /// freshly scrubbed pages; incoming requests for them are answered with
    /// the blank value and flagged invalid. Returns the number of values
    /// fetched across rank boundaries and the sorted fetched indices whose
    /// owner flagged them invalid (the requester must not build an "exact"
    /// reconstruction on those).
    ///
    /// Every rank must call this the same number of times in the same order
    /// (it is a neighbourhood collective); a healthy rank simply passes an
    /// empty request map. Requests for peers that are not halo neighbours
    /// are rejected, as no channel exists to serve them.
    pub fn recovery_exchange(
        &self,
        requests: &HashMap<usize, Vec<usize>>,
        data: &mut [f64],
        unserviceable: &[usize],
    ) -> Result<(usize, Vec<usize>), CommError> {
        self.complete_recovery_exchange(requests, data, unserviceable, false)
    }

    /// Phase 1 of [`RankComm::recovery_exchange`] in isolation: post this
    /// rank's (possibly empty) requests to every recovery peer and return
    /// immediately, without serving incoming requests or collecting replies.
    ///
    /// This is the AFEIR in-window prefetch hook: a rank that already knows
    /// its round-1 requests posts them while the fault-flag / merged-scalar
    /// reduction is still in flight, so the peers' answers overlap the
    /// reduction wait. The caller must later finish the round with
    /// [`RankComm::complete_recovery_exchange`] passing `posted = true` and
    /// the *same* request map, or the neighbourhood deadlocks.
    pub fn post_recovery_requests(
        &self,
        requests: &HashMap<usize, Vec<usize>>,
    ) -> Result<(), CommError> {
        match &self.backend {
            Backend::InProcess(links) => {
                // A request outside the neighbourhood has no channel to travel
                // on and would otherwise be dropped silently — reject it
                // loudly instead.
                assert!(
                    requests
                        .keys()
                        .all(|peer| links.recovery.iter().any(|(p, _, _)| p == peer)),
                    "recovery request targets a rank outside the halo neighbourhood"
                );
                for (peer, tx, _) in &links.recovery {
                    let indices = requests.get(peer).cloned().unwrap_or_default();
                    tx.send(RecoveryMsg::Request(indices)).map_err(|_| {
                        CommError::Disconnected {
                            peer: Some(*peer),
                            during: "recovery request",
                        }
                    })?;
                }
                Ok(())
            }
            Backend::Process(links) => links.post_recovery_requests(requests),
        }
    }

    /// Phases 2–3 of [`RankComm::recovery_exchange`]: serve the peers'
    /// incoming requests from `data` and scatter their replies back into it.
    /// When `posted` is false the requests are posted first (making the call
    /// equivalent to [`RankComm::recovery_exchange`]); when true the caller
    /// already posted this exact `requests` map via
    /// [`RankComm::post_recovery_requests`].
    pub fn complete_recovery_exchange(
        &self,
        requests: &HashMap<usize, Vec<usize>>,
        data: &mut [f64],
        unserviceable: &[usize],
        posted: bool,
    ) -> Result<(usize, Vec<usize>), CommError> {
        debug_assert!(
            unserviceable.windows(2).all(|w| w[0] < w[1]),
            "unserviceable indices must be sorted"
        );
        if !posted {
            self.post_recovery_requests(requests)?;
        }
        match &self.backend {
            Backend::InProcess(links) => {
                // Phase 2: answer each incoming request from the owned data,
                // flagging the entries this rank cannot vouch for.
                for (peer, tx, rx) in &links.recovery {
                    match rx.recv().map_err(|_| CommError::Disconnected {
                        peer: Some(*peer),
                        during: "recovery request receive",
                    })? {
                        RecoveryMsg::Request(indices) => {
                            let values: Vec<f64> = indices.iter().map(|&i| data[i]).collect();
                            let valid: Vec<bool> = indices
                                .iter()
                                .map(|i| unserviceable.binary_search(i).is_err())
                                .collect();
                            tx.send(RecoveryMsg::Reply { values, valid }).map_err(|_| {
                                CommError::Disconnected {
                                    peer: Some(*peer),
                                    during: "recovery reply",
                                }
                            })?;
                        }
                        _ => {
                            return Err(CommError::Protocol(format!(
                                "unexpected message from rank {peer} before its request"
                            )))
                        }
                    }
                }
                // Phase 3: scatter the fetched values into the working buffer.
                let mut fetched = 0;
                let mut invalid = Vec::new();
                for (peer, _, rx) in &links.recovery {
                    match rx.recv().map_err(|_| CommError::Disconnected {
                        peer: Some(*peer),
                        during: "recovery reply receive",
                    })? {
                        RecoveryMsg::Reply { values, valid } => {
                            let indices = requests.get(peer).map(Vec::as_slice).unwrap_or(&[]);
                            debug_assert_eq!(values.len(), indices.len());
                            debug_assert_eq!(valid.len(), indices.len());
                            for ((&i, v), ok) in indices.iter().zip(values).zip(valid) {
                                data[i] = v;
                                fetched += 1;
                                if !ok {
                                    invalid.push(i);
                                }
                            }
                        }
                        _ => {
                            return Err(CommError::Protocol(format!(
                                "unexpected message from rank {peer} instead of its reply"
                            )))
                        }
                    }
                }
                invalid.sort_unstable();
                Ok((fetched, invalid))
            }
            Backend::Process(links) => {
                links.complete_recovery_exchange(requests, data, unserviceable)
            }
        }
    }

    /// Downward wave of the coupled cross-rank recovery round: every rank
    /// receives the [`RecoveryMsg::CoupledGather`] offers of its
    /// *higher-ranked* halo neighbours (in ascending peer order), merges its
    /// own offer in, forwards the merged offer to every *lower-ranked*
    /// neighbour, and returns the merged view.
    ///
    /// `rows` are this rank's `(global row, rhs value)` lost-row offers and
    /// `support` its `(global col, value, valid)` surviving stencil entries
    /// outside the offered row set. Merging deduplicates rows by row id and
    /// support by column id, keeping the first occurrence in
    /// own-then-ascending-peer order; since every offerer copies a value from
    /// its owner, duplicates are bitwise-identical and the merge is
    /// deterministic. Both returned lists are sorted by their global id.
    ///
    /// Like [`RankComm::recovery_exchange`] this is a neighbourhood
    /// collective: every rank must call it the same number of times in the
    /// same order, passing empty offers when it has nothing to contribute.
    pub fn coupled_gather_wave(
        &self,
        rows: &[(usize, f64)],
        support: &[(usize, f64, bool)],
    ) -> Result<CoupledGatherView, CommError> {
        let mut rows: Vec<(usize, f64)> = rows.to_vec();
        let mut support: Vec<(usize, f64, bool)> = support.to_vec();
        match &self.backend {
            Backend::InProcess(links) => {
                // Receive the offers flowing down from every higher peer
                // (links.recovery is sorted ascending, so this order is the
                // same on every rank).
                for (peer, _, rx) in &links.recovery {
                    if *peer < self.rank {
                        continue;
                    }
                    match rx.recv().map_err(|_| CommError::Disconnected {
                        peer: Some(*peer),
                        during: "coupled gather receive",
                    })? {
                        RecoveryMsg::CoupledGather {
                            rows: peer_rows,
                            support: peer_support,
                        } => {
                            rows.extend(peer_rows);
                            support.extend(peer_support);
                        }
                        _ => {
                            return Err(CommError::Protocol(format!(
                                "unexpected message from rank {peer} during coupled gather"
                            )))
                        }
                    }
                }
                merge_coupled_offer(&mut rows, &mut support);
                // Forward the merged view to every lower peer.
                for (peer, tx, _) in &links.recovery {
                    if *peer > self.rank {
                        continue;
                    }
                    tx.send(RecoveryMsg::CoupledGather {
                        rows: rows.clone(),
                        support: support.clone(),
                    })
                    .map_err(|_| CommError::Disconnected {
                        peer: Some(*peer),
                        during: "coupled gather send",
                    })?;
                }
                Ok((rows, support))
            }
            Backend::Process(links) => links.coupled_gather_wave(rows, support),
        }
    }

    /// Upward wave closing the coupled cross-rank recovery round: every rank
    /// receives the [`RecoveryMsg::CoupledResult`] entries of its
    /// *lower-ranked* halo neighbours (in ascending peer order), merges its
    /// own solved entries in, relays the merged set to every *higher-ranked*
    /// neighbour, and returns the merged `(global row, value)` list sorted by
    /// row. The caller installs the rows it owns (or needs as halo input)
    /// from the returned set.
    ///
    /// Deduplication keeps the first occurrence in own-then-ascending-peer
    /// order; a row is only ever solved by the lowest rank owning part of
    /// its component, so duplicates are relays of the same solution and the
    /// merge is deterministic. A neighbourhood collective with the same
    /// call-discipline as [`RankComm::coupled_gather_wave`].
    pub fn coupled_result_wave(
        &self,
        entries: &[(usize, f64)],
    ) -> Result<Vec<(usize, f64)>, CommError> {
        let mut entries: Vec<(usize, f64)> = entries.to_vec();
        match &self.backend {
            Backend::InProcess(links) => {
                for (peer, _, rx) in &links.recovery {
                    if *peer > self.rank {
                        continue;
                    }
                    match rx.recv().map_err(|_| CommError::Disconnected {
                        peer: Some(*peer),
                        during: "coupled result receive",
                    })? {
                        RecoveryMsg::CoupledResult {
                            entries: peer_entries,
                        } => entries.extend(peer_entries),
                        _ => {
                            return Err(CommError::Protocol(format!(
                                "unexpected message from rank {peer} during coupled result"
                            )))
                        }
                    }
                }
                entries.sort_by_key(|&(row, _)| row);
                entries.dedup_by_key(|&mut (row, _)| row);
                for (peer, tx, _) in &links.recovery {
                    if *peer < self.rank {
                        continue;
                    }
                    tx.send(RecoveryMsg::CoupledResult {
                        entries: entries.clone(),
                    })
                    .map_err(|_| CommError::Disconnected {
                        peer: Some(*peer),
                        during: "coupled result send",
                    })?;
                }
                Ok(entries)
            }
            Backend::Process(links) => links.coupled_result_wave(entries),
        }
    }
}

/// Sorts and deduplicates a merged coupled offer in place. Rust's sort is
/// stable, so after a stable sort by global id `dedup` keeps the first
/// occurrence in the pre-sort (own-then-ascending-peer) order.
fn merge_coupled_offer(rows: &mut Vec<(usize, f64)>, support: &mut Vec<(usize, f64, bool)>) {
    rows.sort_by_key(|&(row, _)| row);
    rows.dedup_by_key(|&mut (row, _)| row);
    support.sort_by_key(|&(col, _, _)| col);
    support.dedup_by_key(|&mut (col, _, _)| col);
}

/// An in-flight split-phase allreduce on a [`RankComm`] (see
/// [`RankComm::start_allreduce`]).
///
/// The contribution has already been posted; dropping the handle without
/// calling [`PendingAllreduce::finish`] would deadlock the collective on the
/// other ranks, hence the `must_use`.
#[must_use = "finish() completes the collective; dropping the handle deadlocks the peers"]
#[derive(Debug)]
pub struct PendingAllreduce<'a> {
    comm: &'a RankComm,
    local: f64,
}

impl PendingAllreduce<'_> {
    /// Completes the collective and returns the global sum. On the root this
    /// performs the rank-ordered gather + broadcast; on a leaf it blocks on
    /// the broadcast of the total.
    pub fn finish(self) -> Result<f64, CommError> {
        let _probe = feir_trace::span(feir_trace::Phase::AllreduceWait);
        match &self.comm.backend {
            Backend::InProcess(links) => links.reducer.finish_scalar(self.local),
            Backend::Process(links) => links.finish_scalar(self.local),
        }
    }
}

/// An in-flight split-phase *vector* allreduce on a [`RankComm`] (see
/// [`RankComm::start_allreduce_vec`]).
#[must_use = "finish() completes the collective; dropping the handle deadlocks the peers"]
#[derive(Debug)]
pub struct PendingVecAllreduce<'a> {
    comm: &'a RankComm,
    /// The root's own partial (leaves posted theirs at start).
    local: Vec<f64>,
}

impl PendingVecAllreduce<'_> {
    /// Completes the collective and returns the component-wise global sums.
    /// On the root this performs the rank-ordered gather + broadcast; on a
    /// leaf it blocks on the broadcast of the totals.
    pub fn finish(self) -> Result<Vec<f64>, CommError> {
        let _probe = feir_trace::span(feir_trace::Phase::AllreduceWait);
        match &self.comm.backend {
            Backend::InProcess(links) => links.reducer.finish_vec(self.local),
            Backend::Process(links) => links.finish_vec(self.local),
        }
    }
}

/// Distributed SpMV `y = A·x` over `ranks` simulated ranks: one halo exchange
/// followed by each rank's local block-row product.
///
/// This is the communication round-trip of one CG iteration in isolation,
/// used by tests to validate the halo plan against the serial kernel; a comm
/// failure (impossible unless a rank thread dies) panics here rather than
/// propagating.
pub fn distributed_spmv(a: &CsrMatrix, x: &[f64], ranks: usize) -> Vec<f64> {
    assert_eq!(x.len(), a.cols(), "distributed_spmv: x has wrong length");
    assert_eq!(
        a.rows(),
        a.cols(),
        "distributed_spmv: matrix must be square"
    );
    let ranks = effective_ranks(a.rows(), ranks);
    let partition = RankPartition::new(a.rows(), ranks);
    let plan = HaloPlan::build(a, &partition);
    let comms = RankComm::for_ranks(&plan, ranks);

    let mut y = vec![0.0; a.rows()];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranks);
        for comm in comms {
            let partition = partition.clone();
            let handle = scope.spawn(move || {
                let rank = comm.rank();
                let own = partition.range(rank);
                // Private working copy: authoritative only on the owned range.
                let mut full = vec![0.0; a.cols()];
                full[own.clone()].copy_from_slice(&x[own.clone()]);
                comm.exchange_halo(&mut full).expect("halo exchange failed");
                let mut local = vec![0.0; own.len()];
                a.spmv_rows(own.start, own.end, &full, &mut local);
                (rank, local)
            });
            handles.push(handle);
        }
        for handle in handles {
            let (rank, local) = handle.join().expect("rank thread panicked");
            y[partition.range(rank)].copy_from_slice(&local);
        }
    });
    y
}

/// Distributed dot product `⟨x, y⟩` over `ranks` simulated ranks via the
/// rank-ordered allreduce.
pub fn distributed_dot(x: &[f64], y: &[f64], ranks: usize) -> f64 {
    assert_eq!(x.len(), y.len(), "distributed_dot: length mismatch");
    let ranks = effective_ranks(x.len(), ranks);
    let partition = RankPartition::new(x.len(), ranks);
    let comms = RankComm::for_ranks(&HaloPlan::empty(ranks), ranks);
    let mut result = 0.0;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranks);
        for comm in comms {
            let range = partition.range(comm.rank());
            let handle = scope.spawn(move || {
                let local = feir_sparse::vecops::dot(&x[range.clone()], &y[range]);
                comm.allreduce_sum(local).expect("allreduce failed")
            });
            handles.push(handle);
        }
        for handle in handles {
            result = handle.join().expect("rank thread panicked");
        }
    });
    result
}

/// Clamps the requested rank count to something the problem can sustain.
pub(crate) fn effective_ranks(n: usize, ranks: usize) -> usize {
    ranks.max(1).min(n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::poisson_2d;

    #[test]
    fn halo_plan_of_poisson_is_the_grid_boundary() {
        let a = poisson_2d(8); // 64 rows, rows couple to ±1 and ±8.
        let partition = RankPartition::new(a.rows(), 4);
        let plan = HaloPlan::build(&a, &partition);
        // Interior ranks exchange one grid line (8 entries) with each
        // neighbour plus the single off-by-one entry of the 5-point stencil.
        for r in 0..4 {
            for (&peer, cols) in plan.needs_of(r) {
                assert_ne!(peer, r);
                assert!(!cols.is_empty());
                assert!(cols.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
                for &c in cols {
                    assert_eq!(partition.owner_of(c), peer);
                }
            }
        }
        assert!(plan.halo_volume() > 0);
        // Sends mirror needs exactly.
        for r in 0..4 {
            for (&dest, cols) in plan.sends_of(r) {
                assert_eq!(plan.needs_of(dest).get(&r), Some(cols));
            }
        }
    }

    #[test]
    fn recovery_exchange_fetches_cross_boundary_values() {
        let a = poisson_2d(8);
        let n = a.rows();
        let ranks = 4;
        let partition = RankPartition::new(n, ranks);
        let plan = HaloPlan::build(&a, &partition);
        let comms = RankComm::for_ranks(&plan, ranks);
        // Rank 2 lost a page and requests every halo entry it references;
        // the other ranks participate with empty requests.
        let fetched: Vec<(usize, usize, Vec<f64>)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for comm in comms {
                let partition = partition.clone();
                let plan = plan.clone();
                let handle = scope.spawn(move || {
                    let rank = comm.rank();
                    let own = partition.range(rank);
                    let mut data = vec![f64::NAN; n];
                    for i in own {
                        data[i] = i as f64;
                    }
                    let requests: HashMap<usize, Vec<usize>> = if rank == 2 {
                        plan.needs_of(2).clone()
                    } else {
                        HashMap::new()
                    };
                    let (count, invalid) = comm
                        .recovery_exchange(&requests, &mut data, &[])
                        .expect("recovery exchange failed");
                    assert!(invalid.is_empty(), "no owner declared pages lost");
                    let values: Vec<f64> = requests
                        .values()
                        .flat_map(|cols| cols.iter().map(|&c| data[c] - c as f64))
                        .collect();
                    (rank, count, values)
                });
                handles.push(handle);
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        });
        for (rank, count, deltas) in fetched {
            if rank == 2 {
                assert!(count > 0, "rank 2 fetched nothing");
                assert!(
                    deltas.iter().all(|d| *d == 0.0),
                    "fetched values disagree with the owner's data"
                );
            } else {
                assert_eq!(count, 0, "healthy rank {rank} fetched data");
            }
        }
    }

    #[test]
    fn recovery_exchange_flags_values_the_owner_lost() {
        let a = poisson_2d(8);
        let n = a.rows();
        let ranks = 2;
        let partition = RankPartition::new(n, ranks);
        let plan = HaloPlan::build(&a, &partition);
        let comms = RankComm::for_ranks(&plan, ranks);
        // Rank 0 requests its halo from rank 1, but rank 1 declares the
        // first rows it owns lost: rank 0 must get them flagged invalid.
        let results: Vec<(usize, Vec<usize>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let partition = partition.clone();
                    let plan = plan.clone();
                    scope.spawn(move || {
                        let rank = comm.rank();
                        let own = partition.range(rank);
                        let mut data = vec![0.0; n];
                        for i in own.clone() {
                            data[i] = i as f64;
                        }
                        let requests: HashMap<usize, Vec<usize>> = if rank == 0 {
                            plan.needs_of(0).clone()
                        } else {
                            HashMap::new()
                        };
                        let lost: Vec<usize> = if rank == 1 {
                            (own.start..own.start + 4).collect()
                        } else {
                            Vec::new()
                        };
                        let (_, invalid) = comm
                            .recovery_exchange(&requests, &mut data, &lost)
                            .expect("recovery exchange failed");
                        (rank, invalid)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        });
        let boundary = partition.range(1).start;
        for (rank, invalid) in results {
            if rank == 0 {
                // Rank 0's 5-point halo includes the first row rank 1 owns,
                // which rank 1 lost.
                assert!(invalid.contains(&boundary), "lost row not flagged");
                assert!(invalid.windows(2).all(|w| w[0] < w[1]), "sorted");
            } else {
                assert!(invalid.is_empty());
            }
        }
    }

    #[test]
    fn fault_flag_is_a_global_or() {
        let ranks = 3;
        let comms = RankComm::for_ranks(&HaloPlan::empty(ranks), ranks);
        let flags: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    scope.spawn(move || {
                        // Only rank 1 reports a fault; everyone must see it.
                        let first = comm.fault_flag(usize::from(comm.rank() == 1)).unwrap();
                        let second = comm.fault_flag(0).unwrap();
                        (first, second)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .flat_map(|(a, b)| [a, b])
                .collect()
        });
        // First round: all true. Second round: all false.
        assert_eq!(flags.iter().filter(|f| **f).count(), ranks);
    }

    #[test]
    fn split_phase_allreduce_matches_blocking_bitwise() {
        // Irrational-ish partials so the accumulation order matters; the
        // split-phase handle must produce bit-for-bit the blocking result,
        // with arbitrary local work between start and finish.
        for ranks in [1usize, 2, 4] {
            let blocking: Vec<f64> = {
                let reducers = Reducer::for_ranks(ranks);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = reducers
                        .into_iter()
                        .enumerate()
                        .map(|(rank, reducer)| {
                            scope.spawn(move || {
                                reducer.allreduce_sum(0.1 + rank as f64 * 0.3).unwrap()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            };
            let split: Vec<f64> = {
                let reducers = Reducer::for_ranks(ranks);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = reducers
                        .into_iter()
                        .enumerate()
                        .map(|(rank, reducer)| {
                            scope.spawn(move || {
                                let pending =
                                    reducer.start_allreduce(0.1 + rank as f64 * 0.3).unwrap();
                                // Local work overlapping the reduction wait.
                                let mut acc = 0.0;
                                for i in 0..500 {
                                    acc += (i as f64).sqrt();
                                }
                                assert!(acc > 0.0);
                                pending.finish().unwrap()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            };
            for (u, v) in blocking.iter().zip(&split) {
                assert_eq!(u.to_bits(), v.to_bits(), "{ranks} ranks");
            }
        }
    }

    #[test]
    fn vector_allreduce_matches_scalar_allreduces_bitwise() {
        // Each component of the batched collective must carry exactly the
        // bits a scalar allreduce of the same partials produces.
        for ranks in [1usize, 2, 4] {
            let partial = |rank: usize, j: usize| 0.1 + rank as f64 * 0.3 + j as f64 * 0.7;
            let scalar: Vec<Vec<f64>> = {
                let reducers = Reducer::for_ranks(ranks);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = reducers
                        .into_iter()
                        .enumerate()
                        .map(|(rank, reducer)| {
                            scope.spawn(move || {
                                (0..3)
                                    .map(|j| reducer.allreduce_sum(partial(rank, j)).unwrap())
                                    .collect::<Vec<f64>>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            };
            let vectored: Vec<Vec<f64>> = {
                let reducers = Reducer::for_ranks(ranks);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = reducers
                        .into_iter()
                        .enumerate()
                        .map(|(rank, reducer)| {
                            scope.spawn(move || {
                                let local: Vec<f64> = (0..3).map(|j| partial(rank, j)).collect();
                                let pending = reducer.start_allreduce_vec(local).unwrap();
                                // Local work overlapping the reduction.
                                let mut acc = 0.0;
                                for i in 0..200 {
                                    acc += (i as f64).sqrt();
                                }
                                assert!(acc > 0.0);
                                pending.finish().unwrap()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            };
            for (s, v) in scalar.iter().zip(&vectored) {
                assert_eq!(s.len(), v.len());
                for (a, b) in s.iter().zip(v) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{ranks} ranks");
                }
            }
        }
    }

    #[test]
    fn rank_comm_counts_collectives() {
        let comms = RankComm::for_ranks(&HaloPlan::empty(2), 2);
        let counts: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    scope.spawn(move || {
                        comm.allreduce_sum(1.0).unwrap();
                        let _ = comm.allreduce_vec(vec![1.0, 2.0]).unwrap();
                        comm.fault_flag(0).unwrap();
                        let pending = comm.start_allreduce(0.5).unwrap();
                        pending.finish().unwrap();
                        comm.collectives()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts, vec![4, 4]);
    }

    #[test]
    fn reducer_sums_across_ranks_deterministically() {
        for ranks in [1usize, 2, 5] {
            let reducers = Reducer::for_ranks(ranks);
            let total: f64 = std::thread::scope(|scope| {
                let handles: Vec<_> = reducers
                    .into_iter()
                    .enumerate()
                    .map(|(rank, reducer)| {
                        scope.spawn(move || reducer.allreduce_sum((rank + 1) as f64).unwrap())
                    })
                    .collect();
                let mut totals: Vec<f64> = handles
                    .into_iter()
                    .map(|h| h.join().expect("rank panicked"))
                    .collect();
                let first = totals.pop().unwrap();
                assert!(totals.iter().all(|&t| t == first), "ranks disagree");
                first
            });
            let expected: f64 = (1..=ranks).map(|r| r as f64).sum();
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn dropped_peer_surfaces_as_typed_comm_error() {
        // Rank 1 drops its endpoint without entering the collective; rank 0
        // must observe a CommError::Disconnected, not a panic.
        let mut comms = RankComm::for_ranks(&HaloPlan::empty(2), 2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        drop(c1);
        let err = c0.allreduce_sum(1.0).unwrap_err();
        assert!(
            matches!(err, CommError::Disconnected { .. }),
            "expected Disconnected, got {err:?}"
        );
    }

    #[test]
    fn dropped_halo_peer_surfaces_as_typed_comm_error() {
        let a = poisson_2d(4);
        let partition = RankPartition::new(a.rows(), 2);
        let plan = HaloPlan::build(&a, &partition);
        let mut comms = RankComm::for_ranks(&plan, 2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        drop(c1);
        let mut full = vec![0.0; a.cols()];
        let err = c0.exchange_halo(&mut full).unwrap_err();
        assert!(
            matches!(err, CommError::Disconnected { peer: Some(1), .. }),
            "expected Disconnected from rank 1, got {err:?}"
        );
    }
}
