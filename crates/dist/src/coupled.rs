//! Cross-rank **coupled** exact recovery.
//!
//! When two ranks lose stencil-adjacent pages in the same iteration, neither
//! side can run its exact reconstruction alone: each lost row's relation
//! reads the other rank's lost (blank) entries, so the round-1 recovery
//! exchange flags them invalid and the purely local planner blank-accepts
//! the pages. But the *union* of the lost rows is still a perfectly good
//! coupled system — `A_UU x_U = b_U − g_U − Σ_{c∉U} A_Uc x_c` over the
//! cross-boundary union `U` — as long as every entry the union's stencil
//! reads from outside survives somewhere.
//!
//! This module turns that observation into a deterministic neighbourhood
//! protocol on top of the two wave collectives of [`RankComm`]:
//!
//! 1. each rank computes its **candidate set** (the transitive closure of
//!    its recoverable pages that touch invalid remote entries, see
//!    [`cross_rank_candidates`]) and offers the candidates' rows (with their
//!    surviving rhs values) plus the surviving stencil **support** outside
//!    the candidate rows;
//! 2. the offers merge *down* the rank chain
//!    ([`RankComm::coupled_gather_wave`]), so the lowest-ranked owner of
//!    every coupled component ends up seeing the whole union;
//! 3. that rank — and only that rank, because any other owner still sees an
//!    invalid outside column where the union continues below it — runs the
//!    coupled solve per connected component and ships the reconstructed
//!    entries back *up* ([`RankComm::coupled_result_wave`]);
//! 4. every rank installs the returned entries into its full-length view and
//!    reports which of its own pages are now exactly reconstructed.
//!
//! The solve/skip rule needs no extra arbitration round: a component is
//! solved exactly once because the downward wave gives full visibility only
//! to the component's lowest row-owning rank, while every other owner hits
//! an invalid outside column (the part of the union it cannot see) and
//! skips. Components that genuinely depend on unrecoverable data — e.g. a
//! related-loss page whose residual is also gone — fail the validity check
//! on *every* rank and flow to the honest blank-accept path.

use std::collections::HashMap;
use std::ops::Range;

use feir_recovery::engine::cross_rank_candidates;
use feir_sparse::blocking::BlockPartition;
use feir_sparse::CsrMatrix;

use crate::comm::{CommError, RankComm};
use crate::rank_loop::global_rows;

/// What one coupled cross-rank round achieved on this rank.
#[derive(Debug, Default)]
pub(crate) struct CoupledOutcome {
    /// Sorted local pages whose every row now holds an exact coupled
    /// reconstruction, already installed into the target view.
    pub recovered_pages: Vec<usize>,
    /// Rows and support entries this rank received from its peers across
    /// the two waves (a traffic statistic, not a correctness input).
    pub values_gathered: usize,
}

/// Runs one coupled cross-rank recovery round (both waves — every rank must
/// call this exactly once per faulty iteration, with empty inputs when its
/// own losses do not couple across a boundary).
///
/// `rec` are this rank's recoverable pages of the target vector (related
/// losses already excluded), `own_blank` the sorted global rows this rank
/// scrubbed this round (its round-1 unserviceable set) and `invalid` the
/// sorted fetched indices whose owner flagged them invalid. `rhs_local` is
/// the surviving relation value at each own row (the residual for iterate
/// recovery, the retained matvec image for direction recovery), aligned to
/// `own`. `solve` is the relation's coupled reconstruction over sorted
/// global rows, rhs values at those rows and a full-length view — it sees
/// the gathered union, so it also covers rows owned by other ranks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn coupled_cross_rank_recovery<F>(
    comm: &RankComm,
    a: &CsrMatrix,
    pages: &BlockPartition,
    own: &Range<usize>,
    rec: &[usize],
    own_blank: &[usize],
    invalid: &[usize],
    rhs_local: &[f64],
    target_full: &mut [f64],
    solve: F,
) -> Result<CoupledOutcome, CommError>
where
    F: Fn(&[usize], &[f64], &[f64]) -> Option<Vec<f64>>,
{
    let cand = cross_rank_candidates(a, pages, own.start, rec, invalid);

    // This rank's offer: the candidate rows with their surviving rhs values,
    // plus every stencil column the candidate rows read outside the
    // candidate row set, valued from the (halo- and round-1-patched) view
    // and flagged valid unless this rank blanked it or its owner did.
    let offer_rows: Vec<(usize, f64)> = cand
        .rows
        .iter()
        .map(|&r| (r, rhs_local[r - own.start]))
        .collect();
    let mut offer_support: Vec<(usize, f64, bool)> = Vec::new();
    for &r in &cand.rows {
        let (cols, _) = a.row(r);
        for &c in cols {
            if cand.rows.binary_search(&c).is_ok() {
                continue;
            }
            let valid = if own.contains(&c) {
                own_blank.binary_search(&c).is_err()
            } else {
                invalid.binary_search(&c).is_err()
            };
            offer_support.push((c, target_full[c], valid));
        }
    }
    offer_support.sort_by_key(|&(c, _, _)| c);
    offer_support.dedup_by_key(|&mut (c, _, _)| c);
    let own_offer = offer_rows.len() + offer_support.len();

    // Downward wave: after it, `union_rows` holds every coupled lost row
    // this rank can see (its own plus everything offered above it), sorted.
    let (union_rows, support) = comm.coupled_gather_wave(&offer_rows, &offer_support)?;
    let values_gathered = (union_rows.len() + support.len()).saturating_sub(own_offer);
    let row_ids: Vec<usize> = union_rows.iter().map(|&(r, _)| r).collect();

    // Connected components of the union under stencil adjacency (the full
    // operator is replicated on every rank, so adjacency of remote rows is
    // computable locally).
    let mut uf: Vec<usize> = (0..row_ids.len()).collect();
    for (i, &r) in row_ids.iter().enumerate() {
        let (cols, _) = a.row(r);
        for &c in cols {
            if let Ok(j) = row_ids.binary_search(&c) {
                let (ri, rj) = (find(&mut uf, i), find(&mut uf, j));
                if ri != rj {
                    uf[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }
    let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..row_ids.len() {
        components.entry(find(&mut uf, i)).or_default().push(i);
    }
    let mut roots: Vec<usize> = components.keys().copied().collect();
    roots.sort_unstable();

    // Shared solve view: the full-length target patched with every valid
    // support value outside the union (values for this rank's own healthy
    // range are already authoritative in `target_full` and bitwise-equal to
    // any peer's re-offer of them).
    let is_union = |c: usize| row_ids.binary_search(&c).is_ok();
    let support_valid = |c: usize| -> bool {
        if own.contains(&c) {
            own_blank.binary_search(&c).is_err()
        } else {
            match support.binary_search_by_key(&c, |&(col, _, _)| col) {
                Ok(k) => support[k].2,
                // A column nobody offered and nobody validated: treat as
                // invalid rather than solve on unknown provenance.
                Err(_) => false,
            }
        }
    };
    let mut view = target_full.to_vec();
    for &(c, v, ok) in &support {
        if ok && !own.contains(&c) && !is_union(c) {
            view[c] = v;
        }
    }

    // Solve the components this rank is responsible for: it must own at
    // least one row, and every stencil column the component reads outside
    // the union must be valid — which holds only on the component's lowest
    // row-owning rank (any other owner sees the union's continuation below
    // it as an invalid column and skips, so no component is solved twice).
    let mut solved: Vec<(usize, f64)> = Vec::new();
    for root in roots {
        let comp = &components[&root];
        let comp_rows: Vec<usize> = comp.iter().map(|&i| row_ids[i]).collect();
        if !comp_rows.iter().any(|r| own.contains(r)) {
            continue;
        }
        let solvable = comp_rows.iter().all(|&r| {
            let (cols, _) = a.row(r);
            cols.iter().all(|&c| is_union(c) || support_valid(c))
        });
        if !solvable {
            continue;
        }
        let rhs_at: Vec<f64> = comp.iter().map(|&i| union_rows[i].1).collect();
        if let Some(values) = solve(&comp_rows, &rhs_at, &view) {
            solved.extend(comp_rows.iter().copied().zip(values));
        }
    }

    // Upward wave: every solved entry reaches every rank that offered (or
    // neighbours) part of its component; install what came back.
    let final_entries = comm.coupled_result_wave(&solved)?;
    for &(r, v) in &final_entries {
        target_full[r] = v;
    }
    let mut recovered_pages = Vec::new();
    for &p in &cand.pages {
        let all_valued = global_rows(own.start, pages, p).all(|r| {
            final_entries
                .binary_search_by_key(&r, |&(row, _)| row)
                .is_ok()
        });
        if all_valued {
            recovered_pages.push(p);
        }
    }
    Ok(CoupledOutcome {
        recovered_pages,
        values_gathered,
    })
}

/// Union-find root with path halving.
fn find(uf: &mut [usize], mut i: usize) -> usize {
    while uf[i] != i {
        uf[i] = uf[uf[i]];
        i = uf[i];
    }
    i
}
