//! Process-backed transport: each rank is a real OS process, connected in a
//! full mesh over Unix domain sockets (TCP fallback) and speaking the
//! versioned `feir-wire` frame protocol — hardened (PR 7) by a reliability
//! sublayer and an elastic rejoin protocol.
//!
//! # Topology and handshake
//!
//! Every rank binds a listener (`{dir}/rank{r}.sock` for UDS, port
//! `base + r` for TCP), then **connects** to every lower rank and **accepts**
//! from every higher rank — a deadlock-free rendezvous because the
//! connect-to targets form a DAG. Connection attempts retry with exponential
//! backoff until [`MeshOptions::connect_timeout`], so ranks may start in any
//! order. Both sides of every link exchange a `Hello { rank, ranks, epoch }`
//! frame; the frame header carries the schema version, so a version skew is
//! rejected at the handshake as [`feir_wire::WireError::VersionMismatch`],
//! and an epoch skew (a stale pre-respawn worker) as
//! [`CommError::Protocol`].
//!
//! # Reliability sublayer
//!
//! After the handshake every link switches to the 13-byte chaos envelope of
//! [`feir_wire::chaos`]: each inner wire frame travels as a numbered data
//! record, a per-link reader thread reassembles records **in sequence order**
//! (dropping duplicates, holding reordered records back) and acknowledges
//! cumulatively, and the sender retransmits the oldest unacknowledged record
//! with exponential backoff until [`MeshOptions::max_retries`] is exhausted.
//! Because delivery is exactly-once-in-order, the message sequence the
//! solver observes over a faulty link is *identical* to the clean one — a
//! lossy-mesh solve is therefore bitwise-identical to a clean-mesh solve.
//! Exhausted retries degrade to [`CommError::Timeout`]; a corrupted frame
//! with retries disabled surfaces the underlying [`feir_wire::WireError`].
//!
//! Fault injection itself lives in [`MeshOptions::chaos`]: a deterministic,
//! seeded [`feir_wire::chaos::FaultPlan`] per directed link (see
//! [`ChaosConfig::plan_for`]), so two runs with the same config misbehave
//! identically. One cost of the sublayer: halo payloads are decoded from the
//! reassembly queue rather than scattered zero-copy out of the socket
//! buffer (the PR 6 fast path) — the copy is the price of retransmission.
//!
//! # Failure model and elasticity
//!
//! A rank that dies closes all of its sockets. Peers observe the close as an
//! EOF and surface it as [`CommError::Disconnected`] — never a panic. A rank
//! that errors out drops its endpoint before reporting, so the disconnect
//! cascades through the mesh; an optional per-read deadline
//! ([`MeshOptions::read_timeout`], default 30 s) backstops silently wedged
//! peers as [`CommError::Timeout`].
//!
//! With [`MeshOptions::elastic`] the story continues past the disconnect:
//! [`WorkerHandles::respawn_rank`] restarts the dead worker under a bumped
//! *epoch*, survivors re-handshake it ([`ProcessEndpoint::relink`]: the
//! newcomer re-dials lower ranks, higher ranks dial its epoch-qualified
//! listener address) and every rank meets at a rejoin barrier that agrees on
//! the resume iteration. The rank loops then treat the newcomer's pages as
//! lost and rebuild them through the existing recovery collective (see
//! `crate::elastic`).
//!
//! # Determinism
//!
//! The collectives gather per-rank partials and fold them **in rank order**
//! with the very same arithmetic as the in-process backend (see
//! [`crate::comm`]), so a solve over this transport is bitwise identical to
//! the thread-backed one — chaos or not, as long as every fault is absorbed
//! by the reliability sublayer.
//!
//! # Worker processes
//!
//! [`spawn_workers`]/[`solve_with_processes`] launch one worker executable
//! per rank (the `feir-rank-worker` binary, or any process that calls
//! [`worker_main`]), parameterised through `FEIR_WORKER_*` environment
//! variables — including the full [`MeshOptions`] surface and the resilient
//! path ([`WorkerOptions`]). Each worker rebuilds the deterministic problem
//! (`poisson_2d(grid)` + `manufactured_rhs(seed)`), joins the mesh, runs its
//! rank loop and reports a `RankResult` (or typed `RankError`) wire frame on
//! stdout. Malformed `FEIR_WORKER_*` values are hard errors: the worker
//! refuses to start rather than silently running defaults.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use feir_recovery::RecoveryPolicy;
use feir_sparse::{SpmvFormat, ENV_SPMV_FORMAT};
use feir_wire::chaos::{
    parse_envelope, ChaosLink, FaultPlan, FaultRates, LinkStats, ENVELOPE_LEN, ENV_ACK, ENV_DATA,
};
use feir_wire::{FrameReader, Message, RankErrorKind, Tag, WireError};

use crate::cg::DistSolveResult;
use crate::comm::{fold_partials_rank_ordered, CommError, HaloPlan, RankComm};
use crate::kernels;
use crate::partition::RankPartition;

/// How the rank mesh is carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// Unix domain sockets: rank `r` listens on `{dir}/rank{r}.sock`
    /// (epoch `e > 0` respawns on `{dir}/rank{r}.e{e}.sock`).
    /// The default — lowest latency, no port allocation.
    Uds {
        /// Rendezvous directory holding the per-rank socket files.
        dir: PathBuf,
    },
    /// TCP loopback fallback: rank `r` listens on
    /// `127.0.0.1:{base_port + epoch·ranks + r}` — leave `ranks` ports of
    /// headroom per expected respawn.
    Tcp {
        /// First port of the contiguous per-rank port range.
        base_port: u16,
    },
}

/// Deterministic transport fault injection for a whole mesh: a seed plus
/// per-kind frame-fault rates, expanded into one directed-link
/// [`FaultPlan`] per `(sender, receiver)` pair by [`ChaosConfig::plan_for`].
///
/// The textual form (round-tripped by `Display`/[`ChaosConfig::parse`], and
/// carried by the `FEIR_WORKER_CHAOS` environment variable) is a
/// comma-separated `key=value` list:
///
/// ```text
/// seed=42,drop=0.05,dup=0.02,delay=0.02,corrupt=0.01,trunc=0.01,all_attempts=0
/// ```
///
/// All keys are optional; rates must lie in `[0, 1]` and sum to at most 1.
/// `all_attempts=1` lets faults hit retransmissions too (used by the
/// exhausted-retry tests — with it, bitwise identity is *not* promised).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosConfig {
    /// Seed mixed into every per-link fault plan.
    pub seed: u64,
    /// Per-kind frame fault rates, each in `[0, 1]`.
    pub rates: FaultRates,
    /// When `true`, retransmissions can be faulted too (`all_attempts=1`);
    /// the default `false` faults only first attempts, keeping every fault
    /// recoverable.
    pub fault_retransmits: bool,
}

impl ChaosConfig {
    /// Parses the comma-separated `key=value` form (see the type docs).
    /// Unknown keys, out-of-range rates and malformed numbers are errors.
    pub fn parse(s: &str) -> Result<ChaosConfig, String> {
        fn rate(v: &str) -> Option<f64> {
            let v: f64 = v.trim().parse().ok()?;
            (0.0..=1.0).contains(&v).then_some(v)
        }
        let mut cfg = ChaosConfig::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos entry {part:?} is not key=value"))?;
            let bad = || format!("chaos entry {part:?} has an invalid value");
            match key.trim() {
                "seed" => cfg.seed = value.trim().parse().map_err(|_| bad())?,
                "drop" => cfg.rates.drop = rate(value).ok_or_else(bad)?,
                "dup" => cfg.rates.duplicate = rate(value).ok_or_else(bad)?,
                "delay" => cfg.rates.delay = rate(value).ok_or_else(bad)?,
                "corrupt" => cfg.rates.corrupt = rate(value).ok_or_else(bad)?,
                "trunc" => cfg.rates.truncate = rate(value).ok_or_else(bad)?,
                "all_attempts" => {
                    cfg.fault_retransmits = match value.trim() {
                        "0" => false,
                        "1" => true,
                        _ => return Err(bad()),
                    }
                }
                other => return Err(format!("unknown chaos key {other:?}")),
            }
        }
        let total = cfg.rates.drop
            + cfg.rates.duplicate
            + cfg.rates.delay
            + cfg.rates.corrupt
            + cfg.rates.truncate;
        if total > 1.0 {
            return Err(format!("chaos fault rates sum to {total}, over 1"));
        }
        Ok(cfg)
    }

    /// The fault plan of the directed link `sender → receiver`: the mesh
    /// seed mixed with both rank ids, so every link misbehaves independently
    /// but reproducibly.
    pub fn plan_for(&self, sender: usize, receiver: usize) -> FaultPlan {
        let seed = self.seed
            ^ (sender as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (receiver as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let mut plan = FaultPlan::from_rates(seed, self.rates);
        plan.first_attempt_only = !self.fault_retransmits;
        plan
    }
}

impl fmt::Display for ChaosConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},drop={},dup={},delay={},corrupt={},trunc={},all_attempts={}",
            self.seed,
            self.rates.drop,
            self.rates.duplicate,
            self.rates.delay,
            self.rates.corrupt,
            self.rates.truncate,
            u8::from(self.fault_retransmits)
        )
    }
}

/// Tuning knobs for [`connect_mesh`].
#[derive(Debug, Clone)]
pub struct MeshOptions {
    /// Overall deadline for establishing every link of the mesh; connection
    /// attempts to not-yet-listening peers retry with exponential backoff
    /// (2 ms doubling to 100 ms) until it expires. Also bounds the relink
    /// phase of an elastic rejoin.
    pub connect_timeout: Duration,
    /// Per-receive deadline once connected; `None` blocks forever. The
    /// default (30 s) turns a silently wedged peer into
    /// [`CommError::Timeout`] instead of a hang.
    pub read_timeout: Option<Duration>,
    /// Retransmissions of one record before the link is declared dead
    /// ([`CommError::Timeout`]). `0` disables the ack/retransmit machinery's
    /// tolerance entirely: the first rejected frame kills the link.
    pub max_retries: u32,
    /// Base retransmission timeout; the backoff doubles it per attempt
    /// (capped at 1 s).
    pub retransmit_timeout: Duration,
    /// Deterministic fault injection; `None` runs every link clean.
    pub chaos: Option<ChaosConfig>,
    /// Enables rank elasticity: receives watch for *any* dead peer (not just
    /// the one being received from) so every rank discovers a failure within
    /// one poll tick and can park at the rejoin barrier.
    pub elastic: bool,
    /// Per-rank listener epochs (how often each rank has been respawned);
    /// empty means all zero. A respawned rank binds an epoch-qualified
    /// address so stale sockets of its predecessor cannot be confused with
    /// it, and Hello frames carry the epoch so both sides agree.
    pub epochs: Vec<u64>,
}

impl Default for MeshOptions {
    fn default() -> Self {
        MeshOptions {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Some(Duration::from_secs(30)),
            max_retries: 10,
            retransmit_timeout: Duration::from_millis(50),
            chaos: None,
            elastic: false,
            epochs: Vec::new(),
        }
    }
}

/// One socket, either flavour.
#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Shuts down both directions, making any blocked read on a clone of
    /// this socket return immediately (used to stop reader threads).
    fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Maps a low-level frame/IO failure on a peer link to the typed comm error
/// (handshake traffic only — post-handshake links report through
/// [`LinkShared::down_error`]).
fn comm_err(peer: usize, during: &'static str, e: WireError) -> CommError {
    use std::io::ErrorKind;
    match e {
        WireError::Closed => CommError::Disconnected {
            peer: Some(peer),
            during,
        },
        WireError::Io(io) => match io.kind() {
            ErrorKind::UnexpectedEof
            | ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::NotConnected => CommError::Disconnected {
                peer: Some(peer),
                during,
            },
            ErrorKind::WouldBlock | ErrorKind::TimedOut => CommError::Timeout { peer, during },
            _ => CommError::Wire(WireError::Io(io)),
        },
        // A peer truncated mid-frame is a peer that died mid-write.
        WireError::Truncated { .. } => CommError::Disconnected {
            peer: Some(peer),
            during,
        },
        other => CommError::Wire(other),
    }
}

// ---------------------------------------------------------------------------
// Reliability sublayer: sequence numbers, acks, retransmission.
// ---------------------------------------------------------------------------

/// Poll granularity of the reliability layer: reader threads wake at this
/// period to service retransmissions, and receives poll their queue at it to
/// notice dead links.
const TICK: Duration = Duration::from_millis(20);

/// Why a link was declared dead.
#[derive(Debug)]
enum LinkDown {
    /// The socket closed or an IO error ended it (peer death).
    Eof,
    /// The oldest unacknowledged record exhausted its retransmissions.
    AckTimeout,
    /// An unrecoverable protocol violation (corrupt frame with retries
    /// disabled, oversized or unknown record). The wire error, when there is
    /// one, is surfaced exactly once.
    Corrupt(Option<WireError>),
}

/// One transmitted-but-unacknowledged record.
#[derive(Debug)]
struct SendRecord {
    seq: u64,
    attempt: u32,
    sent_at: Instant,
    frame: Vec<u8>,
}

/// Sender-side sequence state of one directed link.
#[derive(Debug, Default)]
struct SendState {
    next_seq: u64,
    unacked: VecDeque<SendRecord>,
}

/// State shared between a link's owner (sends) and its reader thread
/// (acks, retransmissions, teardown). Lock order: `sendq` before `writer`.
#[derive(Debug)]
struct LinkShared {
    peer: usize,
    writer: Mutex<ChaosLink<Stream>>,
    sendq: Mutex<SendState>,
    down: Mutex<Option<LinkDown>>,
    max_retries: u32,
    rto: Duration,
    stats: Arc<LinkStats>,
}

impl LinkShared {
    /// Records why the link died; the first cause wins.
    fn mark_down(&self, why: LinkDown) {
        let mut down = self.down.lock().expect("link down lock");
        if down.is_none() {
            *down = Some(why);
        }
    }

    /// The typed error of a dead link, `None` while it is healthy. A stored
    /// wire error is yielded once; later calls degrade to `Disconnected`.
    fn down_error(&self, peer: usize, during: &'static str) -> Option<CommError> {
        let mut down = self.down.lock().expect("link down lock");
        match down.as_mut() {
            None => None,
            Some(LinkDown::AckTimeout) => Some(CommError::Timeout { peer, during }),
            Some(LinkDown::Corrupt(slot)) => match slot.take() {
                Some(e) => Some(CommError::Wire(e)),
                None => Some(CommError::Disconnected {
                    peer: Some(peer),
                    during,
                }),
            },
            Some(LinkDown::Eof) => Some(CommError::Disconnected {
                peer: Some(peer),
                during,
            }),
        }
    }

    /// Retransmits the oldest unacknowledged record if its backoff expired.
    /// Returns `false` when the link is (now) dead and the reader should
    /// exit.
    fn service_retransmits(&self) -> bool {
        if self.down.lock().expect("link down lock").is_some() {
            return false;
        }
        let mut sendq = self.sendq.lock().expect("link send lock");
        let Some(head) = sendq.unacked.front() else {
            return true;
        };
        let backoff = self
            .rto
            .saturating_mul(1u32 << head.attempt.min(5))
            .min(Duration::from_secs(1));
        if head.sent_at.elapsed() < backoff {
            return true;
        }
        if head.attempt >= self.max_retries {
            // Give up: fail the link rather than hang the solve.
            sendq.unacked.clear();
            drop(sendq);
            self.mark_down(LinkDown::AckTimeout);
            return false;
        }
        let head = sendq.unacked.front_mut().expect("head just observed");
        head.attempt += 1;
        head.sent_at = Instant::now();
        feir_trace::instant(feir_trace::Phase::Retransmit);
        let (seq, attempt, frame) = (head.seq, head.attempt, head.frame.clone());
        // sendq stays held across the write (lock order sendq → writer) so a
        // concurrent send cannot interleave a fresh record mid-retransmit.
        let ok = {
            let mut writer = self.writer.lock().expect("link writer lock");
            writer.write_data(seq, attempt, &frame).is_ok()
        };
        drop(sendq);
        if !ok {
            self.mark_down(LinkDown::Eof);
            return false;
        }
        true
    }
}

/// Reads exactly `buf.len()` bytes, servicing retransmissions on every read
/// timeout. `false` means the link died (already marked down).
fn read_full(stream: &mut Stream, buf: &mut [u8], shared: &LinkShared) -> bool {
    use std::io::ErrorKind;
    let mut at = 0;
    while at < buf.len() {
        match stream.read(&mut buf[at..]) {
            Ok(0) => {
                shared.mark_down(LinkDown::Eof);
                return false;
            }
            Ok(n) => at += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !shared.service_retransmits() {
                    return false;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                shared.mark_down(LinkDown::Eof);
                return false;
            }
        }
    }
    true
}

/// The per-link reader thread: reassembles data records in sequence order,
/// forwards exactly-once-in-order messages to the owner, acknowledges
/// cumulatively, and services the sender-side retransmission timer while
/// the socket is idle. On exit the peer is registered in the endpoint's
/// `downed` set so elastic receives notice the failure.
fn reader_loop(
    mut stream: Stream,
    shared: Arc<LinkShared>,
    tx: mpsc::Sender<Message>,
    downed: Arc<Mutex<BTreeSet<usize>>>,
) {
    let mut expected: u64 = 0;
    let mut reordered: BTreeMap<u64, Message> = BTreeMap::new();
    let mut env = [0u8; ENVELOPE_LEN];
    'link: loop {
        if !read_full(&mut stream, &mut env, &shared) {
            break 'link;
        }
        let (kind, seq, inner_len) = parse_envelope(&env);
        match kind {
            ENV_ACK => {
                // Cumulative: "every record below `seq` was delivered."
                let mut sendq = shared.sendq.lock().expect("link send lock");
                let mut popped = false;
                while sendq.unacked.front().is_some_and(|r| r.seq < seq) {
                    sendq.unacked.pop_front();
                    popped = true;
                }
                // Progress resets the survivor's timer (its flight time was
                // spent behind the acked records); a pure duplicate ack must
                // not keep resetting it or retransmission would starve.
                if popped {
                    if let Some(head) = sendq.unacked.front_mut() {
                        head.sent_at = Instant::now();
                    }
                }
            }
            ENV_DATA => {
                if inner_len as usize > feir_wire::HEADER_LEN + feir_wire::MAX_PAYLOAD as usize {
                    shared.mark_down(LinkDown::Corrupt(None));
                    break 'link;
                }
                let mut inner = vec![0u8; inner_len as usize];
                if !read_full(&mut stream, &mut inner, &shared) {
                    break 'link;
                }
                match feir_wire::decode_frame_buf(&inner) {
                    Ok(msg) => {
                        if seq < expected {
                            shared.stats.dup_received.fetch_add(1, Ordering::Relaxed);
                        } else if seq > expected {
                            // Reordered ahead: park until the gap fills.
                            reordered.insert(seq, msg);
                        } else {
                            if tx.send(msg).is_err() {
                                break 'link; // owner hung up
                            }
                            expected += 1;
                            while let Some(next) = reordered.remove(&expected) {
                                if tx.send(next).is_err() {
                                    break 'link;
                                }
                                expected += 1;
                            }
                        }
                        // Always (re-)acknowledge: a lost ack is recovered by
                        // the duplicate the sender's retransmission causes.
                        if shared
                            .writer
                            .lock()
                            .expect("link writer lock")
                            .write_ack(expected)
                            .is_err()
                        {
                            shared.mark_down(LinkDown::Eof);
                            break 'link;
                        }
                    }
                    Err(e) => {
                        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        if shared.max_retries == 0 {
                            shared.mark_down(LinkDown::Corrupt(Some(e)));
                            break 'link;
                        }
                        // No ack: the sender's timeout re-delivers the frame
                        // (retransmissions travel clean under the default
                        // first-attempt-only fault plans).
                    }
                }
            }
            _ => {
                shared.mark_down(LinkDown::Corrupt(None));
                break 'link;
            }
        }
    }
    shared.mark_down(LinkDown::Eof); // no-op if a cause is already recorded
    downed.lock().expect("downed set lock").insert(shared.peer);
    // `tx` drops here, closing the owner's receive queue.
}

/// One established reliable link to a peer rank.
#[derive(Debug)]
struct RLink {
    shared: Arc<LinkShared>,
    /// In-order messages from the reader thread.
    rx: mpsc::Receiver<Message>,
    /// Tag-demultiplexer stash (e.g. a split-phase gather posted ahead of
    /// the same stream's halo payload).
    inbox: VecDeque<Message>,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Socket handle kept for teardown: shutting it down unblocks the
    /// reader thread immediately.
    ctl: Stream,
}

impl RLink {
    fn shutdown(&mut self) {
        // Graceful drain: the last frames of a solve may still be waiting on
        // a retransmission (chaos can drop the first attempt), and closing
        // the socket now would lose them forever. Let the reader thread —
        // which services the retransmit timer and collects acks — finish the
        // delivery first, bounded so a genuinely dead peer cannot stall
        // teardown longer than the retry budget itself.
        let budget = self
            .shared
            .rto
            .saturating_mul(2u32.saturating_pow(self.shared.max_retries.min(5) + 1))
            .min(Duration::from_secs(3));
        let deadline = Instant::now() + budget;
        loop {
            let down = self.shared.down.lock().expect("link down lock").is_some();
            let drained = self
                .shared
                .sendq
                .lock()
                .expect("link send lock")
                .unacked
                .is_empty();
            if down || drained || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = self.ctl.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for RLink {
    fn drop(&mut self) {
        // Dropping an endpoint therefore closes every socket, which is what
        // cascades a failure through the mesh and unblocks the peers.
        self.shutdown();
    }
}

/// Wraps a handshaken stream in the reliability sublayer: chaos writer,
/// sequence state and reader thread. `stats` is owned by the endpoint and
/// shared into the link, so the counters survive a relink (elastic rejoin)
/// and keep accumulating across link incarnations.
fn build_rlink(
    stream: Stream,
    rank: usize,
    peer: usize,
    options: &MeshOptions,
    downed: Arc<Mutex<BTreeSet<usize>>>,
    stats: Arc<LinkStats>,
) -> Result<RLink, CommError> {
    let proto = |what: &str, e: std::io::Error| {
        CommError::Protocol(format!("rank {rank}: link to {peer}: {what}: {e}"))
    };
    stream
        .set_read_timeout(Some(TICK))
        .map_err(|e| proto("set_read_timeout", e))?;
    let reader = stream.try_clone().map_err(|e| proto("stream clone", e))?;
    let ctl = stream.try_clone().map_err(|e| proto("stream clone", e))?;
    let plan = options
        .chaos
        .as_ref()
        .map(|c| c.plan_for(rank, peer))
        .unwrap_or_else(FaultPlan::clean);
    let shared = Arc::new(LinkShared {
        peer,
        writer: Mutex::new(ChaosLink::new(stream, plan, stats.clone())),
        sendq: Mutex::new(SendState::default()),
        down: Mutex::new(None),
        max_retries: options.max_retries,
        rto: options.retransmit_timeout.max(Duration::from_millis(1)),
        stats,
    });
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::Builder::new()
        .name(format!("feir-link-r{rank}p{peer}"))
        .spawn({
            let shared = shared.clone();
            move || reader_loop(reader, shared, tx, downed)
        })
        .map_err(|e| proto("reader thread spawn", e))?;
    Ok(RLink {
        shared,
        rx,
        inbox: VecDeque::new(),
        thread: Some(thread),
        ctl,
    })
}

/// Sums per-peer [`LinkStats`] into one rank's [`crate::cg::NetStats`].
fn sum_link_stats(stats: &[Arc<LinkStats>]) -> crate::cg::NetStats {
    use std::sync::atomic::Ordering::Relaxed;
    let mut net = crate::cg::NetStats::default();
    for s in stats {
        net.accumulate(crate::cg::NetStats {
            data_frames: s.data_frames.load(Relaxed),
            retransmits: s.retransmits.load(Relaxed),
            injected_faults: s.faults(),
            rejected: s.rejected.load(Relaxed),
            dup_received: s.dup_received.load(Relaxed),
        });
    }
    net
}

/// One rank's view of the established mesh: a reliable link per peer, the
/// retained listener (for elastic re-accepts) and the shared `downed` set
/// reader threads report dead peers into.
#[derive(Debug)]
pub struct ProcessEndpoint {
    rank: usize,
    ranks: usize,
    links: Vec<RefCell<Option<RLink>>>,
    /// Per-peer reliability counters, owned here (not by the links) so they
    /// persist across elastic relinks; index = peer rank, the self slot
    /// stays at zero.
    stats: Vec<Arc<LinkStats>>,
    scratch: RefCell<Vec<u8>>,
    listener: MeshListener,
    transport: Transport,
    options: MeshOptions,
    epochs: RefCell<Vec<u64>>,
    downed: Arc<Mutex<BTreeSet<usize>>>,
}

impl ProcessEndpoint {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the mesh.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The fault/retransmission counters of the link to `peer` (shared with
    /// the link itself, so it keeps counting after this call). The counters
    /// are owned by the endpoint and survive elastic relinks.
    pub fn link_stats(&self, peer: usize) -> Arc<LinkStats> {
        self.stats[peer].clone()
    }

    /// Sums this endpoint's per-peer reliability counters into one
    /// [`crate::cg::NetStats`] (the rank's contribution to a solve's
    /// cross-rank total).
    pub fn net_stats(&self) -> crate::cg::NetStats {
        sum_link_stats(&self.stats)
    }

    fn with_link<T>(&self, peer: usize, f: impl FnOnce(&mut RLink) -> T) -> T {
        let mut slot = self.links[peer].borrow_mut();
        let link = slot.as_mut().expect("no link to self or out-of-range peer");
        f(link)
    }

    fn send(&self, peer: usize, msg: &Message, during: &'static str) -> Result<(), CommError> {
        self.with_link(peer, |link| {
            if let Some(err) = link.shared.down_error(peer, during) {
                return Err(err);
            }
            let mut scratch = self.scratch.borrow_mut();
            scratch.clear();
            msg.encode_into(&mut scratch);
            // Record first (lock order sendq → writer), then transmit.
            let mut sendq = link.shared.sendq.lock().expect("link send lock");
            let seq = sendq.next_seq;
            sendq.next_seq += 1;
            sendq.unacked.push_back(SendRecord {
                seq,
                attempt: 0,
                sent_at: Instant::now(),
                frame: scratch.clone(),
            });
            let ok = {
                let mut writer = link.shared.writer.lock().expect("link writer lock");
                writer.write_data(seq, 0, &scratch).is_ok()
            };
            drop(sendq);
            if !ok {
                link.shared.mark_down(LinkDown::Eof);
                self.downed.lock().expect("downed set lock").insert(peer);
                return Err(CommError::Disconnected {
                    peer: Some(peer),
                    during,
                });
            }
            Ok(())
        })
    }

    fn recv(&self, peer: usize, want: Tag, during: &'static str) -> Result<Message, CommError> {
        self.with_link(peer, |link| {
            if let Some(at) = link.inbox.iter().position(|m| m.tag() == want) {
                return Ok(link.inbox.remove(at).expect("inbox position just found"));
            }
            let deadline = self.options.read_timeout.map(|d| Instant::now() + d);
            loop {
                match link.rx.recv_timeout(TICK) {
                    Ok(msg) if msg.tag() == want => return Ok(msg),
                    Ok(msg) => link.inbox.push_back(msg),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if self.options.elastic {
                            // Any dead peer aborts the collective so every
                            // rank reaches the rejoin barrier, not just the
                            // dead rank's direct correspondents.
                            let downed = self.downed.lock().expect("downed set lock");
                            if let Some(&dead) = downed.iter().next() {
                                return Err(CommError::Disconnected {
                                    peer: Some(dead),
                                    during,
                                });
                            }
                        }
                        if let Some(err) = link.shared.down_error(peer, during) {
                            return Err(err);
                        }
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            return Err(CommError::Timeout { peer, during });
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(link.shared.down_error(peer, during).unwrap_or(
                            CommError::Disconnected {
                                peer: Some(peer),
                                during,
                            },
                        ));
                    }
                }
            }
        })
    }

    fn recv_halo_into(
        &self,
        peer: usize,
        cols: &[usize],
        full: &mut [f64],
    ) -> Result<(), CommError> {
        match self.recv(peer, Tag::Halo, "halo receive")? {
            Message::Halo { values } => scatter_checked(peer, cols, &values, full),
            other => Err(CommError::Protocol(format!(
                "halo receive from rank {peer}: unexpected {:?} frame",
                other.tag()
            ))),
        }
    }

    /// Tears down the dead link to `failed` and re-handshakes its
    /// replacement under the next epoch. Lower ranks accept the newcomer's
    /// dial; higher ranks dial its epoch-qualified address. Part of the
    /// elastic rejoin choreography — see `crate::elastic`.
    pub fn relink(&self, failed: usize) -> Result<(), CommError> {
        if failed == self.rank || failed >= self.ranks {
            return Err(CommError::Protocol(format!(
                "rank {}: cannot relink rank {failed}",
                self.rank
            )));
        }
        let target_epoch = {
            let mut epochs = self.epochs.borrow_mut();
            epochs[failed] += 1;
            epochs[failed]
        };
        // Joining the old reader thread (via RLink::drop) before clearing
        // the downed entry below means it cannot re-register the peer as
        // dead after we have relinked it.
        drop(self.links[failed].borrow_mut().take());
        let deadline = Instant::now() + self.options.connect_timeout;
        let stream = if self.rank < failed {
            accept_stream(&self.listener, deadline, self.rank)?
        } else {
            dial_stream(&self.transport, failed, self.ranks, target_epoch, deadline)?
        };
        let my_epoch = self.epochs.borrow()[self.rank];
        let mut scratch = self.scratch.borrow_mut();
        let (stream, _) = handshake(
            stream,
            self.rank,
            self.ranks,
            my_epoch,
            Some((failed, target_epoch)),
            &self.epochs.borrow(),
            &self.options,
            &mut scratch,
        )?;
        drop(scratch);
        let link = build_rlink(
            stream,
            self.rank,
            failed,
            &self.options,
            self.downed.clone(),
            self.stats[failed].clone(),
        )?;
        *self.links[failed].borrow_mut() = Some(link);
        self.downed.lock().expect("downed set lock").remove(&failed);
        Ok(())
    }

    /// Meets every peer at the rejoin barrier: exchanges
    /// `RejoinBarrier { epoch, iteration }` with all of them and returns the
    /// maximum iteration seen (the agreed resume point). The epoch is the
    /// sum of all per-rank epochs — a mesh generation number every rank can
    /// compute identically — so a stale barrier from a previous rejoin
    /// cannot satisfy this one.
    pub fn rejoin_barrier(&self, my_iteration: u64) -> Result<u64, CommError> {
        let mesh_epoch: u64 = self.epochs.borrow().iter().sum();
        let mesh_epoch = mesh_epoch as u32;
        let msg = Message::RejoinBarrier {
            epoch: mesh_epoch,
            iteration: my_iteration,
        };
        for peer in 0..self.ranks {
            if peer != self.rank {
                self.send(peer, &msg, "rejoin barrier")?;
            }
        }
        let mut resume = my_iteration;
        for peer in 0..self.ranks {
            if peer != self.rank {
                resume = resume.max(self.recv_barrier(peer, mesh_epoch)?);
            }
        }
        Ok(resume)
    }

    /// Waits for `peer`'s barrier frame of generation `epoch`, discarding
    /// whatever in-flight collective traffic the aborted solve left behind.
    fn recv_barrier(&self, peer: usize, epoch: u32) -> Result<u64, CommError> {
        const DURING: &str = "rejoin barrier";
        self.with_link(peer, |link| {
            // The aborted collective may already have stashed the barrier
            // frame in the inbox; sweep it before draining the queue.
            for msg in link.inbox.drain(..) {
                if let Message::RejoinBarrier { epoch: e, iteration } = msg {
                    if e == epoch {
                        return Ok(iteration);
                    }
                    if e > epoch {
                        return Err(CommError::Protocol(format!(
                            "rejoin barrier from rank {peer}: epoch {e} is ahead of ours ({epoch})"
                        )));
                    }
                    // Stale barrier of an earlier rejoin: discard.
                }
                // Leftover collective traffic of the aborted solve: discard.
            }
            let budget = self.options.connect_timeout
                + self.options.read_timeout.unwrap_or(Duration::from_secs(30));
            let deadline = Instant::now() + budget;
            loop {
                match link.rx.recv_timeout(TICK) {
                    Ok(Message::RejoinBarrier { epoch: e, iteration }) => {
                        if e == epoch {
                            return Ok(iteration);
                        }
                        if e > epoch {
                            return Err(CommError::Protocol(format!(
                                "rejoin barrier from rank {peer}: epoch {e} is ahead of ours ({epoch})"
                            )));
                        }
                    }
                    Ok(_) => {} // aborted-solve traffic
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if let Some(err) = link.shared.down_error(peer, DURING) {
                            return Err(err);
                        }
                        if Instant::now() >= deadline {
                            return Err(CommError::Timeout {
                                peer,
                                during: DURING,
                            });
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(link.shared.down_error(peer, DURING).unwrap_or(
                            CommError::Disconnected {
                                peer: Some(peer),
                                during: DURING,
                            },
                        ));
                    }
                }
            }
        })
    }
}

fn scatter_checked(
    peer: usize,
    cols: &[usize],
    values: &[f64],
    full: &mut [f64],
) -> Result<(), CommError> {
    if values.len() != cols.len() {
        return Err(CommError::Protocol(format!(
            "halo from rank {peer}: got {} values, expected {}",
            values.len(),
            cols.len()
        )));
    }
    for (&c, &v) in cols.iter().zip(values) {
        full[c] = v;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Mesh establishment: addressing, rendezvous, handshake.
// ---------------------------------------------------------------------------

/// This rank's retained listener (elastic rejoins re-accept on it).
#[derive(Debug)]
enum MeshListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// The UDS socket path of `rank` at `epoch` (epoch 0 keeps the plain name).
fn uds_path(dir: &Path, rank: usize, epoch: u64) -> PathBuf {
    if epoch == 0 {
        dir.join(format!("rank{rank}.sock"))
    } else {
        dir.join(format!("rank{rank}.e{epoch}.sock"))
    }
}

/// The TCP address of `rank` at `epoch`.
fn rank_addr(base_port: u16, ranks: usize, rank: usize, epoch: u64) -> SocketAddr {
    let port = base_port
        .wrapping_add((epoch as u16).wrapping_mul(ranks as u16))
        .wrapping_add(rank as u16);
    SocketAddr::from((Ipv4Addr::LOCALHOST, port))
}

fn setup_err(rank: usize, what: &str, e: std::io::Error) -> CommError {
    CommError::Protocol(format!("rank {rank}: {what}: {e}"))
}

/// Binds this rank's listener at its epoch-aware address.
fn bind_listener(
    transport: &Transport,
    rank: usize,
    ranks: usize,
    epoch: u64,
) -> Result<MeshListener, CommError> {
    match transport {
        Transport::Uds { dir } => {
            std::fs::create_dir_all(dir)
                .map_err(|e| setup_err(rank, "rendezvous dir create", e))?;
            let path = uds_path(dir, rank, epoch);
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path).map_err(|e| setup_err(rank, "uds bind", e))?;
            Ok(MeshListener::Unix(listener))
        }
        Transport::Tcp { base_port } => {
            let addr = rank_addr(*base_port, ranks, rank, epoch);
            let listener = TcpListener::bind(addr).map_err(|e| setup_err(rank, "tcp bind", e))?;
            Ok(MeshListener::Tcp(listener))
        }
    }
}

/// Accepts one inbound connection before `deadline` (the listener is
/// switched to non-blocking and polled so a never-arriving dial cannot hang
/// the rank).
fn accept_stream(
    listener: &MeshListener,
    deadline: Instant,
    rank: usize,
) -> Result<Stream, CommError> {
    use std::io::ErrorKind;
    let set_nonblocking = |on: bool| match listener {
        MeshListener::Unix(l) => l.set_nonblocking(on),
        MeshListener::Tcp(l) => l.set_nonblocking(on),
    };
    set_nonblocking(true).map_err(|e| setup_err(rank, "listener nonblocking", e))?;
    loop {
        let accepted = match listener {
            MeshListener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            MeshListener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        match accepted {
            Ok(stream) => {
                match &stream {
                    Stream::Unix(s) => s
                        .set_nonblocking(false)
                        .map_err(|e| setup_err(rank, "stream blocking", e))?,
                    Stream::Tcp(s) => s
                        .set_nonblocking(false)
                        .map_err(|e| setup_err(rank, "stream blocking", e))?,
                }
                return Ok(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(CommError::Timeout {
                        peer: rank,
                        during: "mesh accept",
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(setup_err(rank, "mesh accept", e)),
        }
    }
}

/// Dials `peer`'s listener at `epoch`, retrying with backoff until
/// `deadline` (the peer may not have bound yet).
fn dial_stream(
    transport: &Transport,
    peer: usize,
    ranks: usize,
    epoch: u64,
    deadline: Instant,
) -> Result<Stream, CommError> {
    let mut backoff = Duration::from_millis(2);
    loop {
        let attempt = match transport {
            Transport::Uds { dir } => {
                UnixStream::connect(uds_path(dir, peer, epoch)).map(Stream::Unix)
            }
            Transport::Tcp { base_port } => {
                TcpStream::connect(rank_addr(*base_port, ranks, peer, epoch)).map(Stream::Tcp)
            }
        };
        match attempt {
            Ok(stream) => return Ok(stream),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
            }
            Err(_) => {
                return Err(CommError::Timeout {
                    peer,
                    during: "mesh connect",
                })
            }
        }
    }
}

/// Exchanges `Hello` frames on a fresh stream and validates the peer's
/// identity, mesh size and epoch. `expect` pins the peer (dial side);
/// `None` accepts any higher rank (accept side) at its recorded epoch.
#[allow(clippy::too_many_arguments)]
fn handshake(
    mut stream: Stream,
    rank: usize,
    ranks: usize,
    my_epoch: u64,
    expect: Option<(usize, u64)>,
    epochs: &[u64],
    options: &MeshOptions,
    scratch: &mut Vec<u8>,
) -> Result<(Stream, usize), CommError> {
    let fallible =
        |e: WireError| comm_err(expect.map(|(p, _)| p).unwrap_or(usize::MAX), "handshake", e);
    stream
        .set_read_timeout(options.read_timeout)
        .map_err(|e| setup_err(rank, "handshake read timeout", e))?;
    feir_wire::write_message(
        &mut stream,
        &Message::Hello {
            rank: rank as u32,
            ranks: ranks as u32,
            epoch: my_epoch as u32,
            t0_micros: feir_trace::origin_unix_micros(),
        },
        scratch,
    )
    .map_err(fallible)?;
    // FrameReader performs exact-length reads, so it cannot swallow bytes of
    // the envelope traffic that follows the handshake.
    let hello = FrameReader::new()
        .read_message(&mut stream)
        .map_err(fallible)?;
    let Message::Hello {
        rank: peer_rank,
        ranks: peer_ranks,
        epoch: peer_epoch,
        t0_micros: _,
    } = hello
    else {
        return Err(CommError::Protocol(format!(
            "rank {rank}: handshake expected Hello, got {:?}",
            hello.tag()
        )));
    };
    let peer_rank = peer_rank as usize;
    if peer_ranks as usize != ranks {
        return Err(CommError::Protocol(format!(
            "rank {rank}: peer {peer_rank} believes in {peer_ranks} ranks, we have {ranks}"
        )));
    }
    if peer_rank >= ranks || peer_rank == rank {
        return Err(CommError::Protocol(format!(
            "rank {rank}: handshake from invalid rank {peer_rank}"
        )));
    }
    if let Some((expected_peer, _)) = expect {
        if peer_rank != expected_peer {
            return Err(CommError::Protocol(format!(
                "rank {rank}: dialled rank {expected_peer} but rank {peer_rank} answered"
            )));
        }
    }
    let expected_epoch = expect
        .map(|(_, e)| e)
        .unwrap_or_else(|| epochs.get(peer_rank).copied().unwrap_or(0));
    if peer_epoch as u64 != expected_epoch {
        return Err(CommError::Protocol(format!(
            "rank {rank}: peer {peer_rank} is at epoch {peer_epoch}, expected {expected_epoch} \
             (stale pre-respawn worker?)"
        )));
    }
    Ok((stream, peer_rank))
}

/// Establishes this rank's full mesh: bind, connect to lower ranks with
/// backoff, accept from higher ranks, handshake and wrap every link in the
/// reliability sublayer.
pub fn connect_mesh(
    rank: usize,
    ranks: usize,
    transport: &Transport,
    options: &MeshOptions,
) -> Result<ProcessEndpoint, CommError> {
    assert!(rank < ranks, "rank {rank} out of range for {ranks} ranks");
    let epochs = if options.epochs.is_empty() {
        vec![0u64; ranks]
    } else if options.epochs.len() == ranks {
        options.epochs.clone()
    } else {
        return Err(CommError::Protocol(format!(
            "rank {rank}: {} epochs configured for {ranks} ranks",
            options.epochs.len()
        )));
    };
    let listener = bind_listener(transport, rank, ranks, epochs[rank])?;
    let downed: Arc<Mutex<BTreeSet<usize>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let mut links: Vec<RefCell<Option<RLink>>> = (0..ranks).map(|_| RefCell::new(None)).collect();
    let stats: Vec<Arc<LinkStats>> = (0..ranks).map(|_| Arc::default()).collect();
    let deadline = Instant::now() + options.connect_timeout;
    let mut scratch = Vec::new();
    // Dial every lower rank (they bound their listeners first or will
    // shortly; the backoff absorbs start-order races).
    for peer in 0..rank {
        let stream = dial_stream(transport, peer, ranks, epochs[peer], deadline)?;
        let (stream, _) = handshake(
            stream,
            rank,
            ranks,
            epochs[rank],
            Some((peer, epochs[peer])),
            &epochs,
            options,
            &mut scratch,
        )?;
        links[peer] = RefCell::new(Some(build_rlink(
            stream,
            rank,
            peer,
            options,
            downed.clone(),
            stats[peer].clone(),
        )?));
    }
    // Accept every higher rank, in whatever order they dial.
    for _ in rank + 1..ranks {
        let stream = accept_stream(&listener, deadline, rank)?;
        let (stream, peer) = handshake(
            stream,
            rank,
            ranks,
            epochs[rank],
            None,
            &epochs,
            options,
            &mut scratch,
        )?;
        if peer <= rank {
            return Err(CommError::Protocol(format!(
                "rank {rank}: unexpected dial from lower rank {peer}"
            )));
        }
        if links[peer].borrow().is_some() {
            return Err(CommError::Protocol(format!(
                "rank {rank}: duplicate connection from rank {peer}"
            )));
        }
        links[peer] = RefCell::new(Some(build_rlink(
            stream,
            rank,
            peer,
            options,
            downed.clone(),
            stats[peer].clone(),
        )?));
    }
    Ok(ProcessEndpoint {
        rank,
        ranks,
        links,
        stats,
        scratch: RefCell::new(scratch),
        listener,
        transport: transport.clone(),
        options: options.clone(),
        epochs: RefCell::new(epochs),
        downed,
    })
}

/// The process backend's per-rank state behind [`RankComm`]: the endpoint
/// plus the plan-derived halo lists and recovery neighbourhood, mirroring
/// exactly what the in-process backend wires with channels.
#[derive(Debug)]
pub(crate) struct ProcessLinks {
    endpoint: ProcessEndpoint,
    /// Outgoing halo `(destination, owned indices to ship)`, sorted by peer.
    halo_out: Vec<(usize, Vec<usize>)>,
    /// Incoming halo `(source, indices received)`, sorted by peer.
    halo_in: Vec<(usize, Vec<usize>)>,
    /// Halo neighbours (either direction), ascending.
    recovery_peers: Vec<usize>,
}

impl ProcessLinks {
    pub(crate) fn new(plan: &HaloPlan, endpoint: ProcessEndpoint) -> ProcessLinks {
        let rank = endpoint.rank();
        let mut halo_out: Vec<(usize, Vec<usize>)> = plan
            .sends_of(rank)
            .iter()
            .map(|(&dest, cols)| (dest, cols.clone()))
            .collect();
        halo_out.sort_unstable_by_key(|(dest, _)| *dest);
        let mut halo_in: Vec<(usize, Vec<usize>)> = plan
            .needs_of(rank)
            .iter()
            .map(|(&src, cols)| (src, cols.clone()))
            .collect();
        halo_in.sort_unstable_by_key(|(src, _)| *src);
        let recovery_peers = plan.neighbours_of(rank);
        ProcessLinks {
            endpoint,
            halo_out,
            halo_in,
            recovery_peers,
        }
    }

    pub(crate) fn recovery_peers(&self) -> &[usize] {
        &self.recovery_peers
    }

    /// Relinks a failed peer (when named) and meets the rejoin barrier.
    pub(crate) fn rejoin(&self, failed: Option<usize>, iteration: u64) -> Result<u64, CommError> {
        if let Some(k) = failed {
            self.endpoint.relink(k)?;
        }
        self.endpoint.rejoin_barrier(iteration)
    }

    pub(crate) fn exchange_halo(&self, full: &mut [f64]) -> Result<(), CommError> {
        for (dest, cols) in &self.halo_out {
            let values: Vec<f64> = cols.iter().map(|&c| full[c]).collect();
            self.endpoint
                .send(*dest, &Message::Halo { values }, "halo send")?;
        }
        for (src, cols) in &self.halo_in {
            self.endpoint.recv_halo_into(*src, cols, full)?;
        }
        Ok(())
    }

    /// Leaf half of the scalar allreduce post (root holds its partial).
    pub(crate) fn post_scalar(&self, local: f64) -> Result<(), CommError> {
        if self.endpoint.rank() != 0 {
            self.endpoint.send(
                0,
                &Message::GatherScalar {
                    rank: self.endpoint.rank() as u32,
                    value: local,
                },
                "allreduce gather",
            )?;
        }
        Ok(())
    }

    /// Completes a scalar allreduce: rank 0 gathers every partial, folds in
    /// rank order (identical arithmetic to the in-process root) and
    /// broadcasts; leaves await the broadcast.
    pub(crate) fn finish_scalar(&self, local: f64) -> Result<f64, CommError> {
        let ranks = self.endpoint.ranks();
        if self.endpoint.rank() == 0 {
            let mut partials = vec![0.0; ranks];
            partials[0] = local;
            #[allow(clippy::needless_range_loop)] // `peer` is a rank id, not just an index
            for peer in 1..ranks {
                match self
                    .endpoint
                    .recv(peer, Tag::GatherScalar, "allreduce gather")?
                {
                    Message::GatherScalar { rank, value } => {
                        if rank as usize != peer {
                            return Err(CommError::Protocol(format!(
                                "gather from rank {peer} claims rank {rank}"
                            )));
                        }
                        partials[peer] = value;
                    }
                    _ => unreachable!("recv() returns the requested tag"),
                }
            }
            let total: f64 = partials.iter().sum();
            for peer in 1..ranks {
                self.endpoint.send(
                    peer,
                    &Message::BroadcastScalar { value: total },
                    "allreduce broadcast",
                )?;
            }
            Ok(total)
        } else {
            match self
                .endpoint
                .recv(0, Tag::BroadcastScalar, "allreduce broadcast")?
            {
                Message::BroadcastScalar { value } => Ok(value),
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
    }

    /// Leaf half of the vector allreduce post; returns the partial the
    /// caller must retain for the fold (root keeps its own, leaves none).
    pub(crate) fn post_vec(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        if self.endpoint.rank() == 0 {
            return Ok(local);
        }
        self.endpoint.send(
            0,
            &Message::GatherVec {
                rank: self.endpoint.rank() as u32,
                values: local,
            },
            "vector allreduce gather",
        )?;
        Ok(Vec::new())
    }

    /// Completes a vector allreduce with the rank-ordered component fold.
    pub(crate) fn finish_vec(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        let ranks = self.endpoint.ranks();
        if self.endpoint.rank() == 0 {
            let mut partials: Vec<Vec<f64>> = vec![Vec::new(); ranks];
            partials[0] = local;
            for (peer, slot) in partials.iter_mut().enumerate().skip(1) {
                match self
                    .endpoint
                    .recv(peer, Tag::GatherVec, "vector allreduce gather")?
                {
                    Message::GatherVec { rank, values } => {
                        if rank as usize != peer {
                            return Err(CommError::Protocol(format!(
                                "vector gather from rank {peer} claims rank {rank}"
                            )));
                        }
                        *slot = values;
                    }
                    _ => unreachable!("recv() returns the requested tag"),
                }
            }
            let totals = fold_partials_rank_ordered(&partials)?;
            for peer in 1..ranks {
                self.endpoint.send(
                    peer,
                    &Message::BroadcastVec {
                        values: totals.clone(),
                    },
                    "vector allreduce broadcast",
                )?;
            }
            Ok(totals)
        } else {
            match self
                .endpoint
                .recv(0, Tag::BroadcastVec, "vector allreduce broadcast")?
            {
                Message::BroadcastVec { values } => Ok(values),
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
    }

    /// Phase 1 of the recovery neighbourhood collective in isolation (the
    /// AFEIR in-window prefetch hook; see
    /// [`crate::comm::RankComm::post_recovery_requests`]).
    pub(crate) fn post_recovery_requests(
        &self,
        requests: &HashMap<usize, Vec<usize>>,
    ) -> Result<(), CommError> {
        assert!(
            requests.keys().all(|p| self.recovery_peers.contains(p)),
            "recovery request targets a rank outside the halo neighbourhood"
        );
        for peer in &self.recovery_peers {
            let indices: Vec<u64> = requests
                .get(peer)
                .map(|v| v.iter().map(|&i| i as u64).collect())
                .unwrap_or_default();
            self.endpoint.send(
                *peer,
                &Message::RecoveryRequest { indices },
                "recovery request",
            )?;
        }
        Ok(())
    }

    /// Phases 2–3 of the recovery neighbourhood collective, frame-for-frame
    /// the in-process protocol: answer incoming requests, scatter replies.
    /// The caller's own requests must already be on the wire (the comm layer
    /// posts them via [`ProcessLinks::post_recovery_requests`] unless the
    /// AFEIR window prefetched them). The tag-aware inbox guarantees a
    /// request is always read before the same peer's reply.
    pub(crate) fn complete_recovery_exchange(
        &self,
        requests: &HashMap<usize, Vec<usize>>,
        data: &mut [f64],
        unserviceable: &[usize],
    ) -> Result<(usize, Vec<usize>), CommError> {
        for peer in &self.recovery_peers {
            match self
                .endpoint
                .recv(*peer, Tag::RecoveryRequest, "recovery request receive")?
            {
                Message::RecoveryRequest { indices } => {
                    let mut values = Vec::with_capacity(indices.len());
                    let mut valid = Vec::with_capacity(indices.len());
                    for &i in &indices {
                        let i = i as usize;
                        if i >= data.len() {
                            return Err(CommError::Protocol(format!(
                                "rank {peer} requested out-of-range index {i}"
                            )));
                        }
                        values.push(data[i]);
                        valid.push(unserviceable.binary_search(&i).is_err());
                    }
                    self.endpoint.send(
                        *peer,
                        &Message::RecoveryReply { values, valid },
                        "recovery reply",
                    )?;
                }
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
        let mut fetched = 0;
        let mut invalid = Vec::new();
        for peer in &self.recovery_peers {
            match self
                .endpoint
                .recv(*peer, Tag::RecoveryReply, "recovery reply receive")?
            {
                Message::RecoveryReply { values, valid } => {
                    let indices = requests.get(peer).map(Vec::as_slice).unwrap_or(&[]);
                    if values.len() != indices.len() || valid.len() != indices.len() {
                        return Err(CommError::Protocol(format!(
                            "recovery reply from rank {peer}: {} values for {} requests",
                            values.len(),
                            indices.len()
                        )));
                    }
                    for ((&i, v), ok) in indices.iter().zip(values).zip(valid) {
                        data[i] = v;
                        fetched += 1;
                        if !ok {
                            invalid.push(i);
                        }
                    }
                }
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
        invalid.sort_unstable();
        Ok((fetched, invalid))
    }

    /// Downward coupled-recovery wave over the wire (see
    /// [`crate::comm::RankComm::coupled_gather_wave`]): receive the merged
    /// offers of every higher-ranked peer, merge this rank's own offer in,
    /// forward downward, return the merged view.
    pub(crate) fn coupled_gather_wave(
        &self,
        mut rows: Vec<(usize, f64)>,
        mut support: Vec<(usize, f64, bool)>,
    ) -> Result<crate::comm::CoupledGatherView, CommError> {
        let rank = self.endpoint.rank();
        for peer in &self.recovery_peers {
            if *peer < rank {
                continue;
            }
            match self
                .endpoint
                .recv(*peer, Tag::CoupledGather, "coupled gather receive")?
            {
                Message::CoupledGather {
                    rows: peer_rows,
                    values,
                    support_cols,
                    support_values,
                    support_valid,
                } => {
                    if peer_rows.len() != values.len()
                        || support_cols.len() != support_values.len()
                        || support_cols.len() != support_valid.len()
                    {
                        return Err(CommError::Protocol(format!(
                            "coupled gather from rank {peer}: mismatched array lengths"
                        )));
                    }
                    rows.extend(peer_rows.into_iter().map(|r| r as usize).zip(values));
                    support.extend(
                        support_cols
                            .into_iter()
                            .map(|c| c as usize)
                            .zip(support_values)
                            .zip(support_valid)
                            .map(|((c, v), ok)| (c, v, ok)),
                    );
                }
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
        rows.sort_by_key(|&(row, _)| row);
        rows.dedup_by_key(|&mut (row, _)| row);
        support.sort_by_key(|&(col, _, _)| col);
        support.dedup_by_key(|&mut (col, _, _)| col);
        for peer in &self.recovery_peers {
            if *peer > rank {
                continue;
            }
            self.endpoint.send(
                *peer,
                &Message::CoupledGather {
                    rows: rows.iter().map(|&(r, _)| r as u64).collect(),
                    values: rows.iter().map(|&(_, v)| v).collect(),
                    support_cols: support.iter().map(|&(c, _, _)| c as u64).collect(),
                    support_values: support.iter().map(|&(_, v, _)| v).collect(),
                    support_valid: support.iter().map(|&(_, _, ok)| ok).collect(),
                },
                "coupled gather send",
            )?;
        }
        Ok((rows, support))
    }

    /// Upward coupled-recovery wave over the wire (see
    /// [`crate::comm::RankComm::coupled_result_wave`]): receive the solved
    /// entries of every lower-ranked peer, merge, relay upward.
    pub(crate) fn coupled_result_wave(
        &self,
        mut entries: Vec<(usize, f64)>,
    ) -> Result<Vec<(usize, f64)>, CommError> {
        let rank = self.endpoint.rank();
        for peer in &self.recovery_peers {
            if *peer > rank {
                continue;
            }
            match self
                .endpoint
                .recv(*peer, Tag::CoupledResult, "coupled result receive")?
            {
                Message::CoupledResult { rows, values } => {
                    if rows.len() != values.len() {
                        return Err(CommError::Protocol(format!(
                            "coupled result from rank {peer}: {} rows for {} values",
                            rows.len(),
                            values.len()
                        )));
                    }
                    entries.extend(rows.into_iter().map(|r| r as usize).zip(values));
                }
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
        entries.sort_by_key(|&(row, _)| row);
        entries.dedup_by_key(|&mut (row, _)| row);
        for peer in &self.recovery_peers {
            if *peer < rank {
                continue;
            }
            self.endpoint.send(
                *peer,
                &Message::CoupledResult {
                    rows: entries.iter().map(|&(r, _)| r as u64).collect(),
                    values: entries.iter().map(|&(_, v)| v).collect(),
                },
                "coupled result send",
            )?;
        }
        Ok(entries)
    }
}

// ---------------------------------------------------------------------------
// Worker processes: spec, launcher, worker entry point.
// ---------------------------------------------------------------------------

/// Which rank loop a worker process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerSolver {
    /// Classic distributed CG.
    Cg,
    /// Block-Jacobi distributed PCG.
    Pcg,
    /// Merged-reduction (Chronopoulos–Gear) CG.
    CgMerged,
    /// Merged-reduction block-Jacobi PCG.
    PcgMerged,
}

impl WorkerSolver {
    fn as_str(self) -> &'static str {
        match self {
            WorkerSolver::Cg => "cg",
            WorkerSolver::Pcg => "pcg",
            WorkerSolver::CgMerged => "cg-merged",
            WorkerSolver::PcgMerged => "pcg-merged",
        }
    }

    fn parse(s: &str) -> Option<WorkerSolver> {
        Some(match s {
            "cg" => WorkerSolver::Cg,
            "pcg" => WorkerSolver::Pcg,
            "cg-merged" => WorkerSolver::CgMerged,
            "pcg-merged" => WorkerSolver::PcgMerged,
            _ => return None,
        })
    }
}

/// The textual form of a recovery policy carried by `FEIR_WORKER_POLICY`.
fn policy_str(policy: RecoveryPolicy) -> String {
    match policy {
        RecoveryPolicy::Ideal => "ideal".into(),
        RecoveryPolicy::Trivial => "trivial".into(),
        RecoveryPolicy::TrivialReplace => "trivial-replace".into(),
        RecoveryPolicy::Checkpoint { interval } => format!("checkpoint:{interval}"),
        RecoveryPolicy::LossyRestart => "lossy".into(),
        RecoveryPolicy::Feir => "feir".into(),
        RecoveryPolicy::Afeir => "afeir".into(),
    }
}

fn parse_policy(s: &str) -> Option<RecoveryPolicy> {
    Some(match s {
        "ideal" => RecoveryPolicy::Ideal,
        "trivial" => RecoveryPolicy::Trivial,
        "trivial-replace" => RecoveryPolicy::TrivialReplace,
        "lossy" => RecoveryPolicy::LossyRestart,
        "feir" => RecoveryPolicy::Feir,
        "afeir" => RecoveryPolicy::Afeir,
        other => {
            let interval: usize = other.strip_prefix("checkpoint:")?.parse().ok()?;
            RecoveryPolicy::Checkpoint { interval }
        }
    })
}

/// A deterministic multi-process solve: every worker rebuilds the same
/// problem from `(grid, rhs_seed)`, so no matrix data crosses the wire.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Rank loop to run.
    pub solver: WorkerSolver,
    /// Poisson grid side; the system has `grid²` unknowns.
    pub grid: usize,
    /// Seed of the manufactured right-hand side.
    pub rhs_seed: u64,
    /// Number of worker processes.
    pub ranks: usize,
    /// Page-doubles granularity for the PCG preconditioner.
    pub page_doubles: usize,
    /// Convergence tolerance on the relative residual.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl ProcessSpec {
    /// A small CG spec, convenient for tests and smoke runs.
    pub fn cg(grid: usize, ranks: usize) -> ProcessSpec {
        ProcessSpec {
            solver: WorkerSolver::Cg,
            grid,
            rhs_seed: 5,
            ranks,
            page_doubles: 1,
            tolerance: 1e-10,
            max_iterations: 10_000,
        }
    }
}

/// Optional behaviour of a worker fleet beyond the plain [`ProcessSpec`]:
/// the resilient/elastic path, transport fault injection and mesh tuning.
/// Everything defaults to "off"/inherit-the-mesh-default, so
/// `WorkerOptions::default()` reproduces the plain PR 6 fleet.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Run the resilient rank loop under this recovery policy (classic
    /// `cg`/`pcg` solvers only). `None` runs the plain loop.
    pub policy: Option<RecoveryPolicy>,
    /// Enable rank elasticity: workers park at the rejoin barrier on a
    /// peer's death instead of failing, awaiting [`WorkerHandles::respawn_rank`].
    pub elastic: bool,
    /// Deterministic transport fault injection for every worker's links.
    pub chaos: Option<ChaosConfig>,
    /// Overrides [`MeshOptions::max_retries`].
    pub max_retries: Option<u32>,
    /// Overrides [`MeshOptions::retransmit_timeout`].
    pub retransmit_timeout: Option<Duration>,
    /// Overrides [`MeshOptions::connect_timeout`].
    pub connect_timeout: Option<Duration>,
    /// Overrides [`MeshOptions::read_timeout`]; `Some(None)` disables the
    /// read deadline entirely.
    pub read_timeout: Option<Option<Duration>>,
    /// Per-iteration throttle sleep inside each worker's rank loop — lets
    /// kill/respawn tests land a failure mid-solve deterministically
    /// without a huge problem.
    pub spin: Option<Duration>,
}

/// A failure of the multi-process launcher or one of its workers.
#[derive(Debug)]
pub enum ProcessError {
    /// Could not create the rendezvous or spawn a worker.
    Spawn(std::io::Error),
    /// A worker reported a typed communication failure.
    Comm {
        /// The rank that reported it.
        rank: usize,
        /// The reconstructed communication error.
        error: CommError,
    },
    /// A worker failed outside the comm layer, or died without reporting.
    Worker {
        /// The rank concerned.
        rank: usize,
        /// What happened.
        message: String,
    },
    /// A worker's report frame could not be understood.
    Protocol {
        /// The rank concerned.
        rank: usize,
        /// What was wrong with the report.
        message: String,
    },
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::Spawn(e) => write!(f, "failed to launch workers: {e}"),
            ProcessError::Comm { rank, error } => write!(f, "rank {rank}: {error}"),
            ProcessError::Worker { rank, message } => write!(f, "rank {rank} failed: {message}"),
            ProcessError::Protocol { rank, message } => {
                write!(f, "rank {rank} sent a bad report: {message}")
            }
        }
    }
}

impl std::error::Error for ProcessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcessError::Spawn(e) => Some(e),
            ProcessError::Comm { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Removes the rendezvous directory when the run is over.
#[derive(Debug)]
struct RunDirGuard(PathBuf);

impl Drop for RunDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The spawned worker fleet of one multi-process solve.
#[derive(Debug)]
pub struct WorkerHandles {
    children: Vec<Child>,
    spec: ProcessSpec,
    worker: PathBuf,
    transport: Transport,
    options: WorkerOptions,
    /// Respawn count per rank; a respawned worker rebinds under its bumped
    /// epoch and the survivors expect exactly that epoch in its Hello.
    epochs: Vec<u64>,
    ranks: usize,
    _dir: Option<RunDirGuard>,
}

impl WorkerHandles {
    /// Kills the worker process of `rank` (SIGKILL), simulating a node
    /// failure mid-solve. Surviving ranks observe the closed sockets as
    /// [`CommError::Disconnected`].
    pub fn kill_rank(&mut self, rank: usize) -> std::io::Result<()> {
        self.children[rank].kill()
    }

    /// OS process ids of the current worker incarnations, in rank order.
    pub fn pids(&self) -> Vec<u32> {
        self.children.iter().map(Child::id).collect()
    }

    /// Restarts the (killed) worker of `rank` under the next epoch. With
    /// [`WorkerOptions::elastic`] set, the survivors re-handshake the
    /// newcomer at the rejoin barrier and the solve continues; rank 0 hosts
    /// the collectives and cannot be respawned.
    pub fn respawn_rank(&mut self, rank: usize) -> std::io::Result<()> {
        // Make sure the old incarnation is gone before its successor binds.
        let _ = self.children[rank].kill();
        let _ = self.children[rank].wait();
        self.epochs[rank] += 1;
        let child = spawn_one(
            &self.worker,
            &self.spec,
            &self.transport,
            &self.options,
            rank,
            self.ranks,
            &self.epochs,
        )?;
        self.children[rank] = child;
        Ok(())
    }

    /// Collects every worker's report and assembles the solve result,
    /// exactly as the thread-backed `run_ranks` assembles rank outcomes.
    pub fn join(mut self) -> Result<DistSolveResult, ProcessError> {
        let spec = self.spec.clone();
        let n = spec.grid * spec.grid;
        let ranks = crate::comm::effective_ranks(n, spec.ranks);
        let partition = RankPartition::new(n, ranks);

        let mut reports: Vec<Result<Message, ProcessError>> = Vec::with_capacity(ranks);
        let mut dumps: Vec<Message> = Vec::with_capacity(ranks);
        for (rank, child) in self.children.iter_mut().enumerate() {
            let stdout = child.stdout.as_mut().expect("worker stdout is piped");
            let mut frames = FrameReader::new();
            let report = match frames.read_message(stdout) {
                Ok(msg) => Ok(msg),
                Err(WireError::Closed) | Err(WireError::Truncated { .. }) => {
                    Err(ProcessError::Worker {
                        rank,
                        message: "exited without a report (killed or crashed)".into(),
                    })
                }
                Err(e) => Err(ProcessError::Protocol {
                    rank,
                    message: e.to_string(),
                }),
            };
            // Every worker follows its report with a TraceDump frame; a
            // missing or malformed one (worker killed mid-write) only costs
            // the trace, never the solve result.
            if report.is_ok() {
                if let Ok(dump @ Message::TraceDump { .. }) = frames.read_message(stdout) {
                    dumps.push(dump);
                }
            }
            reports.push(report);
        }
        // Reap everything (kill is a no-op on the already-exited).
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }

        let mut x = vec![0.0; n];
        let mut iterations = 0;
        let mut residual_history = Vec::new();
        let mut allreduces = 0;
        let mut first_error: Option<ProcessError> = None;
        let mut comm_error: Option<ProcessError> = None;
        for (rank, report) in reports.into_iter().enumerate() {
            match report {
                Ok(Message::RankResult {
                    rank: reported,
                    iterations: iters,
                    collectives,
                    x: x_own,
                    history,
                }) => {
                    if reported as usize != rank {
                        return Err(ProcessError::Protocol {
                            rank,
                            message: format!("report claims rank {reported}"),
                        });
                    }
                    let own = partition.range(rank);
                    if x_own.len() != own.len() {
                        return Err(ProcessError::Protocol {
                            rank,
                            message: format!(
                                "solution block has {} entries, expected {}",
                                x_own.len(),
                                own.len()
                            ),
                        });
                    }
                    x[own].copy_from_slice(&x_own);
                    iterations = iters as usize;
                    if rank == 0 {
                        residual_history = history;
                        allreduces = collectives;
                    }
                }
                Ok(Message::RankError {
                    kind,
                    peer,
                    message,
                    ..
                }) => {
                    let err = rank_error_to_process_error(rank, kind, peer, message);
                    if matches!(err, ProcessError::Comm { .. }) && comm_error.is_none() {
                        comm_error = Some(err);
                    } else if first_error.is_none() {
                        first_error = Some(err);
                    }
                }
                Ok(other) => {
                    return Err(ProcessError::Protocol {
                        rank,
                        message: format!("unexpected report frame {:?}", other.tag()),
                    })
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        // A typed comm failure is the most informative outcome: it names the
        // disconnect the surviving ranks observed.
        if let Some(err) = comm_error.or(first_error) {
            return Err(err);
        }

        // Merge the workers' trace dumps: the launcher is the "rank 0" of
        // the collection — it holds every rank's stream plus the summed
        // link counters.
        let mut net = crate::cg::NetStats::default();
        let mut rank_traces = Vec::new();
        for dump in dumps {
            let Message::TraceDump {
                rank,
                origin_micros,
                dropped,
                link,
                events,
            } = dump
            else {
                unreachable!("only TraceDump frames are collected above");
            };
            let stats = crate::cg::NetStats::from_wire(link);
            net.accumulate(stats);
            let events: Vec<feir_trace::Event> = events
                .iter()
                .filter_map(|&(p, start_ns, dur_ns)| {
                    feir_trace::Phase::from_u8(p).map(|phase| feir_trace::Event {
                        phase,
                        start_ns,
                        dur_ns,
                    })
                })
                .collect();
            if !events.is_empty() || dropped > 0 {
                rank_traces.push(feir_trace::RankTrace {
                    rank,
                    origin_micros,
                    dropped,
                    events,
                    link_frames: stats.data_frames,
                    link_retransmits: stats.retransmits,
                    link_faults: stats.injected_faults,
                    link_rejected: stats.rejected,
                    link_dup_received: stats.dup_received,
                });
            }
        }
        let trace = (!rank_traces.is_empty()).then(|| feir_trace::SolveTrace::new(rank_traces));

        let a = feir_sparse::generators::poisson_2d(spec.grid);
        let (_, b) = feir_sparse::generators::manufactured_rhs(&a, spec.rhs_seed);
        let relative_residual = kernels::explicit_relative_residual(&a, &b, &x);
        Ok(DistSolveResult {
            x,
            iterations,
            relative_residual,
            ranks,
            converged: relative_residual <= spec.tolerance,
            residual_history,
            allreduces,
            net,
            trace,
        })
    }
}

impl Drop for WorkerHandles {
    /// A dropped fleet is a dead fleet: without this, a panicking test (or a
    /// caller that simply forgets to `join`) leaks orphan worker processes
    /// that keep their sockets — and possibly a rendezvous directory — alive
    /// indefinitely. `join` reaps everything itself, so reaching this with
    /// already-waited children is a harmless no-op (`kill` on a reaped child
    /// errors and is ignored; `wait` returns the cached status).
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Reconstructs the typed error a worker reported over the wire.
fn rank_error_to_process_error(
    rank: usize,
    kind: RankErrorKind,
    peer: i32,
    message: String,
) -> ProcessError {
    match kind {
        RankErrorKind::Disconnected => ProcessError::Comm {
            rank,
            error: CommError::Disconnected {
                peer: usize::try_from(peer).ok(),
                during: "remote solve",
            },
        },
        RankErrorKind::Timeout => ProcessError::Comm {
            rank,
            error: CommError::Timeout {
                peer: usize::try_from(peer).unwrap_or(0),
                during: "remote solve",
            },
        },
        RankErrorKind::Wire => ProcessError::Comm {
            rank,
            error: CommError::Protocol(format!("wire error on remote rank: {message}")),
        },
        RankErrorKind::Other => ProcessError::Worker { rank, message },
    }
}

static RUN_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A unique rendezvous directory for one mesh run.
pub(crate) fn fresh_run_dir() -> std::io::Result<PathBuf> {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "feir-mesh-{}-{}-{}",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        nanos
    ));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Spawns the worker process of one rank with the full env protocol.
fn spawn_one(
    worker: &Path,
    spec: &ProcessSpec,
    transport: &Transport,
    options: &WorkerOptions,
    rank: usize,
    ranks: usize,
    epochs: &[u64],
) -> std::io::Result<Child> {
    let mut cmd = Command::new(worker);
    cmd.env(ENV_RANK, rank.to_string())
        .env(ENV_RANKS, ranks.to_string())
        .env(ENV_SOLVER, spec.solver.as_str())
        .env(ENV_GRID, spec.grid.to_string())
        .env(ENV_SEED, spec.rhs_seed.to_string())
        .env(ENV_TOL, format!("{:e}", spec.tolerance))
        .env(ENV_MAXIT, spec.max_iterations.to_string())
        .env(ENV_PAGE, spec.page_doubles.to_string())
        .env(
            ENV_EPOCHS,
            epochs
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(","),
        )
        .stdout(Stdio::piped())
        .stdin(Stdio::null());
    match transport {
        Transport::Uds { dir } => {
            cmd.env(ENV_TRANSPORT, "uds").env(ENV_DIR, dir);
        }
        Transport::Tcp { base_port } => {
            cmd.env(ENV_TRANSPORT, "tcp")
                .env(ENV_TCP_BASE, base_port.to_string());
        }
    }
    if let Some(policy) = options.policy {
        cmd.env(ENV_POLICY, policy_str(policy));
    }
    if options.elastic {
        cmd.env(ENV_ELASTIC, "1");
    }
    if let Some(chaos) = &options.chaos {
        cmd.env(ENV_CHAOS, chaos.to_string());
    }
    if let Some(retries) = options.max_retries {
        cmd.env(ENV_RETRY_MAX, retries.to_string());
    }
    if let Some(rto) = options.retransmit_timeout {
        cmd.env(ENV_RTO_MS, rto.as_millis().to_string());
    }
    if let Some(connect) = options.connect_timeout {
        cmd.env(ENV_CONNECT_TIMEOUT_MS, connect.as_millis().to_string());
    }
    if let Some(read) = options.read_timeout {
        // `0` is the explicit "no deadline" encoding.
        let ms = read.map(|d| d.as_millis()).unwrap_or(0);
        cmd.env(ENV_READ_TIMEOUT_MS, ms.to_string());
    }
    if let Some(spin) = options.spin {
        cmd.env(ENV_SPIN_MS, spin.as_millis().to_string());
    }
    // Forward the SpMV storage-format override explicitly (rather than by
    // env inheritance) so every rank of a mesh solves with the same format,
    // and validate it here: a malformed value must fail the launch, not
    // panic inside a remote rank mid-solve.
    if let Ok(raw) = std::env::var(ENV_SPMV_FORMAT) {
        SpmvFormat::parse(&raw)
            .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))?;
        cmd.env(ENV_SPMV_FORMAT, raw);
    }
    cmd.spawn()
}

/// Spawns one worker process per rank over the given transport, with
/// [`WorkerOptions`] controlling resilience, elasticity and fault
/// injection. `worker` is any executable whose main calls [`worker_main`]
/// (e.g. the `feir-rank-worker` binary, or a self-re-executing example).
pub fn spawn_workers_with(
    worker: &Path,
    spec: &ProcessSpec,
    transport: &Transport,
    options: &WorkerOptions,
) -> Result<WorkerHandles, ProcessError> {
    let n = spec.grid * spec.grid;
    let ranks = crate::comm::effective_ranks(n, spec.ranks);
    let dir_guard = match transport {
        Transport::Uds { dir } => {
            // The rendezvous directory must exist before any worker binds.
            std::fs::create_dir_all(dir).map_err(ProcessError::Spawn)?;
            Some(RunDirGuard(dir.clone()))
        }
        Transport::Tcp { .. } => None,
    };
    let epochs = vec![0u64; ranks];
    let mut children = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        match spawn_one(worker, spec, transport, options, rank, ranks, &epochs) {
            Ok(child) => children.push(child),
            Err(e) => {
                // Tear down what already started.
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(ProcessError::Spawn(e));
            }
        }
    }
    Ok(WorkerHandles {
        children,
        spec: spec.clone(),
        worker: worker.to_path_buf(),
        transport: transport.clone(),
        options: options.clone(),
        epochs,
        ranks,
        _dir: dir_guard,
    })
}

/// [`spawn_workers_with`] under default [`WorkerOptions`] — the plain
/// (non-resilient, fault-free) fleet.
pub fn spawn_workers(
    worker: &Path,
    spec: &ProcessSpec,
    transport: &Transport,
) -> Result<WorkerHandles, ProcessError> {
    spawn_workers_with(worker, spec, transport, &WorkerOptions::default())
}

/// Runs a complete multi-process solve over Unix domain sockets in a fresh
/// rendezvous directory and returns the assembled result.
pub fn solve_with_processes(
    worker: &Path,
    spec: &ProcessSpec,
) -> Result<DistSolveResult, ProcessError> {
    let dir = fresh_run_dir().map_err(ProcessError::Spawn)?;
    spawn_workers(worker, spec, &Transport::Uds { dir })?.join()
}

const ENV_RANK: &str = "FEIR_WORKER_RANK";
const ENV_RANKS: &str = "FEIR_WORKER_RANKS";
const ENV_TRANSPORT: &str = "FEIR_WORKER_TRANSPORT";
const ENV_DIR: &str = "FEIR_WORKER_DIR";
const ENV_TCP_BASE: &str = "FEIR_WORKER_TCP_BASE";
const ENV_SOLVER: &str = "FEIR_WORKER_SOLVER";
const ENV_GRID: &str = "FEIR_WORKER_GRID";
const ENV_SEED: &str = "FEIR_WORKER_SEED";
const ENV_TOL: &str = "FEIR_WORKER_TOL";
const ENV_MAXIT: &str = "FEIR_WORKER_MAXIT";
const ENV_PAGE: &str = "FEIR_WORKER_PAGE";
const ENV_POLICY: &str = "FEIR_WORKER_POLICY";
const ENV_ELASTIC: &str = "FEIR_WORKER_ELASTIC";
const ENV_EPOCHS: &str = "FEIR_WORKER_EPOCHS";
const ENV_CHAOS: &str = "FEIR_WORKER_CHAOS";
const ENV_CONNECT_TIMEOUT_MS: &str = "FEIR_WORKER_CONNECT_TIMEOUT_MS";
const ENV_READ_TIMEOUT_MS: &str = "FEIR_WORKER_READ_TIMEOUT_MS";
const ENV_RETRY_MAX: &str = "FEIR_WORKER_RETRY_MAX";
const ENV_RTO_MS: &str = "FEIR_WORKER_RTO_MS";
const ENV_SPIN_MS: &str = "FEIR_WORKER_SPIN_MS";

/// True when this process was spawned as a rank worker (the launcher set the
/// `FEIR_WORKER_*` environment). A self-re-executing launcher (like
/// `examples/dist_process.rs`) checks this first and calls [`worker_main`].
pub fn spawned_as_worker() -> bool {
    std::env::var_os(ENV_RANK).is_some()
}

#[derive(Debug)]
struct WorkerEnv {
    rank: usize,
    ranks: usize,
    transport: Transport,
    solver: WorkerSolver,
    grid: usize,
    rhs_seed: u64,
    page_doubles: usize,
    tolerance: f64,
    max_iterations: usize,
    policy: Option<RecoveryPolicy>,
    elastic: bool,
    epochs: Vec<u64>,
    chaos: Option<ChaosConfig>,
    connect_timeout: Option<Duration>,
    read_timeout: Option<Option<Duration>>,
    max_retries: Option<u32>,
    retransmit_timeout: Option<Duration>,
    spin: Duration,
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Result<T, String> {
    let raw = std::env::var(key).map_err(|_| format!("{key} is not set"))?;
    raw.parse().map_err(|_| format!("{key}={raw} is invalid"))
}

/// Parses an optional `FEIR_WORKER_*` variable: absent is `None`, present
/// but malformed is a hard error — a worker must never run on silently
/// misread configuration.
fn env_parse_opt<T: std::str::FromStr>(key: &str) -> Result<Option<T>, String> {
    match std::env::var(key) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{key} is not unicode")),
        Ok(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("{key}={raw} is invalid")),
    }
}

impl WorkerEnv {
    fn from_env() -> Result<WorkerEnv, String> {
        let transport = match std::env::var(ENV_TRANSPORT).as_deref() {
            Ok("uds") => Transport::Uds {
                dir: PathBuf::from(
                    std::env::var_os(ENV_DIR).ok_or_else(|| format!("{ENV_DIR} is not set"))?,
                ),
            },
            Ok("tcp") => Transport::Tcp {
                base_port: env_parse(ENV_TCP_BASE)?,
            },
            other => return Err(format!("{ENV_TRANSPORT}={other:?} is invalid")),
        };
        let solver_raw: String = env_parse(ENV_SOLVER)?;
        let solver = WorkerSolver::parse(&solver_raw)
            .ok_or_else(|| format!("{ENV_SOLVER}={solver_raw} is invalid"))?;
        let policy = match env_parse_opt::<String>(ENV_POLICY)? {
            None => None,
            Some(raw) => {
                Some(parse_policy(&raw).ok_or_else(|| format!("{ENV_POLICY}={raw} is invalid"))?)
            }
        };
        let elastic = match env_parse_opt::<String>(ENV_ELASTIC)? {
            None => false,
            Some(raw) => match raw.as_str() {
                "0" => false,
                "1" => true,
                _ => return Err(format!("{ENV_ELASTIC}={raw} is invalid")),
            },
        };
        let epochs = match env_parse_opt::<String>(ENV_EPOCHS)? {
            None => Vec::new(),
            Some(raw) => {
                let mut epochs = Vec::new();
                for part in raw.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    epochs.push(
                        part.parse::<u64>()
                            .map_err(|_| format!("{ENV_EPOCHS}={raw} is invalid"))?,
                    );
                }
                epochs
            }
        };
        let chaos = match env_parse_opt::<String>(ENV_CHAOS)? {
            None => None,
            Some(raw) => {
                Some(ChaosConfig::parse(&raw).map_err(|e| format!("{ENV_CHAOS}={raw}: {e}"))?)
            }
        };
        let read_timeout = env_parse_opt::<u64>(ENV_READ_TIMEOUT_MS)?.map(|ms| {
            // 0 explicitly disables the deadline.
            (ms > 0).then(|| Duration::from_millis(ms))
        });
        // The storage-format override is read directly by `SpmvBackend`
        // inside the solver loops; validate it up front so a malformed value
        // fails the worker at startup like every other env knob, instead of
        // panicking mid-solve.
        if let Some(raw) = env_parse_opt::<String>(ENV_SPMV_FORMAT)? {
            SpmvFormat::parse(&raw)?;
        }
        Ok(WorkerEnv {
            rank: env_parse(ENV_RANK)?,
            ranks: env_parse(ENV_RANKS)?,
            transport,
            solver,
            grid: env_parse(ENV_GRID)?,
            rhs_seed: env_parse(ENV_SEED)?,
            page_doubles: env_parse(ENV_PAGE)?,
            tolerance: env_parse(ENV_TOL)?,
            max_iterations: env_parse(ENV_MAXIT)?,
            policy,
            elastic,
            epochs,
            chaos,
            connect_timeout: env_parse_opt::<u64>(ENV_CONNECT_TIMEOUT_MS)?
                .map(Duration::from_millis),
            read_timeout,
            max_retries: env_parse_opt(ENV_RETRY_MAX)?,
            retransmit_timeout: env_parse_opt::<u64>(ENV_RTO_MS)?.map(Duration::from_millis),
            spin: env_parse_opt::<u64>(ENV_SPIN_MS)?
                .map(Duration::from_millis)
                .unwrap_or(Duration::ZERO),
        })
    }
}

/// The mesh options a worker's env overrides resolve to.
fn mesh_options_from_env(env: &WorkerEnv) -> MeshOptions {
    let mut options = MeshOptions::default();
    if let Some(connect) = env.connect_timeout {
        options.connect_timeout = connect;
    }
    if let Some(read) = env.read_timeout {
        options.read_timeout = read;
    }
    if let Some(retries) = env.max_retries {
        options.max_retries = retries;
    }
    if let Some(rto) = env.retransmit_timeout {
        options.retransmit_timeout = rto;
    }
    options.chaos = env.chaos.clone();
    options.elastic = env.elastic;
    options.epochs = env.epochs.clone();
    options
}

/// Joins the mesh, runs this rank's loop and returns the report frame.
/// `links_out` receives the endpoint's per-peer reliability counters as
/// soon as the mesh is up, so the caller can report them even when the
/// solve later fails.
fn run_worker(env: &WorkerEnv, links_out: &mut Vec<Arc<LinkStats>>) -> Result<Message, CommError> {
    let a = feir_sparse::generators::poisson_2d(env.grid);
    let (_, b) = feir_sparse::generators::manufactured_rhs(&a, env.rhs_seed);
    let n = a.rows();
    let ranks = crate::comm::effective_ranks(n, env.ranks);
    let partition = RankPartition::new(n, ranks);
    let options = mesh_options_from_env(env);
    if env.policy.is_some() || env.elastic {
        return run_worker_resilient(env, &a, &b, &partition, ranks, &options, links_out);
    }
    let plan = HaloPlan::build(&a, &partition);
    let endpoint = connect_mesh(env.rank, ranks, &env.transport, &options)?;
    *links_out = endpoint.stats.clone();
    let comm = RankComm::over_process(&plan, endpoint);
    let (rank, x_own, iterations, history, collectives) = match env.solver {
        WorkerSolver::Cg => {
            crate::cg::rank_cg(&a, &b, comm, &partition, env.tolerance, env.max_iterations)?
        }
        WorkerSolver::Pcg => crate::pcg::rank_pcg(
            &a,
            &b,
            comm,
            &partition,
            env.page_doubles,
            env.tolerance,
            env.max_iterations,
        )?,
        WorkerSolver::CgMerged => crate::merged::rank_cg_merged(
            &a,
            &b,
            comm,
            &partition,
            env.tolerance,
            env.max_iterations,
        )?,
        WorkerSolver::PcgMerged => crate::merged::rank_pcg_merged(
            &a,
            &b,
            comm,
            &partition,
            env.page_doubles,
            env.tolerance,
            env.max_iterations,
        )?,
    };
    Ok(Message::RankResult {
        rank: rank as u32,
        iterations: iterations as u64,
        collectives,
        x: x_own,
        history,
    })
}

/// The resilient/elastic worker path: the full recovery-policy rank loop
/// ([`crate::rank_loop`]) over the process mesh, optionally under the
/// elastic rejoin harness (`crate::elastic`). Supports the classic
/// `cg`/`pcg` solvers (the merged loops have no resilient engine binding
/// on this transport yet).
fn run_worker_resilient(
    env: &WorkerEnv,
    a: &feir_sparse::CsrMatrix,
    b: &[f64],
    partition: &RankPartition,
    ranks: usize,
    options: &MeshOptions,
    links_out: &mut Vec<Arc<LinkStats>>,
) -> Result<Message, CommError> {
    use crate::elastic::{rank_elastic_solve, ElasticCfg};
    use crate::rank_loop::{rank_resilient_solve, RankCtx};
    use crate::resilient::ProtectedVector;
    use feir_recovery::{CgRelations, PcgRelations};
    use feir_sparse::blocking::BlockPartition;

    let policy = env.policy.unwrap_or(RecoveryPolicy::Ideal);
    if !matches!(env.solver, WorkerSolver::Cg | WorkerSolver::Pcg) {
        return Err(CommError::Protocol(
            "the resilient/elastic worker path supports only the classic cg and pcg solvers".into(),
        ));
    }
    let plan = HaloPlan::build(a, partition);
    let endpoint = connect_mesh(env.rank, ranks, &env.transport, options)?;
    *links_out = endpoint.stats.clone();
    let comm = RankComm::over_process(&plan, endpoint);
    let rank = env.rank;
    let own = partition.range(rank);
    let pages = BlockPartition::new(own.len(), env.page_doubles.max(1));
    let registry = std::sync::Arc::new(feir_pagemem::PageRegistry::new());
    if policy.needs_protection() {
        let protected: &[ProtectedVector] = if env.solver == WorkerSolver::Pcg {
            &[
                ProtectedVector::X,
                ProtectedVector::G,
                ProtectedVector::D,
                ProtectedVector::Q,
                ProtectedVector::Z,
            ]
        } else {
            &[
                ProtectedVector::X,
                ProtectedVector::G,
                ProtectedVector::D,
                ProtectedVector::Q,
            ]
        };
        for vector in protected {
            let id = registry.register(format!("rank{rank}/{}", vector.name()), pages.num_blocks());
            debug_assert_eq!(id, vector.id());
        }
    }
    let ctx = RankCtx {
        a,
        b,
        policy,
        tolerance: env.tolerance,
        max_iterations: env.max_iterations,
        rank,
        own,
        pages,
        registry,
        partition: partition.clone(),
        scripted: Vec::new(),
        throttle: env.spin,
    };
    let cfg = ElasticCfg {
        newcomer: env.epochs.get(rank).copied().unwrap_or(0) > 0,
        max_rejoins: 4,
    };
    let outcome = match env.solver {
        WorkerSolver::Cg => {
            let relations = CgRelations::new(a, b);
            if env.elastic {
                rank_elastic_solve(&ctx, &relations, comm, &cfg)?
            } else {
                rank_resilient_solve(ctx, &relations, comm)?
            }
        }
        WorkerSolver::Pcg => {
            let jacobi = feir_sparse::LocalBlockJacobi::new(
                ctx.a,
                ctx.own.clone(),
                ctx.pages.block_size(),
                true,
            )
            .expect("rank-local block-Jacobi construction failed");
            let relations = PcgRelations::new(a, b, &jacobi);
            if env.elastic {
                rank_elastic_solve(&ctx, &relations, comm, &cfg)?
            } else {
                rank_resilient_solve(ctx, &relations, comm)?
            }
        }
        _ => unreachable!("guarded above"),
    };
    Ok(Message::RankResult {
        rank: outcome.rank as u32,
        iterations: outcome.iterations as u64,
        collectives: outcome.allreduces,
        x: outcome.x_own,
        history: outcome.history,
    })
}

/// Encodes a comm failure as the typed wire report.
fn comm_error_report(rank: usize, error: &CommError) -> Message {
    let (kind, peer) = match error {
        CommError::Disconnected { peer, .. } => (
            RankErrorKind::Disconnected,
            peer.map(|p| p as i32).unwrap_or(-1),
        ),
        CommError::Timeout { peer, .. } => (RankErrorKind::Timeout, *peer as i32),
        CommError::Wire(_) => (RankErrorKind::Wire, -1),
        CommError::Protocol(_) => (RankErrorKind::Other, -1),
    };
    Message::RankError {
        rank: rank as u32,
        kind,
        peer,
        message: error.to_string(),
    }
}

/// Entry point of a rank worker process: parse the `FEIR_WORKER_*`
/// environment, run the rank loop and write the report frame to stdout.
///
/// Call this from a dedicated binary (`feir-rank-worker`) or from any
/// launcher that re-executes itself (check [`spawned_as_worker`] first).
pub fn worker_main() -> std::process::ExitCode {
    let env = match WorkerEnv::from_env() {
        Ok(env) => env,
        Err(msg) => {
            eprintln!("feir rank worker: {msg}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let rank = env.rank;
    // Everything this process records — solver thread and per-link reader
    // threads alike — belongs to this one rank.
    feir_trace::set_process_rank(rank as u32);
    let mut links: Vec<Arc<LinkStats>> = Vec::new();
    let report = match run_worker(&env, &mut links) {
        Ok(result) => result,
        // `run_worker` returning drops the endpoint, closing this rank's
        // sockets so any peer still blocked on us unblocks with a
        // disconnect of its own before we even report.
        Err(e) => comm_error_report(rank, &e),
    };
    let failed = matches!(report, Message::RankError { .. });
    let mut out = std::io::stdout().lock();
    let mut scratch = Vec::new();
    if feir_wire::write_message(&mut out, &report, &mut scratch).is_err() || out.flush().is_err() {
        return std::process::ExitCode::FAILURE;
    }
    // The report is always followed by this rank's trace dump (empty when
    // tracing is off) so the launcher can merge streams and surface the
    // link counters; the frame is advisory, so its write errors are
    // ignored — the report above already carried the solve outcome.
    let trace = feir_trace::drain_rank(rank as u32);
    let dump = Message::TraceDump {
        rank: rank as u32,
        origin_micros: trace.origin_micros,
        dropped: trace.dropped,
        link: sum_link_stats(&links).to_wire(),
        events: trace
            .events
            .iter()
            .map(|e| (e.phase as u8, e.start_ns, e.dur_ns))
            .collect(),
    };
    let _ = feir_wire::write_message(&mut out, &dump, &mut scratch);
    let _ = out.flush();
    if failed {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::poisson_2d;
    use std::sync::Barrier;

    /// Builds a thread-backed mesh of process endpoints over the transport
    /// and runs `body` on every rank concurrently.
    fn with_mesh_opts<T: Send>(
        ranks: usize,
        transport: &Transport,
        options: &MeshOptions,
        body: impl Fn(ProcessEndpoint) -> T + Sync,
    ) -> Vec<T> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..ranks)
                .map(|rank| {
                    let transport = transport.clone();
                    let options = options.clone();
                    let body = &body;
                    scope.spawn(move || {
                        let ep = connect_mesh(rank, ranks, &transport, &options)
                            .expect("mesh connect failed");
                        body(ep)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    fn test_options() -> MeshOptions {
        MeshOptions {
            connect_timeout: Duration::from_secs(20),
            read_timeout: Some(Duration::from_secs(20)),
            ..MeshOptions::default()
        }
    }

    fn with_mesh<T: Send>(
        ranks: usize,
        transport: &Transport,
        body: impl Fn(ProcessEndpoint) -> T + Sync,
    ) -> Vec<T> {
        with_mesh_opts(ranks, transport, &test_options(), body)
    }

    fn uds_transport() -> Transport {
        Transport::Uds {
            dir: fresh_run_dir().expect("temp dir"),
        }
    }

    #[test]
    fn chaos_config_round_trips_through_its_display_form() {
        let cfg = ChaosConfig {
            seed: 42,
            rates: FaultRates {
                drop: 0.1,
                duplicate: 0.05,
                delay: 0.025,
                corrupt: 0.0125,
                truncate: 0.03,
            },
            fault_retransmits: true,
        };
        assert_eq!(ChaosConfig::parse(&cfg.to_string()), Ok(cfg.clone()));
        // Two links never share a plan, and the same link always gets the
        // same plan.
        assert_eq!(cfg.plan_for(0, 1), cfg.plan_for(0, 1));
        assert_ne!(cfg.plan_for(0, 1), cfg.plan_for(1, 0));
    }

    #[test]
    fn chaos_config_rejects_malformed_input() {
        for bad in [
            "drop",             // not key=value
            "drop=1.5",         // out of range
            "drop=-0.1",        // out of range
            "drop=abc",         // not a number
            "warp=0.1",         // unknown key
            "all_attempts=2",   // not a flag
            "drop=0.6,dup=0.6", // rates sum over 1
        ] {
            assert!(ChaosConfig::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(ChaosConfig::parse(""), Ok(ChaosConfig::default()));
        assert_eq!(
            ChaosConfig::parse("seed=7").map(|c| c.seed),
            Ok(7),
            "lone seed should parse"
        );
    }

    #[test]
    fn mesh_allreduce_matches_in_process_bitwise() {
        for ranks in [1usize, 2, 4] {
            let transport = uds_transport();
            let _guard = match &transport {
                Transport::Uds { dir } => RunDirGuard(dir.clone()),
                _ => unreachable!(),
            };
            let plan = HaloPlan::empty(ranks);
            let over_wire: Vec<f64> = with_mesh(ranks, &transport, |ep| {
                let comm = RankComm::over_process(&plan, ep);
                comm.allreduce_sum(0.1 + comm.rank() as f64 * 0.3).unwrap()
            });
            let in_process: Vec<f64> = {
                let comms = RankComm::for_ranks(&plan, ranks);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = comms
                        .into_iter()
                        .map(|comm| {
                            scope.spawn(move || {
                                comm.allreduce_sum(0.1 + comm.rank() as f64 * 0.3).unwrap()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            };
            for (a, b) in over_wire.iter().zip(&in_process) {
                assert_eq!(a.to_bits(), b.to_bits(), "{ranks} ranks");
            }
        }
    }

    #[test]
    fn mesh_halo_exchange_moves_the_same_values() {
        let a = poisson_2d(8);
        let n = a.rows();
        let ranks = 4;
        let partition = RankPartition::new(n, ranks);
        let plan = HaloPlan::build(&a, &partition);
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let fulls = with_mesh(ranks, &transport, |ep| {
            let comm = RankComm::over_process(&plan, ep);
            let own = partition.range(comm.rank());
            let mut full = vec![0.0; n];
            for i in own {
                full[i] = (i * i) as f64 + 0.25;
            }
            comm.exchange_halo(&mut full).unwrap();
            (comm.rank(), full)
        });
        for (rank, full) in fulls {
            for (&src, cols) in plan.needs_of(rank) {
                let _ = src;
                for &c in cols {
                    assert_eq!(full[c], (c * c) as f64 + 0.25, "rank {rank} col {c}");
                }
            }
        }
    }

    #[test]
    fn tcp_fallback_carries_the_same_collectives() {
        // Find a free contiguous port range, then run a mesh over loopback.
        let ranks = 2;
        let base = (0..40)
            .map(|k| 42617 + k * 13)
            .find(|&base| {
                (0..ranks as u16).all(|r| {
                    TcpListener::bind(SocketAddr::from((Ipv4Addr::LOCALHOST, base + r))).is_ok()
                })
            })
            .expect("no free port range on loopback");
        let transport = Transport::Tcp { base_port: base };
        let plan = HaloPlan::empty(ranks);
        let sums = with_mesh(ranks, &transport, |ep| {
            let comm = RankComm::over_process(&plan, ep);
            comm.allreduce_vec(vec![1.5 + comm.rank() as f64, -2.0])
                .unwrap()
        });
        for sum in sums {
            assert_eq!(sum, vec![1.5 + 2.5, -4.0]);
        }
    }

    #[test]
    fn dropped_process_peer_is_a_typed_disconnect() {
        let ranks = 2;
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let plan = HaloPlan::empty(ranks);
        let outcomes = with_mesh(ranks, &transport, |ep| {
            let comm = RankComm::over_process(&plan, ep);
            if comm.rank() == 1 {
                // Simulate a dying rank: vanish without entering the
                // collective. Dropping the endpoint closes the sockets.
                drop(comm);
                return None;
            }
            Some(comm.allreduce_sum(1.0))
        });
        let rank0 = outcomes.into_iter().flatten().next().expect("rank 0 ran");
        match rank0 {
            Err(CommError::Disconnected { peer: Some(1), .. }) => {}
            other => panic!("expected typed disconnect from rank 1, got {other:?}"),
        }
    }

    #[test]
    fn mesh_recovery_exchange_matches_in_process() {
        let a = poisson_2d(8);
        let n = a.rows();
        let ranks = 2;
        let partition = RankPartition::new(n, ranks);
        let plan = HaloPlan::build(&a, &partition);
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let results = with_mesh(ranks, &transport, |ep| {
            let comm = RankComm::over_process(&plan, ep);
            let rank = comm.rank();
            let own = partition.range(rank);
            let mut data = vec![0.0; n];
            for i in own.clone() {
                data[i] = i as f64;
            }
            let requests: HashMap<usize, Vec<usize>> = if rank == 0 {
                plan.needs_of(0).clone()
            } else {
                HashMap::new()
            };
            let lost: Vec<usize> = if rank == 1 {
                (own.start..own.start + 4).collect()
            } else {
                Vec::new()
            };
            let (fetched, invalid) = comm.recovery_exchange(&requests, &mut data, &lost).unwrap();
            (rank, fetched, invalid, data)
        });
        let boundary = partition.range(1).start;
        for (rank, fetched, invalid, data) in results {
            if rank == 0 {
                assert!(fetched > 0);
                assert!(invalid.contains(&boundary), "lost row not flagged");
                for (&src, cols) in plan.needs_of(0) {
                    let _ = src;
                    for &c in cols {
                        assert_eq!(data[c], c as f64);
                    }
                }
            } else {
                assert_eq!(fetched, 0);
                assert!(invalid.is_empty());
            }
        }
    }

    #[test]
    fn lossy_mesh_collectives_are_bitwise_identical_to_clean() {
        let ranks = 2;
        let rounds = 40;
        let run = |options: &MeshOptions| -> Vec<(Vec<f64>, u64)> {
            let transport = uds_transport();
            let _guard = match &transport {
                Transport::Uds { dir } => RunDirGuard(dir.clone()),
                _ => unreachable!(),
            };
            let plan = HaloPlan::empty(ranks);
            with_mesh_opts(ranks, &transport, options, |ep| {
                let stats: Vec<_> = (0..ranks)
                    .filter(|&p| p != ep.rank())
                    .map(|p| ep.link_stats(p))
                    .collect();
                let comm = RankComm::over_process(&plan, ep);
                let sums: Vec<f64> = (0..rounds)
                    .map(|round| {
                        comm.allreduce_sum(0.31 * comm.rank() as f64 + 1e-3 * round as f64)
                            .unwrap()
                    })
                    .collect();
                let faults: u64 = stats.iter().map(|s| s.faults()).sum();
                (sums, faults)
            })
        };
        let clean = run(&test_options());
        let lossy = run(&MeshOptions {
            chaos: Some(
                ChaosConfig::parse("seed=42,drop=0.1,dup=0.05,delay=0.05,corrupt=0.05,trunc=0.05")
                    .unwrap(),
            ),
            retransmit_timeout: Duration::from_millis(15),
            ..test_options()
        });
        let injected: u64 = lossy.iter().map(|(_, faults)| faults).sum();
        assert!(injected > 0, "chaos plan injected no faults");
        for (rank, ((clean_sums, _), (lossy_sums, _))) in clean.iter().zip(&lossy).enumerate() {
            for (round, (c, l)) in clean_sums.iter().zip(lossy_sums).enumerate() {
                assert_eq!(
                    c.to_bits(),
                    l.to_bits(),
                    "rank {rank} diverges at round {round}: {c:e} vs {l:e}"
                );
            }
        }
    }

    #[test]
    fn exhausted_retries_surface_as_timeout_not_a_hang() {
        let started = Instant::now();
        let ranks = 2;
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let options = MeshOptions {
            // Every data record — including retransmissions — is dropped, so
            // the sender's retries must exhaust and fail typed.
            chaos: Some(ChaosConfig::parse("drop=1,all_attempts=1").unwrap()),
            max_retries: 2,
            retransmit_timeout: Duration::from_millis(5),
            read_timeout: Some(Duration::from_secs(2)),
            connect_timeout: Duration::from_secs(20),
            ..MeshOptions::default()
        };
        let outcomes = with_mesh_opts(ranks, &transport, &options, |ep| {
            if ep.rank() == 1 {
                ep.send(
                    0,
                    &Message::GatherScalar {
                        rank: 1,
                        value: 1.0,
                    },
                    "allreduce gather",
                )
                .expect("the first transmission is accepted locally");
                ep.recv(0, Tag::BroadcastScalar, "allreduce broadcast")
            } else {
                ep.recv(1, Tag::GatherScalar, "allreduce gather")
            }
        });
        for (rank, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                // Rank 1 (the sender whose retries exhaust) must see the
                // ack-timeout. Rank 0 is passive: it sees either its own
                // read deadline or — when rank 1 fails first and closes the
                // mesh — the peer's disappearance. Both are typed; neither
                // hangs.
                Err(CommError::Timeout { .. }) => {}
                Err(CommError::Disconnected { .. }) if rank == 0 => {}
                other => panic!("rank {rank}: expected a typed timeout, got {other:?}"),
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "retry exhaustion took {:?} — the bounded-retry path is hanging",
            started.elapsed()
        );
    }

    #[test]
    fn corrupt_with_retries_disabled_is_a_typed_wire_error() {
        let ranks = 2;
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let options = MeshOptions {
            chaos: Some(ChaosConfig::parse("corrupt=1").unwrap()),
            max_retries: 0,
            read_timeout: Some(Duration::from_secs(5)),
            connect_timeout: Duration::from_secs(20),
            ..MeshOptions::default()
        };
        let park = Barrier::new(ranks);
        let outcomes = with_mesh_opts(ranks, &transport, &options, |ep| {
            if ep.rank() == 1 {
                let sent = ep.send(
                    0,
                    &Message::GatherScalar {
                        rank: 1,
                        value: 1.0,
                    },
                    "allreduce gather",
                );
                // Keep the sockets open until rank 0 has seen the corrupt
                // frame (an early drop would race a disconnect in).
                park.wait();
                sent.map(|()| None)
            } else {
                let got = ep.recv(1, Tag::GatherScalar, "allreduce gather");
                park.wait();
                got.map(Some)
            }
        });
        let rank0 = outcomes.into_iter().next().expect("rank 0 ran");
        match rank0 {
            Err(CommError::Wire(WireError::BadMagic { .. }))
            | Err(CommError::Wire(WireError::VersionMismatch { .. })) => {}
            other => panic!("expected the corrupt frame's wire error, got {other:?}"),
        }
    }

    #[test]
    fn silent_peer_trips_the_read_deadline() {
        let ranks = 2;
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let options = MeshOptions {
            read_timeout: Some(Duration::from_millis(200)),
            connect_timeout: Duration::from_secs(20),
            ..MeshOptions::default()
        };
        let park = Barrier::new(ranks);
        let outcomes = with_mesh_opts(ranks, &transport, &options, |ep| {
            if ep.rank() == 1 {
                // Connect, handshake — then go silent mid-collective.
                park.wait();
                None
            } else {
                let got = ep.recv(1, Tag::GatherScalar, "collective");
                park.wait();
                Some(got)
            }
        });
        let rank0 = outcomes.into_iter().flatten().next().expect("rank 0 ran");
        match rank0 {
            Err(CommError::Timeout {
                peer: 1,
                during: "collective",
            }) => {}
            other => panic!("expected the read deadline to fire, got {other:?}"),
        }
    }

    #[test]
    fn elastic_mesh_relinks_a_replaced_rank_and_agrees_at_the_barrier() {
        let ranks = 3;
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let options = MeshOptions {
            elastic: true,
            connect_timeout: Duration::from_secs(20),
            read_timeout: Some(Duration::from_secs(20)),
            ..MeshOptions::default()
        };
        let mesh_up = Barrier::new(ranks);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for rank in 0..ranks {
                let transport = transport.clone();
                let options = options.clone();
                let mesh_up = &mesh_up;
                handles.push(scope.spawn(move || {
                    let ep = connect_mesh(rank, ranks, &transport, &options)
                        .expect("mesh connect failed");
                    mesh_up.wait();
                    if rank == 1 {
                        // Die, then come back as the epoch-1 incarnation and
                        // join the barrier fresh — exactly what a respawned
                        // worker process does.
                        drop(ep);
                        let newcomer_options = MeshOptions {
                            epochs: vec![0, 1, 0],
                            ..options
                        };
                        let ep = connect_mesh(rank, ranks, &transport, &newcomer_options)
                            .expect("newcomer reconnect failed");
                        let resume = ep.rejoin_barrier(0).expect("newcomer barrier failed");
                        assert_eq!(resume, 7, "newcomer must adopt the survivors' iteration");
                    } else {
                        // Survivors: notice the death mid-collective, relink
                        // the newcomer, meet the barrier.
                        match ep.recv(1, Tag::GatherScalar, "collective") {
                            Err(CommError::Disconnected { peer: Some(1), .. }) => {}
                            other => panic!("rank {rank}: expected rank 1's death, got {other:?}"),
                        }
                        ep.relink(1).expect("relink failed");
                        let resume = ep.rejoin_barrier(7).expect("survivor barrier failed");
                        assert_eq!(resume, 7);
                    }
                }));
            }
            for h in handles {
                h.join().expect("rank thread panicked");
            }
        });
    }
}
