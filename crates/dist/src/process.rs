//! Process-backed transport: each rank is a real OS process, connected in a
//! full mesh over Unix domain sockets (TCP fallback) and speaking the
//! versioned `feir-wire` frame protocol.
//!
//! # Topology and handshake
//!
//! Every rank binds a listener (`{dir}/rank{r}.sock` for UDS, port
//! `base + r` for TCP), then **connects** to every lower rank and **accepts**
//! from every higher rank — a deadlock-free rendezvous because the
//! connect-to targets form a DAG. Connection attempts retry with exponential
//! backoff until [`MeshOptions::connect_timeout`], so ranks may start in any
//! order. Both sides of every link exchange a `Hello { rank, ranks }` frame;
//! the frame header carries the schema version, so a version skew is
//! rejected at the handshake as [`feir_wire::WireError::VersionMismatch`].
//!
//! # Failure model
//!
//! A rank that dies closes all of its sockets. Peers observe the close as an
//! EOF (reads) or `EPIPE`/reset (writes) and surface it as
//! [`CommError::Disconnected`] — never a panic. A rank that errors out drops
//! its endpoint before reporting, so the disconnect cascades through the
//! mesh and unblocks every rank that was waiting on a collective; an
//! optional per-read deadline ([`MeshOptions::read_timeout`], default 30 s)
//! backstops pathological cases as [`CommError::Timeout`].
//!
//! # Determinism
//!
//! The collectives gather per-rank partials and fold them **in rank order**
//! with the very same arithmetic as the in-process backend (see
//! [`crate::comm`]), and halo payloads are raw little-endian f64 — so a
//! solve over this transport is bitwise identical to the thread-backed one.
//!
//! # Worker processes
//!
//! [`spawn_workers`]/[`solve_with_processes`] launch one worker executable
//! per rank (the `feir-rank-worker` binary, or any process that calls
//! [`worker_main`]), parameterised through `FEIR_WORKER_*` environment
//! variables. Each worker rebuilds the deterministic problem
//! (`poisson_2d(grid)` + `manufactured_rhs(seed)`), joins the mesh, runs its
//! rank loop and reports a `RankResult` (or typed `RankError`) wire frame on
//! stdout.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use feir_wire::{FrameReader, Message, RankErrorKind, Tag, WireError};

use crate::cg::DistSolveResult;
use crate::comm::{fold_partials_rank_ordered, CommError, HaloPlan, RankComm};
use crate::kernels;
use crate::partition::RankPartition;

/// How the rank mesh is carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// Unix domain sockets: rank `r` listens on `{dir}/rank{r}.sock`.
    /// The default — lowest latency, no port allocation.
    Uds {
        /// Rendezvous directory holding the per-rank socket files.
        dir: PathBuf,
    },
    /// TCP loopback fallback: rank `r` listens on `127.0.0.1:{base_port+r}`.
    Tcp {
        /// First port of the contiguous per-rank port range.
        base_port: u16,
    },
}

/// Tuning knobs for [`connect_mesh`].
#[derive(Debug, Clone)]
pub struct MeshOptions {
    /// Overall deadline for establishing every link of the mesh; connection
    /// attempts to not-yet-listening peers retry with exponential backoff
    /// (2 ms doubling to 100 ms) until it expires.
    pub connect_timeout: Duration,
    /// Per-read deadline once connected; `None` blocks forever. The default
    /// (30 s) turns a silently wedged peer into [`CommError::Timeout`]
    /// instead of a hang.
    pub read_timeout: Option<Duration>,
}

impl Default for MeshOptions {
    fn default() -> Self {
        MeshOptions {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// One socket, either flavour.
#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Tcp(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One established link to a peer rank: framed reader + writer plus the
/// typed inbox the demultiplexer stashes out-of-order frames into (e.g. a
/// split-phase gather posted ahead of the same stream's halo payload).
#[derive(Debug)]
struct Link {
    reader: Stream,
    writer: Stream,
    frames: FrameReader,
    inbox: VecDeque<Message>,
}

/// A connected process-backend endpoint for one rank: one framed
/// reader/writer link per peer.
#[derive(Debug)]
pub struct ProcessEndpoint {
    rank: usize,
    ranks: usize,
    /// Indexed by peer rank; `None` at `links[rank]`.
    links: Vec<Option<RefCell<Link>>>,
    scratch: RefCell<Vec<u8>>,
}

/// Maps a low-level frame/IO failure on a peer link to the typed comm error.
fn comm_err(peer: usize, during: &'static str, e: WireError) -> CommError {
    use std::io::ErrorKind;
    match e {
        WireError::Closed => CommError::Disconnected {
            peer: Some(peer),
            during,
        },
        WireError::Io(io) => match io.kind() {
            ErrorKind::UnexpectedEof
            | ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::NotConnected => CommError::Disconnected {
                peer: Some(peer),
                during,
            },
            ErrorKind::WouldBlock | ErrorKind::TimedOut => CommError::Timeout { peer, during },
            _ => CommError::Wire(WireError::Io(io)),
        },
        // A peer truncated mid-frame is a peer that died mid-write.
        WireError::Truncated { .. } => CommError::Disconnected {
            peer: Some(peer),
            during,
        },
        other => CommError::Wire(other),
    }
}

impl ProcessEndpoint {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size of the mesh.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    fn link(&self, peer: usize) -> &RefCell<Link> {
        self.links[peer]
            .as_ref()
            .expect("no link to self or out-of-range peer")
    }

    /// Sends one message to `peer`.
    fn send(&self, peer: usize, msg: &Message, during: &'static str) -> Result<(), CommError> {
        let mut link = self.link(peer).borrow_mut();
        let mut scratch = self.scratch.borrow_mut();
        feir_wire::write_message(&mut link.writer, msg, &mut scratch)
            .map_err(|e| comm_err(peer, during, e))
    }

    /// Receives the next message of `want` from `peer`, stashing any other
    /// frame that arrives first into the link's inbox.
    fn recv(&self, peer: usize, want: Tag, during: &'static str) -> Result<Message, CommError> {
        let mut link = self.link(peer).borrow_mut();
        if let Some(at) = link.inbox.iter().position(|m| m.tag() == want) {
            return Ok(link.inbox.remove(at).expect("position just found"));
        }
        loop {
            let Link { reader, frames, .. } = &mut *link;
            let (tag, payload) = frames
                .read_frame(reader)
                .map_err(|e| comm_err(peer, during, e))?;
            let msg = Message::decode(tag, payload).map_err(|e| comm_err(peer, during, e))?;
            if tag == want {
                return Ok(msg);
            }
            link.inbox.push_back(msg);
        }
    }

    /// Receives a halo frame from `peer` and scatters it into `full` at
    /// `cols`, straight from the frame buffer when the frame is read off the
    /// wire (no intermediate `Vec<f64>`).
    fn recv_halo_into(
        &self,
        peer: usize,
        cols: &[usize],
        full: &mut [f64],
    ) -> Result<(), CommError> {
        const DURING: &str = "halo receive";
        let mut link = self.link(peer).borrow_mut();
        if let Some(at) = link.inbox.iter().position(|m| m.tag() == Tag::Halo) {
            let Some(Message::Halo { values }) = link.inbox.remove(at) else {
                unreachable!("inbox position held a halo frame");
            };
            scatter_checked(peer, cols, &values, full)?;
            return Ok(());
        }
        loop {
            let Link { reader, frames, .. } = &mut *link;
            let (tag, payload) = frames
                .read_frame(reader)
                .map_err(|e| comm_err(peer, DURING, e))?;
            if tag == Tag::Halo {
                if payload.len() != cols.len() * 8 {
                    return Err(CommError::Protocol(format!(
                        "halo from rank {peer}: got {} bytes, expected {} values",
                        payload.len(),
                        cols.len()
                    )));
                }
                // Zero-copy scatter: decode each f64 out of the frame buffer
                // directly into its destination slot.
                for (&c, v) in cols.iter().zip(feir_wire::f64_payload_iter(payload)) {
                    full[c] = v;
                }
                return Ok(());
            }
            let msg = Message::decode(tag, payload).map_err(|e| comm_err(peer, DURING, e))?;
            link.inbox.push_back(msg);
        }
    }
}

fn scatter_checked(
    peer: usize,
    cols: &[usize],
    values: &[f64],
    full: &mut [f64],
) -> Result<(), CommError> {
    if values.len() != cols.len() {
        return Err(CommError::Protocol(format!(
            "halo from rank {peer}: got {} values, expected {}",
            values.len(),
            cols.len()
        )));
    }
    for (&c, &v) in cols.iter().zip(values) {
        full[c] = v;
    }
    Ok(())
}

/// Establishes this rank's full mesh: bind, connect to lower ranks with
/// backoff, accept from higher ranks, handshake each link.
pub fn connect_mesh(
    rank: usize,
    ranks: usize,
    transport: &Transport,
    options: &MeshOptions,
) -> Result<ProcessEndpoint, CommError> {
    assert!(rank < ranks, "rank out of range");
    let deadline = Instant::now() + options.connect_timeout;
    let setup_err =
        |what: &str, e: std::io::Error| CommError::Protocol(format!("rank {rank}: {what}: {e}"));

    // Bind this rank's listener before dialling anyone, so peers retrying
    // against us succeed as soon as possible.
    enum Listener {
        Unix(UnixListener),
        Tcp(TcpListener),
    }
    let listener = match transport {
        Transport::Uds { dir } => {
            let path = uds_path(dir, rank);
            let _ = std::fs::remove_file(&path); // stale socket from a dead run
            Listener::Unix(
                UnixListener::bind(&path)
                    .map_err(|e| setup_err(&format!("bind {}", path.display()), e))?,
            )
        }
        Transport::Tcp { base_port } => {
            let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, base_port + rank as u16));
            Listener::Tcp(
                TcpListener::bind(addr).map_err(|e| setup_err(&format!("bind {addr}"), e))?,
            )
        }
    };

    let mut links: Vec<Option<RefCell<Link>>> = (0..ranks).map(|_| None).collect();
    let mut scratch = Vec::new();

    // Dial every lower rank, retrying with exponential backoff while its
    // listener may not exist yet.
    #[allow(clippy::needless_range_loop)] // `peer` is a rank id, not just an index
    for peer in 0..rank {
        let mut backoff = Duration::from_millis(2);
        let stream = loop {
            let attempt = match transport {
                Transport::Uds { dir } => {
                    UnixStream::connect(uds_path(dir, peer)).map(Stream::Unix)
                }
                Transport::Tcp { base_port } => TcpStream::connect(SocketAddr::from((
                    Ipv4Addr::LOCALHOST,
                    base_port + peer as u16,
                )))
                .map(Stream::Tcp),
            };
            match attempt {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                }
                Err(e) => {
                    return Err(setup_err(&format!("connect to rank {peer}"), e));
                }
            }
        };
        let link = handshake(stream, rank, ranks, Some(peer), options, &mut scratch)?;
        links[peer] = Some(RefCell::new(link.link));
    }

    // Accept one connection from every higher rank; they self-identify in
    // their Hello, so arrival order does not matter.
    let expected_higher = ranks - rank - 1;
    match &listener {
        Listener::Unix(l) => l.set_nonblocking(true),
        Listener::Tcp(l) => l.set_nonblocking(true),
    }
    .map_err(|e| setup_err("listener set_nonblocking", e))?;
    for _ in 0..expected_higher {
        let stream = loop {
            let accepted = match &listener {
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            };
            match accepted {
                Ok(s) => break s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(CommError::Timeout {
                            peer: rank, // unidentified: nobody dialled us
                            during: "mesh accept",
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(setup_err("accept", e)),
            }
        };
        match &stream {
            Stream::Unix(s) => s.set_nonblocking(false),
            Stream::Tcp(s) => s.set_nonblocking(false),
        }
        .map_err(|e| setup_err("stream set_nonblocking", e))?;
        let link = handshake(stream, rank, ranks, None, options, &mut scratch)?;
        let peer = link.peer_rank;
        if peer <= rank || peer >= ranks {
            return Err(CommError::Protocol(format!(
                "rank {rank}: unexpected hello from rank {peer}"
            )));
        }
        if links[peer].is_some() {
            return Err(CommError::Protocol(format!(
                "rank {rank}: duplicate connection from rank {peer}"
            )));
        }
        links[peer] = Some(RefCell::new(link.link));
    }

    // Keep the rendezvous socket file around until the run directory is
    // cleaned up; dropping the listener closes it either way.
    Ok(ProcessEndpoint {
        rank,
        ranks,
        links,
        scratch: RefCell::new(scratch),
    })
}

/// A handshaken link plus who turned out to be on the other end.
struct IdentifiedLink {
    link: Link,
    peer_rank: usize,
}

impl std::ops::Deref for IdentifiedLink {
    type Target = Link;
    fn deref(&self) -> &Link {
        &self.link
    }
}

/// Exchanges `Hello` frames on a fresh stream and validates them. `expect`
/// is the peer we dialled (connect side) or `None` when accepting.
fn handshake(
    stream: Stream,
    rank: usize,
    ranks: usize,
    expect: Option<usize>,
    options: &MeshOptions,
    scratch: &mut Vec<u8>,
) -> Result<IdentifiedLink, CommError> {
    let fallible = |e: WireError| comm_err(expect.unwrap_or(usize::MAX), "handshake", e);
    stream
        .set_read_timeout(options.read_timeout)
        .map_err(|e| CommError::Protocol(format!("set_read_timeout: {e}")))?;
    let reader = stream;
    let mut writer = reader
        .try_clone()
        .map_err(|e| CommError::Protocol(format!("rank {rank}: stream clone failed: {e}")))?;
    let hello = Message::Hello {
        rank: rank as u32,
        ranks: ranks as u32,
    };
    feir_wire::write_message(&mut writer, &hello, scratch).map_err(fallible)?;
    let mut link = Link {
        reader,
        writer,
        frames: FrameReader::new(),
        inbox: VecDeque::new(),
    };
    let msg = link
        .frames
        .read_message(&mut link.reader)
        .map_err(fallible)?;
    let Message::Hello {
        rank: peer_rank,
        ranks: peer_ranks,
    } = msg
    else {
        return Err(CommError::Protocol(format!(
            "rank {rank}: expected Hello, got {:?}",
            msg.tag()
        )));
    };
    let peer_rank = peer_rank as usize;
    if peer_ranks as usize != ranks {
        return Err(CommError::Protocol(format!(
            "rank {rank}: world-size mismatch (we say {ranks}, rank {peer_rank} says {peer_ranks})"
        )));
    }
    if let Some(expected) = expect {
        if peer_rank != expected {
            return Err(CommError::Protocol(format!(
                "rank {rank}: dialled rank {expected} but rank {peer_rank} answered"
            )));
        }
    }
    Ok(IdentifiedLink { link, peer_rank })
}

fn uds_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank{rank}.sock"))
}

/// The process backend's per-rank state behind [`RankComm`]: the endpoint
/// plus the plan-derived halo lists and recovery neighbourhood, mirroring
/// exactly what the in-process backend wires with channels.
#[derive(Debug)]
pub(crate) struct ProcessLinks {
    endpoint: ProcessEndpoint,
    /// Outgoing halo `(destination, owned indices to ship)`, sorted by peer.
    halo_out: Vec<(usize, Vec<usize>)>,
    /// Incoming halo `(source, indices received)`, sorted by peer.
    halo_in: Vec<(usize, Vec<usize>)>,
    /// Halo neighbours (either direction), ascending.
    recovery_peers: Vec<usize>,
}

impl ProcessLinks {
    pub(crate) fn new(plan: &HaloPlan, endpoint: ProcessEndpoint) -> ProcessLinks {
        let rank = endpoint.rank();
        let mut halo_out: Vec<(usize, Vec<usize>)> = plan
            .sends_of(rank)
            .iter()
            .map(|(&dest, cols)| (dest, cols.clone()))
            .collect();
        halo_out.sort_unstable_by_key(|(dest, _)| *dest);
        let mut halo_in: Vec<(usize, Vec<usize>)> = plan
            .needs_of(rank)
            .iter()
            .map(|(&src, cols)| (src, cols.clone()))
            .collect();
        halo_in.sort_unstable_by_key(|(src, _)| *src);
        let recovery_peers = plan.neighbours_of(rank);
        ProcessLinks {
            endpoint,
            halo_out,
            halo_in,
            recovery_peers,
        }
    }

    pub(crate) fn recovery_peers(&self) -> &[usize] {
        &self.recovery_peers
    }

    pub(crate) fn exchange_halo(&self, full: &mut [f64]) -> Result<(), CommError> {
        for (dest, cols) in &self.halo_out {
            let values: Vec<f64> = cols.iter().map(|&c| full[c]).collect();
            self.endpoint
                .send(*dest, &Message::Halo { values }, "halo send")?;
        }
        for (src, cols) in &self.halo_in {
            self.endpoint.recv_halo_into(*src, cols, full)?;
        }
        Ok(())
    }

    /// Leaf half of the scalar allreduce post (root holds its partial).
    pub(crate) fn post_scalar(&self, local: f64) -> Result<(), CommError> {
        if self.endpoint.rank() != 0 {
            self.endpoint.send(
                0,
                &Message::GatherScalar {
                    rank: self.endpoint.rank() as u32,
                    value: local,
                },
                "allreduce gather",
            )?;
        }
        Ok(())
    }

    /// Completes a scalar allreduce: rank 0 gathers every partial, folds in
    /// rank order (identical arithmetic to the in-process root) and
    /// broadcasts; leaves await the broadcast.
    pub(crate) fn finish_scalar(&self, local: f64) -> Result<f64, CommError> {
        let ranks = self.endpoint.ranks();
        if self.endpoint.rank() == 0 {
            let mut partials = vec![0.0; ranks];
            partials[0] = local;
            #[allow(clippy::needless_range_loop)] // `peer` is a rank id, not just an index
            for peer in 1..ranks {
                match self
                    .endpoint
                    .recv(peer, Tag::GatherScalar, "allreduce gather")?
                {
                    Message::GatherScalar { rank, value } => {
                        if rank as usize != peer {
                            return Err(CommError::Protocol(format!(
                                "gather from rank {peer} claims rank {rank}"
                            )));
                        }
                        partials[peer] = value;
                    }
                    _ => unreachable!("recv() returns the requested tag"),
                }
            }
            let total: f64 = partials.iter().sum();
            for peer in 1..ranks {
                self.endpoint.send(
                    peer,
                    &Message::BroadcastScalar { value: total },
                    "allreduce broadcast",
                )?;
            }
            Ok(total)
        } else {
            match self
                .endpoint
                .recv(0, Tag::BroadcastScalar, "allreduce broadcast")?
            {
                Message::BroadcastScalar { value } => Ok(value),
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
    }

    /// Leaf half of the vector allreduce post; returns the partial the
    /// caller must retain for the fold (root keeps its own, leaves none).
    pub(crate) fn post_vec(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        if self.endpoint.rank() == 0 {
            return Ok(local);
        }
        self.endpoint.send(
            0,
            &Message::GatherVec {
                rank: self.endpoint.rank() as u32,
                values: local,
            },
            "vector allreduce gather",
        )?;
        Ok(Vec::new())
    }

    /// Completes a vector allreduce with the rank-ordered component fold.
    pub(crate) fn finish_vec(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        let ranks = self.endpoint.ranks();
        if self.endpoint.rank() == 0 {
            let mut partials: Vec<Vec<f64>> = vec![Vec::new(); ranks];
            partials[0] = local;
            for (peer, slot) in partials.iter_mut().enumerate().skip(1) {
                match self
                    .endpoint
                    .recv(peer, Tag::GatherVec, "vector allreduce gather")?
                {
                    Message::GatherVec { rank, values } => {
                        if rank as usize != peer {
                            return Err(CommError::Protocol(format!(
                                "vector gather from rank {peer} claims rank {rank}"
                            )));
                        }
                        *slot = values;
                    }
                    _ => unreachable!("recv() returns the requested tag"),
                }
            }
            let totals = fold_partials_rank_ordered(&partials)?;
            for peer in 1..ranks {
                self.endpoint.send(
                    peer,
                    &Message::BroadcastVec {
                        values: totals.clone(),
                    },
                    "vector allreduce broadcast",
                )?;
            }
            Ok(totals)
        } else {
            match self
                .endpoint
                .recv(0, Tag::BroadcastVec, "vector allreduce broadcast")?
            {
                Message::BroadcastVec { values } => Ok(values),
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
    }

    /// The three-phase recovery neighbourhood collective, frame-for-frame
    /// the in-process protocol: post requests, answer requests, scatter
    /// replies. Per-link FIFO ordering guarantees a request is always read
    /// before the same peer's reply.
    pub(crate) fn recovery_exchange(
        &self,
        requests: &HashMap<usize, Vec<usize>>,
        data: &mut [f64],
        unserviceable: &[usize],
    ) -> Result<(usize, Vec<usize>), CommError> {
        assert!(
            requests.keys().all(|p| self.recovery_peers.contains(p)),
            "recovery request targets a rank outside the halo neighbourhood"
        );
        for peer in &self.recovery_peers {
            let indices: Vec<u64> = requests
                .get(peer)
                .map(|v| v.iter().map(|&i| i as u64).collect())
                .unwrap_or_default();
            self.endpoint.send(
                *peer,
                &Message::RecoveryRequest { indices },
                "recovery request",
            )?;
        }
        for peer in &self.recovery_peers {
            match self
                .endpoint
                .recv(*peer, Tag::RecoveryRequest, "recovery request receive")?
            {
                Message::RecoveryRequest { indices } => {
                    let mut values = Vec::with_capacity(indices.len());
                    let mut valid = Vec::with_capacity(indices.len());
                    for &i in &indices {
                        let i = i as usize;
                        if i >= data.len() {
                            return Err(CommError::Protocol(format!(
                                "rank {peer} requested out-of-range index {i}"
                            )));
                        }
                        values.push(data[i]);
                        valid.push(unserviceable.binary_search(&i).is_err());
                    }
                    self.endpoint.send(
                        *peer,
                        &Message::RecoveryReply { values, valid },
                        "recovery reply",
                    )?;
                }
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
        let mut fetched = 0;
        let mut invalid = Vec::new();
        for peer in &self.recovery_peers {
            match self
                .endpoint
                .recv(*peer, Tag::RecoveryReply, "recovery reply receive")?
            {
                Message::RecoveryReply { values, valid } => {
                    let indices = requests.get(peer).map(Vec::as_slice).unwrap_or(&[]);
                    if values.len() != indices.len() || valid.len() != indices.len() {
                        return Err(CommError::Protocol(format!(
                            "recovery reply from rank {peer}: {} values for {} requests",
                            values.len(),
                            indices.len()
                        )));
                    }
                    for ((&i, v), ok) in indices.iter().zip(values).zip(valid) {
                        data[i] = v;
                        fetched += 1;
                        if !ok {
                            invalid.push(i);
                        }
                    }
                }
                _ => unreachable!("recv() returns the requested tag"),
            }
        }
        invalid.sort_unstable();
        Ok((fetched, invalid))
    }
}

// ---------------------------------------------------------------------------
// Worker processes: spec, launcher, worker entry point.
// ---------------------------------------------------------------------------

/// Which rank loop a worker process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerSolver {
    /// Classic distributed CG.
    Cg,
    /// Block-Jacobi distributed PCG.
    Pcg,
    /// Merged-reduction (Chronopoulos–Gear) CG.
    CgMerged,
    /// Merged-reduction block-Jacobi PCG.
    PcgMerged,
}

impl WorkerSolver {
    fn as_str(self) -> &'static str {
        match self {
            WorkerSolver::Cg => "cg",
            WorkerSolver::Pcg => "pcg",
            WorkerSolver::CgMerged => "cg-merged",
            WorkerSolver::PcgMerged => "pcg-merged",
        }
    }

    fn parse(s: &str) -> Option<WorkerSolver> {
        Some(match s {
            "cg" => WorkerSolver::Cg,
            "pcg" => WorkerSolver::Pcg,
            "cg-merged" => WorkerSolver::CgMerged,
            "pcg-merged" => WorkerSolver::PcgMerged,
            _ => return None,
        })
    }
}

/// A deterministic multi-process solve: every worker rebuilds the same
/// problem from `(grid, rhs_seed)`, so no matrix data crosses the wire.
#[derive(Debug, Clone)]
pub struct ProcessSpec {
    /// Rank loop to run.
    pub solver: WorkerSolver,
    /// Poisson grid side; the system has `grid²` unknowns.
    pub grid: usize,
    /// Seed of the manufactured right-hand side.
    pub rhs_seed: u64,
    /// Number of worker processes.
    pub ranks: usize,
    /// Page-doubles granularity for the PCG preconditioner.
    pub page_doubles: usize,
    /// Convergence tolerance on the relative residual.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl ProcessSpec {
    /// A small CG spec, convenient for tests and smoke runs.
    pub fn cg(grid: usize, ranks: usize) -> ProcessSpec {
        ProcessSpec {
            solver: WorkerSolver::Cg,
            grid,
            rhs_seed: 5,
            ranks,
            page_doubles: 1,
            tolerance: 1e-10,
            max_iterations: 10_000,
        }
    }
}

/// A failure of the multi-process launcher or one of its workers.
#[derive(Debug)]
pub enum ProcessError {
    /// Could not create the rendezvous or spawn a worker.
    Spawn(std::io::Error),
    /// A worker reported a typed communication failure.
    Comm {
        /// The rank that reported it.
        rank: usize,
        /// The reconstructed communication error.
        error: CommError,
    },
    /// A worker failed outside the comm layer, or died without reporting.
    Worker {
        /// The rank concerned.
        rank: usize,
        /// What happened.
        message: String,
    },
    /// A worker's report frame could not be understood.
    Protocol {
        /// The rank concerned.
        rank: usize,
        /// What was wrong with the report.
        message: String,
    },
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::Spawn(e) => write!(f, "failed to launch workers: {e}"),
            ProcessError::Comm { rank, error } => write!(f, "rank {rank}: {error}"),
            ProcessError::Worker { rank, message } => write!(f, "rank {rank} failed: {message}"),
            ProcessError::Protocol { rank, message } => {
                write!(f, "rank {rank} sent a bad report: {message}")
            }
        }
    }
}

impl std::error::Error for ProcessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcessError::Spawn(e) => Some(e),
            ProcessError::Comm { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Removes the rendezvous directory when the run is over.
#[derive(Debug)]
struct RunDirGuard(PathBuf);

impl Drop for RunDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The spawned worker fleet of one multi-process solve.
#[derive(Debug)]
pub struct WorkerHandles {
    children: Vec<Child>,
    spec: ProcessSpec,
    _dir: Option<RunDirGuard>,
}

impl WorkerHandles {
    /// Kills the worker process of `rank` (SIGKILL), simulating a node
    /// failure mid-solve. Surviving ranks observe the closed sockets as
    /// [`CommError::Disconnected`].
    pub fn kill_rank(&mut self, rank: usize) -> std::io::Result<()> {
        self.children[rank].kill()
    }

    /// Collects every worker's report and assembles the solve result,
    /// exactly as the thread-backed `run_ranks` assembles rank outcomes.
    pub fn join(mut self) -> Result<DistSolveResult, ProcessError> {
        let spec = self.spec.clone();
        let n = spec.grid * spec.grid;
        let ranks = crate::comm::effective_ranks(n, spec.ranks);
        let partition = RankPartition::new(n, ranks);

        let mut reports: Vec<Result<Message, ProcessError>> = Vec::with_capacity(ranks);
        for (rank, child) in self.children.iter_mut().enumerate() {
            let stdout = child.stdout.as_mut().expect("worker stdout is piped");
            let mut frames = FrameReader::new();
            let report = match frames.read_message(stdout) {
                Ok(msg) => Ok(msg),
                Err(WireError::Closed) | Err(WireError::Truncated { .. }) => {
                    Err(ProcessError::Worker {
                        rank,
                        message: "exited without a report (killed or crashed)".into(),
                    })
                }
                Err(e) => Err(ProcessError::Protocol {
                    rank,
                    message: e.to_string(),
                }),
            };
            reports.push(report);
        }
        // Reap everything (kill is a no-op on the already-exited).
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }

        let mut x = vec![0.0; n];
        let mut iterations = 0;
        let mut residual_history = Vec::new();
        let mut allreduces = 0;
        let mut first_error: Option<ProcessError> = None;
        let mut comm_error: Option<ProcessError> = None;
        for (rank, report) in reports.into_iter().enumerate() {
            match report {
                Ok(Message::RankResult {
                    rank: reported,
                    iterations: iters,
                    collectives,
                    x: x_own,
                    history,
                }) => {
                    if reported as usize != rank {
                        return Err(ProcessError::Protocol {
                            rank,
                            message: format!("report claims rank {reported}"),
                        });
                    }
                    let own = partition.range(rank);
                    if x_own.len() != own.len() {
                        return Err(ProcessError::Protocol {
                            rank,
                            message: format!(
                                "solution block has {} entries, expected {}",
                                x_own.len(),
                                own.len()
                            ),
                        });
                    }
                    x[own].copy_from_slice(&x_own);
                    iterations = iters as usize;
                    if rank == 0 {
                        residual_history = history;
                        allreduces = collectives;
                    }
                }
                Ok(Message::RankError {
                    kind,
                    peer,
                    message,
                    ..
                }) => {
                    let err = rank_error_to_process_error(rank, kind, peer, message);
                    if matches!(err, ProcessError::Comm { .. }) && comm_error.is_none() {
                        comm_error = Some(err);
                    } else if first_error.is_none() {
                        first_error = Some(err);
                    }
                }
                Ok(other) => {
                    return Err(ProcessError::Protocol {
                        rank,
                        message: format!("unexpected report frame {:?}", other.tag()),
                    })
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        // A typed comm failure is the most informative outcome: it names the
        // disconnect the surviving ranks observed.
        if let Some(err) = comm_error.or(first_error) {
            return Err(err);
        }

        let a = feir_sparse::generators::poisson_2d(spec.grid);
        let (_, b) = feir_sparse::generators::manufactured_rhs(&a, spec.rhs_seed);
        let relative_residual = kernels::explicit_relative_residual(&a, &b, &x);
        Ok(DistSolveResult {
            x,
            iterations,
            relative_residual,
            ranks,
            converged: relative_residual <= spec.tolerance,
            residual_history,
            allreduces,
        })
    }
}

/// Reconstructs the typed error a worker reported over the wire.
fn rank_error_to_process_error(
    rank: usize,
    kind: RankErrorKind,
    peer: i32,
    message: String,
) -> ProcessError {
    match kind {
        RankErrorKind::Disconnected => ProcessError::Comm {
            rank,
            error: CommError::Disconnected {
                peer: usize::try_from(peer).ok(),
                during: "remote solve",
            },
        },
        RankErrorKind::Timeout => ProcessError::Comm {
            rank,
            error: CommError::Timeout {
                peer: usize::try_from(peer).unwrap_or(0),
                during: "remote solve",
            },
        },
        RankErrorKind::Wire => ProcessError::Comm {
            rank,
            error: CommError::Protocol(format!("wire error on remote rank: {message}")),
        },
        RankErrorKind::Other => ProcessError::Worker { rank, message },
    }
}

static RUN_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A unique rendezvous directory for one mesh run.
fn fresh_run_dir() -> std::io::Result<PathBuf> {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let dir = std::env::temp_dir().join(format!(
        "feir-mesh-{}-{}-{}",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        nanos
    ));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Spawns one worker process per rank over the given transport. `worker` is
/// any executable whose main calls [`worker_main`] (e.g. the
/// `feir-rank-worker` binary, or a self-re-executing example).
pub fn spawn_workers(
    worker: &Path,
    spec: &ProcessSpec,
    transport: &Transport,
) -> Result<WorkerHandles, ProcessError> {
    let n = spec.grid * spec.grid;
    let ranks = crate::comm::effective_ranks(n, spec.ranks);
    let dir_guard = match transport {
        Transport::Uds { dir } => {
            // The rendezvous directory must exist before any worker binds.
            std::fs::create_dir_all(dir).map_err(ProcessError::Spawn)?;
            Some(RunDirGuard(dir.clone()))
        }
        Transport::Tcp { .. } => None,
    };
    let mut children = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let mut cmd = Command::new(worker);
        cmd.env(ENV_RANK, rank.to_string())
            .env(ENV_RANKS, ranks.to_string())
            .env(ENV_SOLVER, spec.solver.as_str())
            .env(ENV_GRID, spec.grid.to_string())
            .env(ENV_SEED, spec.rhs_seed.to_string())
            .env(ENV_TOL, format!("{:e}", spec.tolerance))
            .env(ENV_MAXIT, spec.max_iterations.to_string())
            .env(ENV_PAGE, spec.page_doubles.to_string())
            .stdout(Stdio::piped())
            .stdin(Stdio::null());
        match transport {
            Transport::Uds { dir } => {
                cmd.env(ENV_TRANSPORT, "uds").env(ENV_DIR, dir);
            }
            Transport::Tcp { base_port } => {
                cmd.env(ENV_TRANSPORT, "tcp")
                    .env(ENV_TCP_BASE, base_port.to_string());
            }
        }
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                // Tear down what already started.
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(ProcessError::Spawn(e));
            }
        }
    }
    Ok(WorkerHandles {
        children,
        spec: spec.clone(),
        _dir: dir_guard,
    })
}

/// Runs a complete multi-process solve over Unix domain sockets in a fresh
/// rendezvous directory and returns the assembled result.
pub fn solve_with_processes(
    worker: &Path,
    spec: &ProcessSpec,
) -> Result<DistSolveResult, ProcessError> {
    let dir = fresh_run_dir().map_err(ProcessError::Spawn)?;
    spawn_workers(worker, spec, &Transport::Uds { dir })?.join()
}

const ENV_RANK: &str = "FEIR_WORKER_RANK";
const ENV_RANKS: &str = "FEIR_WORKER_RANKS";
const ENV_TRANSPORT: &str = "FEIR_WORKER_TRANSPORT";
const ENV_DIR: &str = "FEIR_WORKER_DIR";
const ENV_TCP_BASE: &str = "FEIR_WORKER_TCP_BASE";
const ENV_SOLVER: &str = "FEIR_WORKER_SOLVER";
const ENV_GRID: &str = "FEIR_WORKER_GRID";
const ENV_SEED: &str = "FEIR_WORKER_SEED";
const ENV_TOL: &str = "FEIR_WORKER_TOL";
const ENV_MAXIT: &str = "FEIR_WORKER_MAXIT";
const ENV_PAGE: &str = "FEIR_WORKER_PAGE";

/// True when this process was spawned as a rank worker (the launcher set the
/// `FEIR_WORKER_*` environment). A self-re-executing launcher (like
/// `examples/dist_process.rs`) checks this first and calls [`worker_main`].
pub fn spawned_as_worker() -> bool {
    std::env::var_os(ENV_RANK).is_some()
}

#[derive(Debug)]
struct WorkerEnv {
    rank: usize,
    ranks: usize,
    transport: Transport,
    solver: WorkerSolver,
    grid: usize,
    rhs_seed: u64,
    page_doubles: usize,
    tolerance: f64,
    max_iterations: usize,
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Result<T, String> {
    let raw = std::env::var(key).map_err(|_| format!("{key} is not set"))?;
    raw.parse().map_err(|_| format!("{key}={raw} is invalid"))
}

impl WorkerEnv {
    fn from_env() -> Result<WorkerEnv, String> {
        let transport = match std::env::var(ENV_TRANSPORT).as_deref() {
            Ok("uds") => Transport::Uds {
                dir: PathBuf::from(
                    std::env::var_os(ENV_DIR).ok_or_else(|| format!("{ENV_DIR} is not set"))?,
                ),
            },
            Ok("tcp") => Transport::Tcp {
                base_port: env_parse(ENV_TCP_BASE)?,
            },
            other => return Err(format!("{ENV_TRANSPORT}={other:?} is invalid")),
        };
        let solver_raw: String = env_parse(ENV_SOLVER)?;
        let solver = WorkerSolver::parse(&solver_raw)
            .ok_or_else(|| format!("{ENV_SOLVER}={solver_raw} is invalid"))?;
        Ok(WorkerEnv {
            rank: env_parse(ENV_RANK)?,
            ranks: env_parse(ENV_RANKS)?,
            transport,
            solver,
            grid: env_parse(ENV_GRID)?,
            rhs_seed: env_parse(ENV_SEED)?,
            page_doubles: env_parse(ENV_PAGE)?,
            tolerance: env_parse(ENV_TOL)?,
            max_iterations: env_parse(ENV_MAXIT)?,
        })
    }
}

/// Joins the mesh, runs this rank's loop and returns the report frame.
fn run_worker(env: &WorkerEnv) -> Result<Message, CommError> {
    let a = feir_sparse::generators::poisson_2d(env.grid);
    let (_, b) = feir_sparse::generators::manufactured_rhs(&a, env.rhs_seed);
    let n = a.rows();
    let ranks = crate::comm::effective_ranks(n, env.ranks);
    let partition = RankPartition::new(n, ranks);
    let plan = HaloPlan::build(&a, &partition);
    let endpoint = connect_mesh(env.rank, ranks, &env.transport, &MeshOptions::default())?;
    let comm = RankComm::over_process(&plan, endpoint);
    let (rank, x_own, iterations, history, collectives) = match env.solver {
        WorkerSolver::Cg => {
            crate::cg::rank_cg(&a, &b, comm, &partition, env.tolerance, env.max_iterations)?
        }
        WorkerSolver::Pcg => crate::pcg::rank_pcg(
            &a,
            &b,
            comm,
            &partition,
            env.page_doubles,
            env.tolerance,
            env.max_iterations,
        )?,
        WorkerSolver::CgMerged => crate::merged::rank_cg_merged(
            &a,
            &b,
            comm,
            &partition,
            env.tolerance,
            env.max_iterations,
        )?,
        WorkerSolver::PcgMerged => crate::merged::rank_pcg_merged(
            &a,
            &b,
            comm,
            &partition,
            env.page_doubles,
            env.tolerance,
            env.max_iterations,
        )?,
    };
    Ok(Message::RankResult {
        rank: rank as u32,
        iterations: iterations as u64,
        collectives,
        x: x_own,
        history,
    })
}

/// Encodes a comm failure as the typed wire report.
fn comm_error_report(rank: usize, error: &CommError) -> Message {
    let (kind, peer) = match error {
        CommError::Disconnected { peer, .. } => (
            RankErrorKind::Disconnected,
            peer.map(|p| p as i32).unwrap_or(-1),
        ),
        CommError::Timeout { peer, .. } => (RankErrorKind::Timeout, *peer as i32),
        CommError::Wire(_) => (RankErrorKind::Wire, -1),
        CommError::Protocol(_) => (RankErrorKind::Other, -1),
    };
    Message::RankError {
        rank: rank as u32,
        kind,
        peer,
        message: error.to_string(),
    }
}

/// Entry point of a rank worker process: parse the `FEIR_WORKER_*`
/// environment, run the rank loop and write the report frame to stdout.
///
/// Call this from a dedicated binary (`feir-rank-worker`) or from any
/// launcher that re-executes itself (check [`spawned_as_worker`] first).
pub fn worker_main() -> std::process::ExitCode {
    let env = match WorkerEnv::from_env() {
        Ok(env) => env,
        Err(msg) => {
            eprintln!("feir rank worker: {msg}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let rank = env.rank;
    let report = match run_worker(&env) {
        Ok(result) => result,
        // `run_worker` returning drops the endpoint, closing this rank's
        // sockets so any peer still blocked on us unblocks with a
        // disconnect of its own before we even report.
        Err(e) => comm_error_report(rank, &e),
    };
    let failed = matches!(report, Message::RankError { .. });
    let mut out = std::io::stdout().lock();
    let mut scratch = Vec::new();
    if feir_wire::write_message(&mut out, &report, &mut scratch).is_err() || out.flush().is_err() {
        return std::process::ExitCode::FAILURE;
    }
    if failed {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::poisson_2d;

    /// Builds a thread-backed mesh of process endpoints over the transport
    /// and runs `body` on every rank concurrently.
    fn with_mesh<T: Send>(
        ranks: usize,
        transport: &Transport,
        body: impl Fn(ProcessEndpoint) -> T + Sync,
    ) -> Vec<T> {
        let options = MeshOptions {
            connect_timeout: Duration::from_secs(20),
            read_timeout: Some(Duration::from_secs(20)),
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..ranks)
                .map(|rank| {
                    let transport = transport.clone();
                    let options = options.clone();
                    let body = &body;
                    scope.spawn(move || {
                        let ep = connect_mesh(rank, ranks, &transport, &options)
                            .expect("mesh connect failed");
                        body(ep)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    fn uds_transport() -> Transport {
        Transport::Uds {
            dir: fresh_run_dir().expect("temp dir"),
        }
    }

    #[test]
    fn mesh_allreduce_matches_in_process_bitwise() {
        for ranks in [1usize, 2, 4] {
            let transport = uds_transport();
            let _guard = match &transport {
                Transport::Uds { dir } => RunDirGuard(dir.clone()),
                _ => unreachable!(),
            };
            let plan = HaloPlan::empty(ranks);
            let over_wire: Vec<f64> = with_mesh(ranks, &transport, |ep| {
                let comm = RankComm::over_process(&plan, ep);
                comm.allreduce_sum(0.1 + comm.rank() as f64 * 0.3).unwrap()
            });
            let in_process: Vec<f64> = {
                let comms = RankComm::for_ranks(&plan, ranks);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = comms
                        .into_iter()
                        .map(|comm| {
                            scope.spawn(move || {
                                comm.allreduce_sum(0.1 + comm.rank() as f64 * 0.3).unwrap()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            };
            for (a, b) in over_wire.iter().zip(&in_process) {
                assert_eq!(a.to_bits(), b.to_bits(), "{ranks} ranks");
            }
        }
    }

    #[test]
    fn mesh_halo_exchange_moves_the_same_values() {
        let a = poisson_2d(8);
        let n = a.rows();
        let ranks = 4;
        let partition = RankPartition::new(n, ranks);
        let plan = HaloPlan::build(&a, &partition);
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let fulls = with_mesh(ranks, &transport, |ep| {
            let comm = RankComm::over_process(&plan, ep);
            let own = partition.range(comm.rank());
            let mut full = vec![0.0; n];
            for i in own {
                full[i] = (i * i) as f64 + 0.25;
            }
            comm.exchange_halo(&mut full).unwrap();
            (comm.rank(), full)
        });
        for (rank, full) in fulls {
            for (&src, cols) in plan.needs_of(rank) {
                let _ = src;
                for &c in cols {
                    assert_eq!(full[c], (c * c) as f64 + 0.25, "rank {rank} col {c}");
                }
            }
        }
    }

    #[test]
    fn tcp_fallback_carries_the_same_collectives() {
        // Find a free contiguous port range, then run a mesh over loopback.
        let ranks = 2;
        let base = (0..40)
            .map(|k| 42617 + k * 13)
            .find(|&base| {
                (0..ranks as u16).all(|r| {
                    TcpListener::bind(SocketAddr::from((Ipv4Addr::LOCALHOST, base + r))).is_ok()
                })
            })
            .expect("no free port range on loopback");
        let transport = Transport::Tcp { base_port: base };
        let plan = HaloPlan::empty(ranks);
        let sums = with_mesh(ranks, &transport, |ep| {
            let comm = RankComm::over_process(&plan, ep);
            comm.allreduce_vec(vec![1.5 + comm.rank() as f64, -2.0])
                .unwrap()
        });
        for sum in sums {
            assert_eq!(sum, vec![1.5 + 2.5, -4.0]);
        }
    }

    #[test]
    fn dropped_process_peer_is_a_typed_disconnect() {
        let ranks = 2;
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let plan = HaloPlan::empty(ranks);
        let outcomes = with_mesh(ranks, &transport, |ep| {
            let comm = RankComm::over_process(&plan, ep);
            if comm.rank() == 1 {
                // Simulate a dying rank: vanish without entering the
                // collective. Dropping the endpoint closes the sockets.
                drop(comm);
                return None;
            }
            Some(comm.allreduce_sum(1.0))
        });
        let rank0 = outcomes.into_iter().flatten().next().expect("rank 0 ran");
        match rank0 {
            Err(CommError::Disconnected { peer: Some(1), .. }) => {}
            other => panic!("expected typed disconnect from rank 1, got {other:?}"),
        }
    }

    #[test]
    fn mesh_recovery_exchange_matches_in_process() {
        let a = poisson_2d(8);
        let n = a.rows();
        let ranks = 2;
        let partition = RankPartition::new(n, ranks);
        let plan = HaloPlan::build(&a, &partition);
        let transport = uds_transport();
        let _guard = match &transport {
            Transport::Uds { dir } => RunDirGuard(dir.clone()),
            _ => unreachable!(),
        };
        let results = with_mesh(ranks, &transport, |ep| {
            let comm = RankComm::over_process(&plan, ep);
            let rank = comm.rank();
            let own = partition.range(rank);
            let mut data = vec![0.0; n];
            for i in own.clone() {
                data[i] = i as f64;
            }
            let requests: HashMap<usize, Vec<usize>> = if rank == 0 {
                plan.needs_of(0).clone()
            } else {
                HashMap::new()
            };
            let lost: Vec<usize> = if rank == 1 {
                (own.start..own.start + 4).collect()
            } else {
                Vec::new()
            };
            let (fetched, invalid) = comm.recovery_exchange(&requests, &mut data, &lost).unwrap();
            (rank, fetched, invalid, data)
        });
        let boundary = partition.range(1).start;
        for (rank, fetched, invalid, data) in results {
            if rank == 0 {
                assert!(fetched > 0);
                assert!(invalid.contains(&boundary), "lost row not flagged");
                for (&src, cols) in plan.needs_of(0) {
                    let _ = src;
                    for &c in cols {
                        assert_eq!(data[c], c as f64);
                    }
                }
            } else {
                assert_eq!(fetched, 0);
                assert!(invalid.is_empty());
            }
        }
    }
}
