//! Rank-local numerical kernels shared by every distributed solver path.
//!
//! The plain solvers (`cg`, `pcg`) and the engine-based resilient loop used
//! to carry private copies of the same helpers — the BLAS-1 imports, the
//! `β = ρ/ρ_old` guard, the global rhs norm and the explicit residual check
//! on the assembled solution. They live here exactly once so the fault-free
//! arithmetic of the plain and resilient paths is *the same code*, which is
//! what makes the bitwise-identity tests meaningful rather than lucky.
//!
//! The plain loops additionally use the fused hot-path kernels
//! ([`feir_sparse::fused`]): `q ⇐ A·d` merged with the local `⟨d, q⟩`
//! partial (via [`feir_sparse::SpmvBackend::spmv_dot`]) and `g ⇐ g − α·q`
//! merged with the next `‖g‖²` partial. The resilient loop keeps the unfused
//! sequence (its scrub points must materialise faults *between* the matvec
//! and the reduction), which is safe because every fused kernel is
//! bitwise-identical to the composition it replaces — asserted directly in
//! `feir-sparse/tests/parallel_kernels.rs` and end-to-end by the
//! plain-vs-resilient identity tests.

pub(crate) use feir_sparse::fused::{axpy_dot, axpy_norm2, dotn};
pub(crate) use feir_sparse::vecops::{axpy, dot, norm2_squared, xpay};

use feir_sparse::{vecops, CsrMatrix};

use crate::comm::{CommError, RankComm};

/// The guarded scalar recurrence ratio `num / den` of the CG/PCG β update:
/// zero while the denominator is still the `∞` sentinel of iteration 0 (or
/// an exact zero after a restart), the plain ratio otherwise.
pub(crate) fn beta_ratio(num: f64, den: f64) -> f64 {
    if den.is_finite() && den != 0.0 {
        num / den
    } else {
        0.0
    }
}

/// True when a reduction result ends the solve (CG breakdown: a zero or
/// non-finite curvature / inner product).
pub(crate) fn is_breakdown(value: f64) -> bool {
    value == 0.0 || !value.is_finite()
}

/// Global `‖b‖₂` via the deterministic rank-ordered allreduce, floored away
/// from zero so relative residuals stay finite.
pub(crate) fn global_rhs_norm(comm: &RankComm, b_own: &[f64]) -> Result<f64, CommError> {
    Ok(comm
        .allreduce_sum(vecops::norm2_squared(b_own))?
        .sqrt()
        .max(f64::MIN_POSITIVE))
}

/// Explicit relative residual `‖b − A·x‖₂ / ‖b‖₂`, recomputed serially on an
/// assembled solution — the honest convergence check every distributed
/// report ends with (honest even when a policy corrupted the solver's ε).
pub(crate) fn explicit_relative_residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let norm_b = vecops::norm2(b).max(f64::MIN_POSITIVE);
    let mut residual = vec![0.0; b.len()];
    a.spmv(x, &mut residual);
    for (ri, bi) in residual.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    vecops::norm2(&residual) / norm_b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_ratio_guards_the_infinity_sentinel() {
        assert_eq!(beta_ratio(2.0, f64::INFINITY), 0.0);
        assert_eq!(beta_ratio(2.0, 0.0), 0.0);
        assert_eq!(beta_ratio(2.0, 4.0), 0.5);
    }

    #[test]
    fn breakdown_detects_zero_and_non_finite() {
        assert!(is_breakdown(0.0));
        assert!(is_breakdown(f64::NAN));
        assert!(is_breakdown(f64::INFINITY));
        assert!(!is_breakdown(1e-300));
    }

    #[test]
    fn explicit_residual_is_zero_at_the_solution() {
        let a = feir_sparse::generators::poisson_2d(6);
        let (x, b) = feir_sparse::generators::manufactured_rhs(&a, 3);
        assert!(explicit_relative_residual(&a, &b, &x) < 1e-12);
    }
}
