//! The engine-based per-rank loop of the **merged-reduction** resilient
//! solvers.
//!
//! This is the merged (pipelined Chronopoulos–Gear) counterpart of
//! [`rank_loop`](crate::rank_loop): one generic loop, parameterised by a
//! [`RecoverableIteration`] ([`MergedCgRelations`](feir_recovery::MergedCgRelations)
//! or [`MergedPcgRelations`](feir_recovery::MergedPcgRelations)), runs the
//! full [`RecoveryPolicy`] matrix on every simulated rank while keeping the
//! merged hot path's defining property: **one collective per iteration**.
//!
//! The protected set maps the classic ids onto the merged vectors — `x`
//! (iterate), `r` (recurrence residual, id `G`), `p` (direction, id `D`),
//! `s = A·p` (matvec image, id `Q`) and for PCG `u = M⁻¹·r` (id `Z`). The
//! companion recurrences (`w = A·u`, `q = M⁻¹·s`, `z = A·q`) are pure
//! functions of protected vectors and stay unprotected.
//!
//! Three structural guarantees:
//!
//! * **fault-free bitwise identity** — with zero faults every kernel call,
//!   every halo exchange and the single vector allreduce happen exactly as
//!   in the plain [`merged`](crate::merged) loops, on the same values. The
//!   forward policies append their scrubbed-fault count as an extra
//!   component of the *same* collective (component-wise reduction leaves
//!   the `γ, δ, ε` bits untouched), so even the fault flag costs no second
//!   synchronization.
//! * **recovery happens inside or against the single reduction window** —
//!   the scrub point sits before the collective is posted, the matvec
//!   overlaps the reduction as in the plain loop, and under AFEIR the
//!   rank-local coupled solves (direction pages whose stencil stays inside
//!   the rank, matvec-image recomputes, preconditioned-residual re-solves)
//!   run *inside* that window via [`overlap`], planned into side buffers
//!   and installed after the collective lands. Only reconstructions that
//!   need the cross-rank [`RecoveryMsg`](crate::comm::RecoveryMsg) rounds
//!   wait for the global fault flag, which arrives with the reduction
//!   itself. FEIR runs the identical recovery on the critical path after
//!   the collective.
//! * **losses materialise before the convergence check** — recovery (or
//!   blank-acceptance) completes before a converged iteration can break out
//!   of the loop, so the assembled solution never silently contains a
//!   scrubbed blank.

use std::collections::HashMap;

use feir_recovery::checkpoint::{CheckpointStore, CheckpointTarget};
use feir_recovery::engine::{
    mark_page, overlap, plan_state_fixes, scrub_blank, split_related, StateLosses,
};
use feir_recovery::{RecoverableIteration, RecoveryPolicy};
use feir_sparse::blocking::BlockPartition;
use feir_sparse::{CsrMatrix, SpmvBackend};

use crate::comm::{CommError, RankComm};
use crate::kernels;
use crate::merged::merged_alpha;
use crate::rank_loop::{
    blank_sweep, coupled_round, global_rows, ids, install_state_plan, remote_stencil_requests,
    InstallCounters, RankCtx, RankOutcome,
};

/// Rank-local reconstructions planned inside the reduction window (AFEIR):
/// side buffers only, installed after the collective lands.
#[derive(Default)]
struct WindowPlan {
    /// Direction pages solved from `s = A·p` with purely local inputs.
    p_fixes: Vec<(usize, Vec<f64>)>,
    /// Matvec-image pages recomputed as `(A·p)` rows with local inputs.
    s_fixes: Vec<(usize, Vec<f64>)>,
    /// Preconditioned-residual pages re-solved from a surviving `r` page.
    u_fixes: Vec<(usize, Vec<f64>)>,
}

impl WindowPlan {
    fn is_empty(&self) -> bool {
        self.p_fixes.is_empty() && self.s_fixes.is_empty() && self.u_fixes.is_empty()
    }
}

/// True when every stencil column of the page's rows lies inside this rank
/// *and* outside every page of `lost` (except `allow`, the page being
/// reconstructed itself).
fn page_inputs_local_and_healthy(
    a: &CsrMatrix,
    own: &std::ops::Range<usize>,
    pages: &BlockPartition,
    page: usize,
    lost: &[usize],
    allow_self: bool,
) -> bool {
    for row in global_rows(own.start, pages, page) {
        let (cols, _) = a.row(row);
        for &c in cols {
            if !own.contains(&c) {
                return false;
            }
            let cp = pages.block_of(c - own.start);
            if (cp != page || !allow_self) && lost.contains(&cp) {
                return false;
            }
        }
    }
    true
}

/// Plans the rank-local part of a forward recovery from read-only state.
/// Everything here reads only surviving local data, so under AFEIR it runs
/// concurrently with the halo exchange + matvec of the reduction window.
#[allow(clippy::too_many_arguments)]
fn plan_window_fixes<S: RecoverableIteration>(
    relations: &S,
    a: &CsrMatrix,
    own: &std::ops::Range<usize>,
    pages: &BlockPartition,
    lost_p: &[usize],
    lost_s: &[usize],
    lost_r: &[usize],
    lost_u: &[usize],
    p: &[f64],
    s: &[f64],
    r: &[f64],
) -> WindowPlan {
    let mut plan = WindowPlan::default();
    // Direction pages: s page survived, stencil local, no other lost p page
    // in reach — a self-contained coupled solve A_PP p_P = s_P − Σ A_Pc p_c.
    let mut p_view: Option<Vec<f64>> = None;
    for &pg in lost_p {
        if lost_s.contains(&pg) || !page_inputs_local_and_healthy(a, own, pages, pg, lost_p, true) {
            continue;
        }
        let view = p_view.get_or_insert_with(|| {
            let mut v = vec![0.0; a.cols()];
            v[own.clone()].copy_from_slice(p);
            v
        });
        let rows: Vec<usize> = global_rows(own.start, pages, pg).collect();
        let s_at: Vec<f64> = pages.range(pg).map(|i| s[i]).collect();
        if let Some(values) = relations.reconstruct_direction(&rows, &s_at, view) {
            plan.p_fixes.push((pg, values));
        }
    }
    // Matvec-image pages: every p page the stencil reads survived, stencil
    // local — a plain recompute s_P = (A·p)_P.
    for &pg in lost_s {
        if lost_p.contains(&pg) || !page_inputs_local_and_healthy(a, own, pages, pg, lost_p, false)
        {
            continue;
        }
        let view = p_view.get_or_insert_with(|| {
            let mut v = vec![0.0; a.cols()];
            v[own.clone()].copy_from_slice(p);
            v
        });
        let rows = global_rows(own.start, pages, pg);
        let mut out = vec![0.0; rows.len()];
        SpmvBackend::select_rows(a, rows).spmv(a, view, &mut out);
        plan.s_fixes.push((pg, out));
    }
    // Preconditioned-residual pages: the matching r page survived — the
    // factorized diagonal block re-solves M_PP u_P = r_P locally.
    for &pg in lost_u {
        if lost_r.contains(&pg) {
            continue;
        }
        let range = pages.range(pg);
        let mut out = vec![0.0; range.len()];
        if relations.reapply_preconditioner(pg, &r[range], &mut out) {
            plan.u_fixes.push((pg, out));
        }
    }
    plan
}

/// The generic per-rank merged resilient loop (see the module docs).
/// Backend-agnostic; transport failures surface as typed [`CommError`]s.
#[allow(clippy::too_many_lines)]
pub(crate) fn rank_merged_resilient_solve<S: RecoverableIteration>(
    ctx: RankCtx<'_>,
    relations: &S,
    comm: RankComm,
) -> Result<RankOutcome, CommError> {
    let a = ctx.a;
    let b = ctx.b;
    let own = ctx.own.clone();
    let n = a.cols();
    let local_n = own.len();
    let protected = ctx.policy.needs_protection();
    let forward = ctx.policy.is_forward_exact();
    let preconditioned = relations.preconditioned();
    let registry = &ctx.registry;
    let pages = &ctx.pages;
    // Rank-local storage backend (CSR or SELL-C-σ) for the forward matvecs;
    // per-page recovery matvecs build their own over the lost rows.
    let op = SpmvBackend::select_rows(a, own.clone());

    // x lives inside its full-length buffer (cross-rank recovery scatters
    // fetched halo entries around the owned range); p gets one too for the
    // direction-side recovery round.
    let mut x_full = vec![0.0; n];
    let mut r: Vec<f64> = b[own.clone()].to_vec(); // r = b − A·0
    let mut u = vec![0.0; if preconditioned { local_n } else { 0 }];
    let mut w = vec![0.0; local_n]; // A·u (CG: A·r), by setup then recurrence
    let mut p = vec![0.0; local_n]; // direction
    let mut s = vec![0.0; local_n]; // A·p, by recurrence
    let mut q_aux = vec![0.0; if preconditioned { local_n } else { 0 }]; // M⁻¹·s
    let mut z_aux = vec![0.0; local_n]; // A·q (CG: A·s), by recurrence
    let mut m_buf = vec![0.0; if preconditioned { local_n } else { 0 }]; // M⁻¹·w
    let mut n_buf = vec![0.0; local_n]; // A·m (CG: A·w), fresh per iteration
    let mut mv_full = vec![0.0; n];
    let mut p_full = vec![0.0; n];

    let mut pages_recovered = 0usize;
    let mut pages_coupled = 0usize;
    let mut pages_ignored = 0usize;
    let mut cross_rank_values = 0usize;
    let mut rollbacks = 0usize;
    let mut restarts = 0usize;

    // Pre-loop scrub: faults injected before the solve are healed for free —
    // the setup below recomputes every protected vector from b (and x = 0 is
    // already the correct initial iterate).
    if protected {
        for pg in scrub_blank(registry, ids::X, pages, &mut x_full[own.clone()]) {
            mark_page(registry, ids::X, pg);
        }
        for pg in scrub_blank(registry, ids::G, pages, &mut r) {
            mark_page(registry, ids::G, pg);
        }
        for pg in scrub_blank(registry, ids::D, pages, &mut p) {
            mark_page(registry, ids::D, pg);
        }
        for pg in scrub_blank(registry, ids::Q, pages, &mut s) {
            mark_page(registry, ids::Q, pg);
        }
        if preconditioned {
            for pg in scrub_blank(registry, ids::Z, pages, &mut u) {
                mark_page(registry, ids::Z, pg);
            }
        }
        r.copy_from_slice(&b[own.clone()]);
    }

    let mut store = match ctx.policy {
        RecoveryPolicy::Checkpoint { .. } => Some(CheckpointStore::new(CheckpointTarget::Memory)),
        _ => None,
    };

    let norm_b = kernels::global_rhs_norm(&comm, &b[own.clone()])?;
    // Setup, identical to the plain merged loops: u = M⁻¹·r (PCG), one halo
    // exchange of the matvec source, w = A·(u|r), first reduction partials.
    if preconditioned {
        for pg in 0..pages.num_blocks() {
            let lr = pages.range(pg);
            relations.reapply_preconditioner(pg, &r[lr.clone()], &mut u[lr]);
        }
        mv_full[own.clone()].copy_from_slice(&u);
    } else {
        mv_full[own.clone()].copy_from_slice(&r);
    }
    comm.exchange_halo(&mut mv_full)?;
    op.spmv(a, &mv_full, &mut w);
    let mut partials = if preconditioned {
        kernels::dotn(&[(&r, &u), (&w, &u), (&r, &r)])
    } else {
        kernels::dotn(&[(&r, &r), (&w, &r)])
    };

    let mut gamma_old = f64::INFINITY;
    let mut alpha_old = 0.0;
    let mut iterations = 0usize;
    let mut history = Vec::new();

    for t in 0..ctx.max_iterations {
        let _it = feir_trace::span(feir_trace::Phase::Iteration);
        // Scripted faults for this iteration land now, before any touch.
        if protected {
            for fault in &ctx.scripted {
                if fault.iteration == t {
                    registry.inject(fault.vector.id(), fault.page);
                }
            }
        }
        // Periodic local checkpoint of (x, p, recurrence scalars). Baseline
        // policies materialise faults at the end-of-iteration sweeps, so the
        // data checkpointed here is still intact.
        if let (RecoveryPolicy::Checkpoint { interval }, Some(store)) = (ctx.policy, store.as_mut())
        {
            if t % interval.max(1) == 0 {
                store.checkpoint(t, &x_full[own.clone()], &p, &[gamma_old, alpha_old]);
            }
        }

        // ---- scrub point (forward policies): materialise losses up front so
        // the fault count can ride inside the iteration's one collective.
        let (lost_x, lost_r, mut lost_p, mut lost_s, mut lost_u) = if forward {
            (
                scrub_blank(registry, ids::X, pages, &mut x_full[own.clone()]),
                scrub_blank(registry, ids::G, pages, &mut r),
                scrub_blank(registry, ids::D, pages, &mut p),
                scrub_blank(registry, ids::Q, pages, &mut s),
                if preconditioned {
                    scrub_blank(registry, ids::Z, pages, &mut u)
                } else {
                    Vec::new()
                },
            )
        } else {
            Default::default()
        };
        let local_faults = lost_x.len() + lost_r.len() + lost_p.len() + lost_s.len() + lost_u.len();

        // ---- the single collective of the iteration, posted before the
        // matvec it overlaps. Forward policies append their fault count as
        // one more component — same message, same gather, same broadcast.
        let mut post = partials.clone();
        if forward {
            post.push(local_faults as f64);
        }
        let pending = comm.start_allreduce_vec(post)?;

        // In-window AFEIR prefetch: a faulted rank already knows its
        // direction-side round-1 requests here — the window plan can only
        // retire pages with purely local stencils, which request nothing,
        // so retiring them later cannot change the set. Posting now lets
        // the peers' replies overlap the reduction wait; a local loss
        // forces the global flag, so the posted requests are always
        // consumed. Fault-free iterations post nothing and the wire
        // schedule stays bitwise-identical to the plain merged loop.
        let posted = ctx.policy == RecoveryPolicy::Afeir && local_faults > 0;
        let posted_requests: HashMap<usize, Vec<usize>> = if posted {
            let ps_rows: Vec<usize> = lost_p
                .iter()
                .chain(&lost_s)
                .flat_map(|&pg| global_rows(own.start, pages, pg))
                .collect();
            let requests = remote_stencil_requests(a, &ctx.partition, ctx.rank, &ps_rows);
            comm.post_recovery_requests(&requests)?;
            requests
        } else {
            HashMap::new()
        };

        // ---- reduction window: preconditioner application, halo exchange
        // and matvec all run with the collective in flight — plus, under
        // AFEIR, the rank-local coupled solves, planned into side buffers on
        // the work-stealing pool beside the matvec. (The comm channels never
        // enter the pool: the halo exchange stays on the rank thread, only
        // the purely local work overlaps via `rayon::join`.)
        if preconditioned {
            for pg in 0..pages.num_blocks() {
                let lr = pages.range(pg);
                relations.reapply_preconditioner(pg, &w[lr.clone()], &mut m_buf[lr]);
            }
            mv_full[own.clone()].copy_from_slice(&m_buf);
        } else {
            mv_full[own.clone()].copy_from_slice(&w);
        }
        comm.exchange_halo(&mut mv_full)?;
        let window = if ctx.policy == RecoveryPolicy::Afeir && local_faults > 0 {
            overlap(
                true,
                || {
                    plan_window_fixes(
                        relations, a, &own, pages, &lost_p, &lost_s, &lost_r, &lost_u, &p, &s, &r,
                    )
                },
                || {
                    let _probe = feir_trace::span(feir_trace::Phase::Spmv);
                    op.spmv(a, &mv_full, &mut n_buf);
                },
            )
            .0
        } else {
            let _probe = feir_trace::span(feir_trace::Phase::Spmv);
            op.spmv(a, &mv_full, &mut n_buf);
            WindowPlan::default()
        };

        let totals = pending.finish()?;
        let gamma = totals[0];
        let delta = totals[1];
        let check = if preconditioned { totals[2] } else { gamma };
        let faults_global = if forward {
            *totals.last().expect("fault component present") > 0.0
        } else {
            false
        };

        let rel = check.max(0.0).sqrt() / norm_b;

        // ---- forward recovery, before the convergence check (a converged
        // break must never leave scrubbed blanks in the iterate). A
        // non-empty window plan implies local faults, which imply the global
        // flag, so one test covers both.
        debug_assert!(window.is_empty() || faults_global);
        let ignored_before = pages_ignored;
        if forward && faults_global {
            // Install the window plan and retire those pages from the lost
            // sets; the general path below only sees what remains.
            for (pg, values) in window.p_fixes {
                p[pages.range(pg)].copy_from_slice(&values);
                mark_page(registry, ids::D, pg);
                lost_p.retain(|&q| q != pg);
                pages_recovered += 1;
            }
            for (pg, values) in window.s_fixes {
                s[pages.range(pg)].copy_from_slice(&values);
                mark_page(registry, ids::Q, pg);
                lost_s.retain(|&q| q != pg);
                pages_recovered += 1;
            }
            for (pg, values) in window.u_fixes {
                u[pages.range(pg)].copy_from_slice(&values);
                mark_page(registry, ids::Z, pg);
                lost_u.retain(|&q| q != pg);
                pages_recovered += 1;
            }
            // -- round 1: direction-side recovery exchange on p. Every
            // rank participates (empty requests when healthy). Under AFEIR
            // the requests are already on the wire from inside the
            // reduction window; only the replies are collected here.
            p_full[own.clone()].copy_from_slice(&p);
            let requests = if posted {
                posted_requests
            } else {
                let ps_rows: Vec<usize> = lost_p
                    .iter()
                    .chain(&lost_s)
                    .flat_map(|&pg| global_rows(own.start, pages, pg))
                    .collect();
                remote_stencil_requests(a, &ctx.partition, ctx.rank, &ps_rows)
            };
            let own_blank_p: Vec<usize> = lost_p
                .iter()
                .flat_map(|&pg| global_rows(own.start, pages, pg))
                .collect();
            let (fetched, invalid_p) =
                comm.complete_recovery_exchange(&requests, &mut p_full, &own_blank_p, posted)?;
            cross_rank_values += fetched;

            // Related p/s losses on the same page are unrecoverable.
            let (rec_p, rec_s, conflicted_ps) = split_related(&lost_p, &lost_s);

            // Coupled cross-rank round on the direction: stencil-adjacent
            // direction losses on neighbouring ranks merge into one union
            // solve over s = A·p (see `coupled`), then the revalidation
            // pass refreshes the invalid set against the repaired views.
            let (coupled_p, invalid_p, fetched2) = coupled_round(
                &comm,
                a,
                pages,
                &own,
                &rec_p,
                &lost_p,
                &own_blank_p,
                &requests,
                &invalid_p,
                &s,
                &mut p_full,
                |rows, rhs, view| relations.reconstruct_direction(rows, rhs, view),
            )?;
            cross_rank_values += fetched2 + coupled_p.values_gathered;
            for &pg in &coupled_p.recovered_pages {
                for row in global_rows(own.start, pages, pg) {
                    p[row - own.start] = p_full[row];
                }
            }
            pages_recovered += coupled_p.recovered_pages.len();
            pages_coupled += coupled_p.recovered_pages.len();

            let mut blank_p: Vec<usize> = conflicted_ps
                .iter()
                .flat_map(|&pg| global_rows(own.start, pages, pg))
                .chain(invalid_p.iter().copied())
                .collect();
            blank_p.sort_unstable();
            blank_p.dedup();
            // Taint fixpoint: a direction page whose stencil reads
            // known-blank entries is abandoned, and its own rows join
            // the blank set. Coupled-recovered pages are done already.
            let mut p_pages: Vec<usize> = rec_p
                .iter()
                .copied()
                .filter(|pg| coupled_p.recovered_pages.binary_search(pg).is_err())
                .collect();
            let mut p_ignored: Vec<usize> = Vec::new();
            loop {
                let touches = |pg: usize| {
                    global_rows(own.start, pages, pg).any(|row| {
                        let (cols, _) = a.row(row);
                        cols.iter().any(|c| blank_p.binary_search(c).is_ok())
                    })
                };
                let (dropped, keep): (Vec<usize>, Vec<usize>) =
                    p_pages.iter().partition(|&&pg| touches(pg));
                p_pages = keep;
                if dropped.is_empty() {
                    break;
                }
                blank_p.extend(
                    dropped
                        .iter()
                        .flat_map(|&pg| global_rows(own.start, pages, pg)),
                );
                blank_p.sort_unstable();
                blank_p.dedup();
                p_ignored.extend(dropped);
            }
            let rows: Vec<usize> = p_pages
                .iter()
                .flat_map(|&pg| global_rows(own.start, pages, pg))
                .collect();
            let s_at: Vec<f64> = p_pages
                .iter()
                .flat_map(|&pg| pages.range(pg))
                .map(|i| s[i])
                .collect();
            let values = if rows.is_empty() {
                None
            } else {
                relations.reconstruct_direction(&rows, &s_at, &p_full)
            };
            match values {
                Some(values) => {
                    for (&row, v) in rows.iter().zip(&values) {
                        p[row - own.start] = *v;
                        p_full[row] = *v;
                    }
                    pages_recovered += p_pages.len();
                }
                None => {
                    blank_p.extend(rows.iter().copied());
                    blank_p.sort_unstable();
                    blank_p.dedup();
                    p_ignored.extend(p_pages.iter().copied());
                }
            }
            pages_ignored += p_ignored.len();
            for &pg in &lost_p {
                mark_page(registry, ids::D, pg);
            }
            // Matvec-image pages: recompute from the repaired direction
            // view, unless the stencil still reads blank p entries.
            for &pg in &rec_s {
                let rows = global_rows(own.start, pages, pg);
                let tainted = rows.clone().any(|row| {
                    let (cols, _) = a.row(row);
                    cols.iter().any(|c| blank_p.binary_search(c).is_ok())
                });
                if tainted {
                    pages_ignored += 1;
                } else {
                    let mut out = vec![0.0; rows.len()];
                    SpmvBackend::select_rows(a, rows.clone()).spmv(a, &p_full, &mut out);
                    s[pages.range(pg)].copy_from_slice(&out);
                    pages_recovered += 1;
                }
                mark_page(registry, ids::Q, pg);
            }
            for &pg in &conflicted_ps {
                mark_page(registry, ids::D, pg);
                mark_page(registry, ids::Q, pg);
            }
            pages_ignored += 2 * conflicted_ps.len();

            // -- round 2: iterate-side recovery exchange on x, exactly
            // the classic engine path (coupled x solves, r recomputes,
            // related-loss taint).
            let xr_rows: Vec<usize> = lost_x
                .iter()
                .chain(&lost_r)
                .flat_map(|&pg| global_rows(own.start, pages, pg))
                .collect();
            let requests = remote_stencil_requests(a, &ctx.partition, ctx.rank, &xr_rows);
            let own_blank_x: Vec<usize> = lost_x
                .iter()
                .flat_map(|&pg| global_rows(own.start, pages, pg))
                .collect();
            let (fetched, invalid_x) =
                comm.recovery_exchange(&requests, &mut x_full, &own_blank_x)?;
            cross_rank_values += fetched;
            let (rec_x, rec_r, conflicted_xr) = split_related(&lost_x, &lost_r);

            // Coupled cross-rank round on the iterate, mirroring the
            // classic loop: adjacent x losses across a boundary solve as
            // one union against the recurrence residual.
            let (coupled_x, invalid_x, fetched2) = coupled_round(
                &comm,
                a,
                pages,
                &own,
                &rec_x,
                &lost_x,
                &own_blank_x,
                &requests,
                &invalid_x,
                &r,
                &mut x_full,
                |rows, rhs, view| relations.reconstruct_iterate(rows, rhs, view),
            )?;
            cross_rank_values += fetched2 + coupled_x.values_gathered;

            let mut blank_x: Vec<usize> = conflicted_xr
                .iter()
                .flat_map(|&pg| global_rows(own.start, pages, pg))
                .chain(invalid_x.iter().copied())
                .collect();
            blank_x.sort_unstable();
            blank_x.dedup();
            let plan = plan_state_fixes(
                relations,
                a,
                pages,
                own.start,
                StateLosses {
                    rec_x: &rec_x,
                    rec_g: &rec_r,
                    blank_x: &blank_x,
                    cross_rank: &coupled_x.recovered_pages,
                },
                &r,
                &x_full,
            );
            let mut counters = InstallCounters::default();
            install_state_plan(
                &plan,
                pages,
                registry,
                &conflicted_xr,
                &mut x_full,
                &mut r,
                &mut counters,
            );
            // Preconditioned residual pages left over: re-solve from the
            // (possibly just repaired) r page, or blank-accept when that
            // page itself stayed blank.
            for &pg in &lost_u {
                let r_healthy =
                    !lost_r.contains(&pg) || plan.g_fixes.iter().any(|(fixed, _)| *fixed == pg);
                let range = pages.range(pg);
                let mut out = vec![0.0; range.len()];
                if r_healthy && relations.reapply_preconditioner(pg, &r[range.clone()], &mut out) {
                    u[range].copy_from_slice(&out);
                    counters.recovered += 1;
                } else {
                    counters.ignored += 1;
                }
                mark_page(registry, ids::Z, pg);
            }
            pages_recovered += counters.recovered;
            pages_coupled += counters.coupled;
            pages_ignored += counters.ignored;
            // ---- residual replacement after blank-acceptance. Unlike the
            // classic loop — whose matvec recomputes q = A·d from scratch
            // every iteration — the merged recurrences (`w = A·r`,
            // `s = A·p`, …) never self-correct: a blank-accepted page makes
            // them inconsistent *permanently* and the solve drifts. So when
            // any rank accepted a blank this round, every rank rebuilds the
            // recurrence state from the exact relations and restarts the
            // direction (β = 0), which is the standard residual-replacement
            // remedy of the pipelined-CG literature. Exact recoveries do
            // not pay this: the restored bits equal the pre-fault state, so
            // the recurrences are already consistent.
            if comm.fault_flag(pages_ignored - ignored_before)? {
                gamma_old = f64::INFINITY;
                alpha_old = 0.0;
                partials = rebuild_recurrence_state(RebuildCtx {
                    relations,
                    a,
                    b,
                    comm: &comm,
                    own: &own,
                    pages,
                    preconditioned,
                    keep_direction: false,
                    x_full: &mut x_full,
                    r: &mut r,
                    u: &mut u,
                    w: &mut w,
                    p: &mut p,
                    s: &mut s,
                    q_aux: &mut q_aux,
                    z_aux: &mut z_aux,
                    mv_full: &mut mv_full,
                })?;
                history.push(rel);
                if rel <= ctx.tolerance {
                    break;
                }
                iterations = t + 1;
                continue;
            }
        }

        history.push(rel);
        if rel <= ctx.tolerance {
            break;
        }
        iterations = t + 1;

        if preconditioned && kernels::is_breakdown(gamma) {
            break;
        }
        let beta = kernels::beta_ratio(gamma, gamma_old);
        let Some(alpha) = merged_alpha(gamma, delta, beta, alpha_old) else {
            break;
        };

        // ---- the fused update sweep, same kernel sequence as the plain
        // merged loops (fault-free bitwise identity lives here).
        kernels::xpay(&n_buf, beta, &mut z_aux);
        if preconditioned {
            kernels::xpay(&m_buf, beta, &mut q_aux);
        }
        kernels::xpay(&w, beta, &mut s);
        if preconditioned {
            kernels::xpay(&u, beta, &mut p);
        } else {
            kernels::xpay(&r, beta, &mut p);
        }
        kernels::axpy(alpha, &p, &mut x_full[own.clone()]);
        let eps_next = kernels::axpy_norm2(-alpha, &s, &mut r);
        if preconditioned {
            let gamma_next = kernels::axpy_dot(-alpha, &q_aux, &mut u, &r);
            let delta_next = kernels::axpy_dot(-alpha, &z_aux, &mut w, &u);
            partials = vec![gamma_next, delta_next, eps_next];
        } else {
            let delta_next = kernels::axpy_dot(-alpha, &z_aux, &mut w, &r);
            partials = vec![eps_next, delta_next];
        }
        gamma_old = gamma;
        alpha_old = alpha;

        // ---- baseline policies: end-of-iteration sweeps (the classic scrub
        // placement — checkpointed data stays intact until here).
        match ctx.policy {
            RecoveryPolicy::Ideal | RecoveryPolicy::Feir | RecoveryPolicy::Afeir => {}
            RecoveryPolicy::Trivial => {
                // Blank every lost page and keep going (Section 4.1). The
                // recurrence invariants (s = A·p, …) break on the blanked
                // pages; the explicit final residual reports the damage
                // honestly.
                let mut sweep: Vec<(_, &mut [f64])> = vec![
                    (ids::X, &mut x_full[own.clone()]),
                    (ids::G, &mut r[..]),
                    (ids::D, &mut p[..]),
                    (ids::Q, &mut s[..]),
                ];
                if preconditioned {
                    sweep.push((ids::Z, &mut u[..]));
                }
                pages_ignored += blank_sweep(registry, pages, sweep);
            }
            RecoveryPolicy::TrivialReplace => {
                // Hybrid: blank-accept like Trivial, but pay one residual
                // replacement whenever any rank lost anything — the rebuilt
                // recurrences stop the blanked pages from poisoning the
                // merged recurrences permanently, at the cost of a Krylov
                // restart (β = 0) instead of Trivial's silent drift.
                let mut sweep: Vec<(_, &mut [f64])> = vec![
                    (ids::X, &mut x_full[own.clone()]),
                    (ids::G, &mut r[..]),
                    (ids::D, &mut p[..]),
                    (ids::Q, &mut s[..]),
                ];
                if preconditioned {
                    sweep.push((ids::Z, &mut u[..]));
                }
                let lost_total = blank_sweep(registry, pages, sweep);
                pages_ignored += lost_total;
                if comm.fault_flag(lost_total)? {
                    gamma_old = f64::INFINITY;
                    alpha_old = 0.0;
                    partials = rebuild_recurrence_state(RebuildCtx {
                        relations,
                        a,
                        b,
                        comm: &comm,
                        own: &own,
                        pages,
                        preconditioned,
                        keep_direction: false,
                        x_full: &mut x_full,
                        r: &mut r,
                        u: &mut u,
                        w: &mut w,
                        p: &mut p,
                        s: &mut s,
                        q_aux: &mut q_aux,
                        z_aux: &mut z_aux,
                        mv_full: &mut mv_full,
                    })?;
                    restarts += 1;
                }
            }
            RecoveryPolicy::Checkpoint { .. } => {
                let mut sweep: Vec<(_, &mut [f64])> = vec![
                    (ids::X, &mut x_full[own.clone()]),
                    (ids::G, &mut r[..]),
                    (ids::D, &mut p[..]),
                    (ids::Q, &mut s[..]),
                ];
                if preconditioned {
                    sweep.push((ids::Z, &mut u[..]));
                }
                let lost_total = blank_sweep(registry, pages, sweep);
                if comm.fault_flag(lost_total)? {
                    // Global rollback: restore (x, p, scalars), then rebuild
                    // the whole recurrence state from the exact relations.
                    let store = store.as_mut().expect("checkpoint store exists");
                    let mut scalars = Vec::new();
                    if store
                        .rollback(&mut x_full[own.clone()], &mut p, &mut scalars)
                        .is_some()
                    {
                        rollbacks += 1;
                    }
                    gamma_old = scalars.first().copied().unwrap_or(f64::INFINITY);
                    alpha_old = scalars.get(1).copied().unwrap_or(0.0);
                    partials = rebuild_recurrence_state(RebuildCtx {
                        relations,
                        a,
                        b,
                        comm: &comm,
                        own: &own,
                        pages,
                        preconditioned,
                        keep_direction: true,
                        x_full: &mut x_full,
                        r: &mut r,
                        u: &mut u,
                        w: &mut w,
                        p: &mut p,
                        s: &mut s,
                        q_aux: &mut q_aux,
                        z_aux: &mut z_aux,
                        mv_full: &mut mv_full,
                    })?;
                }
            }
            RecoveryPolicy::LossyRestart => {
                let lost_x = scrub_blank(registry, ids::X, pages, &mut x_full[own.clone()]);
                let mut sweep: Vec<(_, &mut [f64])> = vec![
                    (ids::G, &mut r[..]),
                    (ids::D, &mut p[..]),
                    (ids::Q, &mut s[..]),
                ];
                if preconditioned {
                    sweep.push((ids::Z, &mut u[..]));
                }
                let lost_total = lost_x.len() + blank_sweep(registry, pages, sweep);
                if comm.fault_flag(lost_total)? {
                    // Interpolate the lost iterate pages (lossy block-Jacobi
                    // step, remote stencil entries fetched first), then
                    // restart the Krylov space globally.
                    let lost_rows: Vec<usize> = lost_x
                        .iter()
                        .flat_map(|&pg| global_rows(own.start, pages, pg))
                        .collect();
                    let requests = remote_stencil_requests(a, &ctx.partition, ctx.rank, &lost_rows);
                    let (fetched, _) =
                        comm.recovery_exchange(&requests, &mut x_full, &lost_rows)?;
                    cross_rank_values += fetched;
                    for &pg in &lost_x {
                        let rows: Vec<usize> = global_rows(own.start, pages, pg).collect();
                        match relations.lossy_iterate_rows(&rows, &x_full) {
                            Some(values) => {
                                for (&row, v) in rows.iter().zip(&values) {
                                    x_full[row] = *v;
                                }
                                pages_recovered += 1;
                            }
                            None => pages_ignored += 1,
                        }
                        mark_page(registry, ids::X, pg);
                    }
                    gamma_old = f64::INFINITY;
                    alpha_old = 0.0;
                    partials = rebuild_recurrence_state(RebuildCtx {
                        relations,
                        a,
                        b,
                        comm: &comm,
                        own: &own,
                        pages,
                        preconditioned,
                        keep_direction: false,
                        x_full: &mut x_full,
                        r: &mut r,
                        u: &mut u,
                        w: &mut w,
                        p: &mut p,
                        s: &mut s,
                        q_aux: &mut q_aux,
                        z_aux: &mut z_aux,
                        mv_full: &mut mv_full,
                    })?;
                    restarts += 1;
                }
            }
        }
    }

    let allreduces = comm.collectives();
    Ok(RankOutcome {
        rank: ctx.rank,
        x_own: x_full[own].to_vec(),
        iterations,
        history,
        pages_recovered,
        pages_coupled,
        pages_ignored,
        cross_rank_values,
        rollbacks,
        restarts,
        allreduces,
    })
}

/// Everything [`rebuild_recurrence_state`] needs, bundled so the rollback and
/// restart paths stay readable.
struct RebuildCtx<'a, S: RecoverableIteration> {
    relations: &'a S,
    a: &'a CsrMatrix,
    b: &'a [f64],
    comm: &'a RankComm,
    own: &'a std::ops::Range<usize>,
    pages: &'a BlockPartition,
    preconditioned: bool,
    /// Keep the restored direction (checkpoint rollback) or zero it (lossy
    /// restart discards the Krylov space).
    keep_direction: bool,
    x_full: &'a mut Vec<f64>,
    r: &'a mut Vec<f64>,
    u: &'a mut Vec<f64>,
    w: &'a mut Vec<f64>,
    p: &'a mut Vec<f64>,
    s: &'a mut Vec<f64>,
    q_aux: &'a mut Vec<f64>,
    z_aux: &'a mut Vec<f64>,
    mv_full: &'a mut Vec<f64>,
}

/// Rebuilds the merged recurrence state from (x, p) using the exact
/// relations — `r = b − A·x`, `u = M⁻¹·r`, `w = A·u`, `s = A·p`,
/// `q = M⁻¹·s`, `z = A·q` — and returns the fresh reduction partials. Every
/// rank executes this together (the halo exchanges are collective over
/// neighbours), which is how the checkpoint rollback and lossy restart stay
/// globally consistent.
fn rebuild_recurrence_state<S: RecoverableIteration>(
    ctx: RebuildCtx<'_, S>,
) -> Result<Vec<f64>, CommError> {
    let own = ctx.own.clone();
    // Cold path (rollback/restart): the backend is rebuilt here rather than
    // threaded through RebuildCtx — rebuilds are rare by construction.
    let op = SpmvBackend::select_rows(ctx.a, own.clone());
    // r = b − A·x (one halo exchange of the restored iterate).
    ctx.comm.exchange_halo(ctx.x_full)?;
    op.spmv(ctx.a, ctx.x_full, &mut ctx.r[..]);
    for (k, row) in own.clone().enumerate() {
        ctx.r[k] = ctx.b[row] - ctx.r[k];
    }
    let apply = |pages: &BlockPartition, src: &[f64], dst: &mut [f64]| {
        for pg in 0..pages.num_blocks() {
            let lr = pages.range(pg);
            ctx.relations
                .reapply_preconditioner(pg, &src[lr.clone()], &mut dst[lr]);
        }
    };
    // w = A·u with u = M⁻¹·r (CG: u ≡ r).
    if ctx.preconditioned {
        apply(ctx.pages, ctx.r, ctx.u);
        ctx.mv_full[own.clone()].copy_from_slice(ctx.u);
    } else {
        ctx.mv_full[own.clone()].copy_from_slice(ctx.r);
    }
    ctx.comm.exchange_halo(ctx.mv_full)?;
    op.spmv(ctx.a, ctx.mv_full, &mut ctx.w[..]);
    if ctx.keep_direction {
        // s = A·p, q = M⁻¹·s, z = A·q — the Krylov direction survives the
        // rollback with its matvec images rebuilt exactly.
        ctx.mv_full[own.clone()].copy_from_slice(ctx.p);
        ctx.comm.exchange_halo(ctx.mv_full)?;
        op.spmv(ctx.a, ctx.mv_full, &mut ctx.s[..]);
        if ctx.preconditioned {
            apply(ctx.pages, ctx.s, ctx.q_aux);
            ctx.mv_full[own.clone()].copy_from_slice(ctx.q_aux);
        } else {
            ctx.mv_full[own.clone()].copy_from_slice(ctx.s);
        }
        ctx.comm.exchange_halo(ctx.mv_full)?;
        op.spmv(ctx.a, ctx.mv_full, &mut ctx.z_aux[..]);
    } else {
        for v in ctx.p.iter_mut() {
            *v = 0.0;
        }
        for v in ctx.s.iter_mut() {
            *v = 0.0;
        }
        for v in ctx.q_aux.iter_mut() {
            *v = 0.0;
        }
        for v in ctx.z_aux.iter_mut() {
            *v = 0.0;
        }
        // Matched (empty) halo rounds so ranks that kept their direction and
        // ranks that restarted can never coexist: the policy is global, so
        // every rank takes the same branch — these exchanges keep the two
        // branches' communication schedules aligned if that ever changes.
        ctx.comm.exchange_halo(ctx.mv_full)?;
        ctx.comm.exchange_halo(ctx.mv_full)?;
    }
    Ok(if ctx.preconditioned {
        kernels::dotn(&[
            (&ctx.r[..], &ctx.u[..]),
            (&ctx.w[..], &ctx.u[..]),
            (&ctx.r[..], &ctx.r[..]),
        ])
    } else {
        kernels::dotn(&[(&ctx.r[..], &ctx.r[..]), (&ctx.w[..], &ctx.r[..])])
    })
}
