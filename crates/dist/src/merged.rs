//! Merged-reduction distributed CG and PCG: **one allreduce per iteration**,
//! started split-phase and kept in flight across the halo exchange and the
//! matvec.
//!
//! The classic distributed loops synchronize two (CG) or three (PCG) times
//! per iteration, and every reduction sits *between* dependent kernels, so
//! its latency lands on the critical path. The merged variants use the
//! pipelined Chronopoulos–Gear recurrences (the Ghysels–Vanroose
//! rearrangement): the matvec moves onto an auxiliary vector, every scalar
//! the iteration needs is computed as a *local partial* by the previous
//! iteration's fused update sweep, and the batched vector allreduce
//! ([`RankComm::start_allreduce_vec`]) is posted **before** the halo
//! exchange and the local matvec — the collective's latency hides behind
//! the heaviest work of the iteration instead of serializing with it.
//!
//! Per iteration, per rank:
//!
//! ```text
//! post     allreduce([γ, δ(, ε)])        ← partials from the last sweep
//! overlap  halo(w) ; n ⇐ A·w            ← (PCG: m ⇐ M⁻¹w first, halo(m), n ⇐ A·m)
//! finish   allreduce → global γ, δ(, ε)
//! scalars  β = γ/γ_old ; α = γ/(δ − β·γ/α_old)
//! sweep    z ⇐ n + β·z ; s ⇐ w + β·s ; p ⇐ r + β·p ; x ⇐ x + α·p ;
//!          r ⇐ r − α·s  (fused: next ‖r‖²) ; w ⇐ w − α·z  (fused: next ⟨w,r⟩)
//! ```
//!
//! The sweep maintains `s = A·p` and `z = A·s` by recurrence (for PCG also
//! `u = M⁻¹·r` and `q = M⁻¹·s`), so the iterates span the same Krylov space
//! as the classic loops — iteration counts agree within a few percent, but
//! the floating-point trajectory is **not** bitwise-identical to classic
//! CG/PCG (different recurrences). What *is* promised bitwise: the result is
//! deterministic run-to-run at every rank count, and the fault-free
//! resilient twins ([`crate::resilient::distributed_resilient_cg_merged`] /
//! [`distributed_resilient_pcg_merged`](crate::resilient::distributed_resilient_pcg_merged))
//! reproduce these loops bit-for-bit.

use feir_sparse::{CsrMatrix, LocalBlockJacobi, SpmvBackend};

use crate::cg::{run_ranks, DistSolveResult, RankOutcome};
use crate::comm::{CommError, RankComm};
use crate::kernels;
use crate::partition::RankPartition;

/// The guarded Chronopoulos–Gear step length `α = γ / (δ − β·γ/α_old)`;
/// `None` signals breakdown (zero or non-finite denominator).
pub(crate) fn merged_alpha(gamma: f64, delta: f64, beta: f64, alpha_old: f64) -> Option<f64> {
    let denom = if beta == 0.0 {
        delta
    } else {
        delta - beta * gamma / alpha_old
    };
    if kernels::is_breakdown(denom) {
        None
    } else {
        Some(gamma / denom)
    }
}

/// Solves `A x = b` with merged-reduction distributed CG: one batched
/// `[γ, δ]` allreduce per iteration, overlapped with the halo exchange and
/// the matvec. Interface and result match
/// [`distributed_cg`](crate::cg::distributed_cg).
///
/// # Panics
/// Panics if the matrix is not square or `b` has the wrong length.
pub fn distributed_cg_merged(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    tolerance: f64,
    max_iterations: usize,
) -> DistSolveResult {
    assert_eq!(a.rows(), a.cols(), "distributed CG needs a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    run_ranks(a, b, ranks, tolerance, move |ctx| {
        rank_cg_merged(a, b, ctx.comm, &ctx.partition, tolerance, max_iterations)
    })
}

/// Solves `A x = b` with merged-reduction block-Jacobi distributed PCG: one
/// batched `[γ, δ, ε]` allreduce per iteration, overlapped with the
/// preconditioner application, the halo exchange and the matvec. Interface
/// and result match [`distributed_pcg`](crate::pcg::distributed_pcg).
///
/// # Panics
/// Panics if the matrix is not square or `b` has the wrong length.
pub fn distributed_pcg_merged(
    a: &CsrMatrix,
    b: &[f64],
    ranks: usize,
    page_doubles: usize,
    tolerance: f64,
    max_iterations: usize,
) -> DistSolveResult {
    assert_eq!(a.rows(), a.cols(), "distributed PCG needs a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let page_doubles = page_doubles.max(1);
    run_ranks(a, b, ranks, tolerance, move |ctx| {
        rank_pcg_merged(
            a,
            b,
            ctx.comm,
            &ctx.partition,
            page_doubles,
            tolerance,
            max_iterations,
        )
    })
}

/// The per-rank merged CG loop (see the module docs for the iteration
/// shape), backend-agnostic like every rank loop.
pub(crate) fn rank_cg_merged(
    a: &CsrMatrix,
    b: &[f64],
    comm: RankComm,
    partition: &RankPartition,
    tolerance: f64,
    max_iterations: usize,
) -> Result<RankOutcome, CommError> {
    let rank = comm.rank();
    let own = partition.range(rank);
    let local_n = own.len();
    // Rank-local storage backend over the owned row block (see rank_cg).
    let op = SpmvBackend::select_rows(a, own.clone());

    let mut x = vec![0.0; local_n];
    let mut r: Vec<f64> = b[own.clone()].to_vec(); // r = b − A·0
    let mut p = vec![0.0; local_n]; // direction
    let mut s = vec![0.0; local_n]; // A·p, by recurrence
    let mut z = vec![0.0; local_n]; // A·s, by recurrence
    let mut w = vec![0.0; local_n]; // A·r
    let mut n_buf = vec![0.0; local_n]; // A·w, fresh each iteration
                                        // Private full-length buffer for whichever vector the matvec reads.
    let mut mv_full = vec![0.0; a.cols()];

    let norm_b = kernels::global_rhs_norm(&comm, &b[own.clone()])?;
    // w = A·r needs one setup halo exchange of the initial residual.
    mv_full[own.clone()].copy_from_slice(&r);
    comm.exchange_halo(&mut mv_full)?;
    op.spmv(a, &mv_full, &mut w);
    // Local partials of the first iteration's batched reduction.
    let mut partials = kernels::dotn(&[(&r, &r), (&w, &r)]);

    let mut gamma_old = f64::INFINITY;
    let mut alpha_old = 0.0;
    let mut iterations = 0;
    let mut history = Vec::new();

    for t in 0..max_iterations {
        let _it = feir_trace::span(feir_trace::Phase::Iteration);
        // The iteration's single collective: posted now, finished after the
        // halo exchange and the matvec it overlaps.
        let pending = comm.start_allreduce_vec(partials.clone())?;
        mv_full[own.clone()].copy_from_slice(&w);
        comm.exchange_halo(&mut mv_full)?;
        {
            let _probe = feir_trace::span(feir_trace::Phase::Spmv);
            op.spmv(a, &mv_full, &mut n_buf);
        }
        let totals = pending.finish()?;
        let (gamma, delta) = (totals[0], totals[1]);

        let rel = gamma.max(0.0).sqrt() / norm_b;
        history.push(rel);
        if rel <= tolerance {
            break;
        }
        iterations = t + 1;

        let beta = kernels::beta_ratio(gamma, gamma_old);
        let Some(alpha) = merged_alpha(gamma, delta, beta, alpha_old) else {
            break;
        };
        // The fused update sweep: recurrences first (old values on the right
        // of each ⇐), then the two updates that also produce the next
        // iteration's reduction partials in the same pass.
        kernels::xpay(&n_buf, beta, &mut z);
        kernels::xpay(&w, beta, &mut s);
        kernels::xpay(&r, beta, &mut p);
        kernels::axpy(alpha, &p, &mut x);
        let gamma_next = kernels::axpy_norm2(-alpha, &s, &mut r);
        let delta_next = kernels::axpy_dot(-alpha, &z, &mut w, &r);
        partials = vec![gamma_next, delta_next];

        gamma_old = gamma;
        alpha_old = alpha;
    }
    let collectives = comm.collectives();
    Ok((rank, x, iterations, history, collectives))
}

/// The per-rank merged block-Jacobi PCG loop, backend-agnostic.
pub(crate) fn rank_pcg_merged(
    a: &CsrMatrix,
    b: &[f64],
    comm: RankComm,
    partition: &RankPartition,
    page_doubles: usize,
    tolerance: f64,
    max_iterations: usize,
) -> Result<RankOutcome, CommError> {
    let rank = comm.rank();
    let own = partition.range(rank);
    let local_n = own.len();
    let jacobi = LocalBlockJacobi::new(a, own.clone(), page_doubles, true)
        .expect("rank-local block-Jacobi construction failed");
    // Rank-local storage backend over the owned row block (see rank_cg).
    let op = SpmvBackend::select_rows(a, own.clone());

    let mut x = vec![0.0; local_n];
    let mut r: Vec<f64> = b[own.clone()].to_vec(); // r = b − A·0
    let mut u = vec![0.0; local_n]; // M⁻¹·r, by recurrence
    let mut w = vec![0.0; local_n]; // A·u
    let mut p = vec![0.0; local_n]; // direction
    let mut s = vec![0.0; local_n]; // A·p, by recurrence
    let mut q = vec![0.0; local_n]; // M⁻¹·s, by recurrence
    let mut z = vec![0.0; local_n]; // A·q, by recurrence
    let mut m_buf = vec![0.0; local_n]; // M⁻¹·w, fresh each iteration
    let mut n_buf = vec![0.0; local_n]; // A·m, fresh each iteration
    let mut mv_full = vec![0.0; a.cols()];

    let norm_b = kernels::global_rhs_norm(&comm, &b[own.clone()])?;
    // u = M⁻¹·r (local), then w = A·u with one setup halo exchange.
    jacobi.apply(&r, &mut u);
    mv_full[own.clone()].copy_from_slice(&u);
    comm.exchange_halo(&mut mv_full)?;
    op.spmv(a, &mv_full, &mut w);
    // γ = ⟨r, u⟩, δ = ⟨w, u⟩, ε = ‖r‖² — the three scalars of one batched
    // reduction (classic PCG pays three separate allreduces for these).
    let mut partials = kernels::dotn(&[(&r, &u), (&w, &u), (&r, &r)]);

    let mut gamma_old = f64::INFINITY;
    let mut alpha_old = 0.0;
    let mut iterations = 0;
    let mut history = Vec::new();

    for t in 0..max_iterations {
        let _it = feir_trace::span(feir_trace::Phase::Iteration);
        let pending = comm.start_allreduce_vec(partials.clone())?;
        // Inside the reduction window: the (communication-free) block-Jacobi
        // application, the halo exchange and the matvec.
        jacobi.apply(&w, &mut m_buf);
        mv_full[own.clone()].copy_from_slice(&m_buf);
        comm.exchange_halo(&mut mv_full)?;
        {
            let _probe = feir_trace::span(feir_trace::Phase::Spmv);
            op.spmv(a, &mv_full, &mut n_buf);
        }
        let totals = pending.finish()?;
        let (gamma, delta, eps) = (totals[0], totals[1], totals[2]);

        let rel = eps.max(0.0).sqrt() / norm_b;
        history.push(rel);
        if rel <= tolerance {
            break;
        }
        iterations = t + 1;

        if kernels::is_breakdown(gamma) {
            break;
        }
        let beta = kernels::beta_ratio(gamma, gamma_old);
        let Some(alpha) = merged_alpha(gamma, delta, beta, alpha_old) else {
            break;
        };
        // Fused update sweep (recurrences on old values first, then the
        // three updates that produce the next [γ, δ, ε] partials).
        kernels::xpay(&n_buf, beta, &mut z);
        kernels::xpay(&m_buf, beta, &mut q);
        kernels::xpay(&w, beta, &mut s);
        kernels::xpay(&u, beta, &mut p);
        kernels::axpy(alpha, &p, &mut x);
        let eps_next = kernels::axpy_norm2(-alpha, &s, &mut r);
        let gamma_next = kernels::axpy_dot(-alpha, &q, &mut u, &r);
        let delta_next = kernels::axpy_dot(-alpha, &z, &mut w, &u);
        partials = vec![gamma_next, delta_next, eps_next];

        gamma_old = gamma;
        alpha_old = alpha;
    }
    let collectives = comm.collectives();
    Ok((rank, x, iterations, history, collectives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::distributed_cg;
    use crate::pcg::distributed_pcg;
    use feir_sparse::generators::{anisotropic_2d, manufactured_rhs, poisson_2d};

    fn assert_iterations_close(merged: usize, classic: usize) {
        let tolerance = (classic as f64 * 0.10).ceil() as i64 + 1;
        let diff = (merged as i64 - classic as i64).abs();
        assert!(
            diff <= tolerance,
            "merged {merged} vs classic {classic} iterations (allowed ±{tolerance})"
        );
    }

    #[test]
    fn merged_cg_converges_and_matches_classic_iterations() {
        let a = poisson_2d(12);
        let (x_true, b) = manufactured_rhs(&a, 5);
        let classic = distributed_cg(&a, &b, 2, 1e-10, 10_000);
        for ranks in [1usize, 2, 3] {
            let merged = distributed_cg_merged(&a, &b, ranks, 1e-10, 10_000);
            assert!(merged.converged(), "{ranks} ranks did not converge");
            assert_iterations_close(merged.iterations, classic.iterations);
            for (u, v) in merged.x.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-7, "{ranks} ranks: {u} vs {v}");
            }
        }
    }

    #[test]
    fn merged_cg_issues_exactly_one_allreduce_per_iteration() {
        let a = poisson_2d(10);
        let (_, b) = manufactured_rhs(&a, 3);
        for ranks in [1usize, 2, 4] {
            let merged = distributed_cg_merged(&a, &b, ranks, 1e-10, 10_000);
            assert!(merged.converged());
            // One collective per convergence check (= history entry) plus the
            // setup ‖b‖ reduction — nothing else.
            assert_eq!(
                merged.allreduces,
                merged.residual_history.len() as u64 + 1,
                "{ranks} ranks"
            );
            let classic = distributed_cg(&a, &b, ranks, 1e-10, 10_000);
            // Classic CG pays two allreduces per iteration (⟨d,q⟩ and ε)
            // plus the setup ‖b‖ and initial ε.
            assert_eq!(
                classic.allreduces,
                2 * classic.iterations as u64 + 2,
                "{ranks} ranks"
            );
        }
    }

    #[test]
    fn merged_pcg_converges_and_issues_one_allreduce_per_iteration() {
        let a = poisson_2d(12);
        let (x_true, b) = manufactured_rhs(&a, 7);
        let classic = distributed_pcg(&a, &b, 2, 16, 1e-10, 10_000);
        for ranks in [1usize, 2, 3] {
            let merged = distributed_pcg_merged(&a, &b, ranks, 16, 1e-10, 10_000);
            assert!(merged.converged(), "{ranks} ranks did not converge");
            assert_iterations_close(merged.iterations, classic.iterations);
            assert_eq!(
                merged.allreduces,
                merged.residual_history.len() as u64 + 1,
                "{ranks} ranks"
            );
            for (u, v) in merged.x.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-7, "{ranks} ranks: {u} vs {v}");
            }
        }
    }

    #[test]
    fn merged_pcg_preconditioning_pays_off() {
        let a = anisotropic_2d(24, 0.02);
        let (_, b) = manufactured_rhs(&a, 9);
        let plain = distributed_cg_merged(&a, &b, 2, 1e-8, 50_000);
        let pre = distributed_pcg_merged(&a, &b, 2, 64, 1e-8, 50_000);
        assert!(plain.converged() && pre.converged());
        assert!(
            pre.iterations < plain.iterations,
            "merged PCG ({}) should beat merged CG ({})",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn merged_history_is_rank_count_invariant_to_roundoff() {
        let a = poisson_2d(10);
        let (_, b) = manufactured_rhs(&a, 3);
        let one = distributed_cg_merged(&a, &b, 1, 1e-10, 10_000);
        assert_eq!(one.residual_history.len(), one.iterations + 1);
        for ranks in [2usize, 5] {
            let multi = distributed_cg_merged(&a, &b, ranks, 1e-10, 10_000);
            assert_eq!(multi.residual_history.len(), one.residual_history.len());
            for (u, v) in multi.residual_history.iter().zip(&one.residual_history) {
                assert!((u - v).abs() <= 1e-9 * (1.0 + v.abs()), "{u} vs {v}");
            }
        }
    }

    #[test]
    fn merged_cg_is_deterministic_run_to_run() {
        let a = poisson_2d(8);
        let (_, b) = manufactured_rhs(&a, 2);
        let first = distributed_cg_merged(&a, &b, 3, 1e-10, 10_000);
        let second = distributed_cg_merged(&a, &b, 3, 1e-10, 10_000);
        assert_eq!(first.iterations, second.iterations);
        for (u, v) in first.x.iter().zip(&second.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
        for (u, v) in first.residual_history.iter().zip(&second.residual_history) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn merged_iteration_cap_is_honoured() {
        let a = poisson_2d(10);
        let (_, b) = manufactured_rhs(&a, 2);
        let merged = distributed_cg_merged(&a, &b, 4, 1e-14, 3);
        assert_eq!(merged.iterations, 3);
        assert!(!merged.converged());
    }
}
