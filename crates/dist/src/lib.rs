//! # feir-dist
//!
//! Simulated distributed-memory substrate for the FEIR project (reproduction
//! of *"Exploiting Asynchrony from Exact Forward Recovery for DUE in
//! Iterative Solvers"*, Jaulmes et al., SC 2015).
//!
//! The paper's scaling study (Section 3.4 / Figure 5) runs the resilient CG
//! as MPI+OmpSs: the matrix is distributed by block rows, each rank exchanges
//! the halo of the search direction before its local SpMV, and the two dot
//! products of the iteration are global allreduces. This crate reproduces
//! that structure with *simulated ranks* — one OS thread per rank, message
//! passing over channels, no shared mutable state between ranks — so the
//! communication pattern (and its failure domains) can be studied on one
//! machine:
//!
//! * [`RankPartition`] — contiguous block-row ownership, the paper's
//!   distribution of the 27-point Poisson operator;
//! * [`HaloPlan`] / [`RankComm`] — per-pair exchange lists of exactly the
//!   remote entries each rank's rows reference, sent over channels each
//!   iteration ([`distributed_spmv`] is the one-shot form). Since PR 6 the
//!   same interface also runs over a **real multi-process transport**
//!   ([`process`]): each rank an OS process, a full socket mesh (Unix
//!   domain sockets, TCP fallback) speaking the versioned [`feir_wire`]
//!   frame protocol, with disconnects surfacing as typed [`CommError`]s on
//!   both backends and bitwise-identical collectives;
//! * [`Reducer`] — deterministic rank-ordered sum allreduce used for the CG
//!   dot products ([`distributed_dot`] is the one-shot form);
//! * [`RankDomains`] — one [`feir_pagemem::PageRegistry`] per rank: DUEs are
//!   contained to the rank that owns the page, which is the fault-domain
//!   model the distributed recovery of Section 3.4 relies on;
//! * [`distributed_cg`] / [`distributed_pcg`] — block-row distributed CG
//!   and block-Jacobi PCG (rank-local page blocks, no communication in the
//!   preconditioner) over the simulated ranks, agreeing with the
//!   shared-memory solvers to round-off; the allreduce also has a
//!   split-phase form ([`RankComm::start_allreduce`]) whose result is
//!   bitwise-identical to the blocking one;
//! * [`resilient`] — the distributed resilience subsystem, built on the
//!   solver-agnostic engine of
//!   [`feir_recovery::engine`]: per-rank live fault injection
//!   ([`InjectionDriver`]), the cross-rank [`RecoveryMsg`] request/reply
//!   protocol for interpolations whose stencil crosses a rank boundary, and
//!   [`distributed_resilient_cg`] / [`distributed_resilient_pcg`] running
//!   the full [`RecoveryPolicy`](feir_recovery::RecoveryPolicy) matrix
//!   (trivial / checkpoint / lossy / FEIR / AFEIR) with fault-free paths
//!   that are bitwise-identical to their plain counterparts;
//! * [`campaign`] — the [`FaultCampaign`] runner sweeping solver × policy ×
//!   rank-count × fault-rate into Figure-5-comparable overhead tables;
//! * [`ScalingModel`] — the calibrated analytic model regenerating the
//!   Figure-5 speedup curves for every recovery policy.

#![warn(missing_docs)]

pub mod campaign;
pub mod cg;
pub mod comm;
mod coupled;
pub mod domains;
mod elastic;
mod kernels;
pub mod merged;
pub mod model;
pub mod partition;
pub mod pcg;
pub mod process;
mod rank_loop;
mod rank_loop_merged;
pub mod resilient;

pub use campaign::{
    CampaignBaseline, CampaignCell, CampaignReport, CampaignSolver, FaultCampaign, KillSchedule,
    NetCampaignBaseline, NetCampaignCell, NetCampaignReport, NetFaultCampaign,
};
pub use cg::{distributed_cg, DistSolveResult, NetStats};
pub use comm::{
    distributed_dot, distributed_spmv, CommError, HaloPlan, PendingAllreduce, PendingVecAllreduce,
    RankComm, RecoveryMsg, Reducer, ReducerPending, ReducerVecPending,
};
pub use domains::{RankDomains, RankFaultCounts};
pub use merged::{distributed_cg_merged, distributed_pcg_merged};
pub use model::{ScalingModel, ScalingPoint};
pub use partition::RankPartition;
pub use pcg::distributed_pcg;
pub use process::{
    connect_mesh, solve_with_processes, spawn_workers, spawn_workers_with, spawned_as_worker,
    worker_main, ChaosConfig, MeshOptions, ProcessEndpoint, ProcessError, ProcessSpec, Transport,
    WorkerHandles, WorkerOptions, WorkerSolver,
};
pub use resilient::{
    distributed_resilient_cg, distributed_resilient_cg_merged, distributed_resilient_pcg,
    distributed_resilient_pcg_merged, DistResilienceConfig, DistResilientCg, DistResilientReport,
    DistResilientSolver, InjectionDriver, ProtectedVector, ScriptedFault,
};
