//! The engine-based per-rank resilient solver loop.
//!
//! This is the distributed instantiation of the
//! [`feir_recovery::engine`] layer: one generic loop, parameterised by a
//! [`RecoverableIteration`] describing the solver's algebraic relations,
//! runs the full [`RecoveryPolicy`] matrix on every simulated rank. Plain CG
//! is [`CgRelations`](feir_recovery::CgRelations), block-Jacobi PCG is
//! [`PcgRelations`](feir_recovery::PcgRelations); a future BiCGStab or
//! GMRES-restart variant is another relations impl, not another loop.
//!
//! The loop preserves two hard guarantees:
//!
//! * **fault-free bitwise identity** — with zero faults every kernel call
//!   and every collective happens in exactly the order of the plain
//!   [`distributed_cg`](crate::cg::distributed_cg) /
//!   [`distributed_pcg`](crate::pcg::distributed_pcg) loops, on the same
//!   values (the scrub points do no floating-point work and the fault flag
//!   is a separate scalar allreduce);
//! * **AFEIR overlaps the reduction wait itself** — reconstruction is
//!   planned beside the partial reductions (the PR 3 overlap) *and*, via
//!   the split-phase [`RankComm::start_allreduce`], the coupled solves and
//!   page installation run while the global sum is in flight instead of
//!   before the collective starts. The split-phase collective itself is
//!   bitwise-identical to the blocking one for the same local partial, and
//!   the partial patched from *planned* values is exactly what installing
//!   first and reducing after would have produced on this AFEIR path (the
//!   FEIR path's whole-slice reductions may group the same sums
//!   differently, as in PR 3).
//!
//! Since PR 7 the loop is split into resumable phases
//! ([`alloc_state`] → [`init_collectives`] → [`resilient_iterations`] →
//! [`finish_outcome`]) around an explicit [`SolveState`], so the elastic
//! harness ([`crate::elastic`]) can abort the iteration phase on a peer
//! failure, repair the state after the rejoin barrier, and re-enter the
//! loop at the agreed iteration. [`rank_resilient_solve`] composes the
//! phases back into the original single-shot solve — same calls, same
//! order, bitwise-identical to the pre-split loop.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use feir_pagemem::{AccessOutcome, PageRegistry};
use feir_recovery::checkpoint::{CheckpointStore, CheckpointTarget};
use feir_recovery::engine::{
    mark_page, overlap, plan_state_fixes, scrub_blank, split_related, StateLosses,
};
use feir_recovery::{RecoverableIteration, RecoveryPolicy};
use feir_sparse::blocking::BlockPartition;
use feir_sparse::{CsrMatrix, SpmvBackend};

use crate::comm::{CommError, RankComm};
use crate::kernels;
use crate::partition::RankPartition;
use crate::resilient::ScriptedFault;

/// Registry ids of the protected vectors, in registration order.
pub(crate) mod ids {
    use feir_pagemem::VectorId;

    pub const X: VectorId = VectorId(0);
    pub const G: VectorId = VectorId(1);
    pub const D: VectorId = VectorId(2);
    pub const Q: VectorId = VectorId(3);
    /// Preconditioned residual; registered only by the PCG instantiation.
    pub const Z: VectorId = VectorId(4);
}

/// Everything one rank's solver thread needs.
pub(crate) struct RankCtx<'a> {
    pub a: &'a CsrMatrix,
    pub b: &'a [f64],
    pub policy: RecoveryPolicy,
    pub tolerance: f64,
    pub max_iterations: usize,
    pub rank: usize,
    pub own: Range<usize>,
    pub pages: BlockPartition,
    pub registry: Arc<PageRegistry>,
    pub partition: RankPartition,
    pub scripted: Vec<ScriptedFault>,
    /// Per-iteration sleep at the top of the loop body; `ZERO` (the normal
    /// case) does nothing at all. Kill/respawn tests dilate the solve with
    /// it so a failure deterministically lands mid-iteration — a sleep does
    /// no floating-point work, so bitwise identity is untouched.
    pub throttle: Duration,
}

/// What one rank's solver thread reports back.
pub(crate) struct RankOutcome {
    pub rank: usize,
    pub x_own: Vec<f64>,
    pub iterations: usize,
    pub history: Vec<f64>,
    pub pages_recovered: usize,
    pub pages_ignored: usize,
    /// Subset of `pages_recovered` reconstructed by the cross-rank coupled
    /// exchange (losses spanning a rank boundary, solved as one union).
    pub pages_coupled: usize,
    pub cross_rank_values: usize,
    pub rollbacks: usize,
    pub restarts: usize,
    pub allreduces: u64,
}

/// Global row range of rank-local page `p`.
pub(crate) fn global_rows(own_start: usize, pages: &BlockPartition, p: usize) -> Range<usize> {
    let local = pages.range(p);
    own_start + local.start..own_start + local.end
}

/// For every given global row, the remote stencil columns grouped by owning
/// rank — the request set of one recovery exchange.
pub(crate) fn remote_stencil_requests(
    a: &CsrMatrix,
    partition: &RankPartition,
    rank: usize,
    rows: &[usize],
) -> HashMap<usize, Vec<usize>> {
    let own = partition.range(rank);
    let mut requests: HashMap<usize, Vec<usize>> = HashMap::new();
    for &r in rows {
        let (cols, _) = a.row(r);
        for &c in cols {
            if !own.contains(&c) {
                requests.entry(partition.owner_of(c)).or_default().push(c);
            }
        }
    }
    for indices in requests.values_mut() {
        indices.sort_unstable();
        indices.dedup();
    }
    requests
}

/// Page bookkeeping of one state-plan installation.
#[derive(Default)]
pub(crate) struct InstallCounters {
    pub(crate) recovered: usize,
    pub(crate) ignored: usize,
    /// Pages the cross-rank coupled exchange reconstructed (counted into
    /// `recovered` as well).
    pub(crate) coupled: usize,
}

/// Installs a planned iterate/residual reconstruction into the live vectors
/// and clears the page-loss state. Under AFEIR this runs inside the
/// split-phase reduction wait: the planned values were already patched into
/// the local partial, so the installation (memcpy + registry bookkeeping)
/// cannot change the value in flight.
#[allow(clippy::too_many_arguments)]
pub(crate) fn install_state_plan(
    plan: &feir_recovery::engine::StatePlan,
    pages: &BlockPartition,
    registry: &PageRegistry,
    conflicted: &[usize],
    x_full: &mut [f64],
    g: &mut [f64],
    counters: &mut InstallCounters,
) {
    let _probe = feir_trace::span(feir_trace::Phase::RecoveryInstall);
    // Pages the coupled cross-rank exchange repaired carry installed exact
    // values already; here they only need their page-state cleared and the
    // recovery credited.
    for &p in &plan.cross_rank {
        mark_page(registry, ids::X, p);
    }
    counters.recovered += plan.cross_rank.len();
    counters.coupled += plan.cross_rank.len();
    match &plan.x_values {
        Some(values) => {
            for (&r, v) in plan.x_rows.iter().zip(values) {
                x_full[r] = *v;
            }
            counters.recovered += plan.x_pages.len();
        }
        None => counters.ignored += plan.x_pages.len(),
    }
    for p in plan.x_pages.iter().chain(&plan.x_ignored) {
        mark_page(registry, ids::X, *p);
    }
    counters.ignored += plan.x_ignored.len();
    for (p, values) in &plan.g_fixes {
        g[pages.range(*p)].copy_from_slice(values);
        mark_page(registry, ids::G, *p);
    }
    counters.recovered += plan.g_fixes.len();
    for &p in &plan.g_ignored {
        mark_page(registry, ids::G, p);
    }
    counters.ignored += plan.g_ignored.len();
    for &p in conflicted {
        mark_page(registry, ids::X, p);
        mark_page(registry, ids::G, p);
    }
    counters.ignored += 2 * conflicted.len();
}

/// One policy sweep point: scrubs every listed vector, blanking its lost
/// pages and marking them healthy again; returns how many pages were
/// blanked. Shared by the Trivial / Checkpoint / LossyRestart end-of-
/// iteration sweeps.
pub(crate) fn blank_sweep(
    registry: &PageRegistry,
    pages: &BlockPartition,
    entries: Vec<(feir_pagemem::VectorId, &mut [f64])>,
) -> usize {
    let mut blanked = 0;
    for (id, data) in entries {
        for p in scrub_blank(registry, id, pages, data) {
            mark_page(registry, id, p);
            blanked += 1;
        }
    }
    blanked
}

/// The complete mutable state of one rank's solve between iterations — what
/// the elastic harness snapshots conceptually when a peer dies: everything
/// here survives the aborted collective and is repaired (or rebuilt) before
/// the loop re-enters at the rejoin iteration.
pub(crate) struct SolveState {
    pub x_full: Vec<f64>,
    pub g: Vec<f64>,
    pub d: Vec<f64>,
    pub q: Vec<f64>,
    pub z: Vec<f64>,
    pub d_full: Vec<f64>,
    pub store: Option<CheckpointStore>,
    pub norm_b: f64,
    pub eps: f64,
    pub rho_old: f64,
    /// Next iteration to run (the loop counter).
    pub t: usize,
    pub iterations: usize,
    pub history: Vec<f64>,
    pub pages_recovered: usize,
    pub pages_ignored: usize,
    pub pages_coupled: usize,
    pub cross_rank_values: usize,
    pub rollbacks: usize,
    pub restarts: usize,
}

/// Allocates the solve vectors, runs the pre-loop scrub and creates the
/// checkpoint store. Purely rank-local: no collectives, so a newcomer can
/// run it before the rejoin barrier.
pub(crate) fn alloc_state(ctx: &RankCtx<'_>) -> SolveState {
    let own = ctx.own.clone();
    let n = ctx.a.cols();
    let protected = ctx.policy.needs_protection();
    let registry = &ctx.registry;
    let pages = &ctx.pages;

    // x lives inside its full-length buffer so cross-rank recovery can
    // scatter fetched halo entries around the owned range.
    let mut x_full = vec![0.0; n];
    let mut g: Vec<f64> = ctx.b[own.clone()].to_vec(); // g = b − A·0
    let mut d = vec![0.0; own.len()];
    let mut q = vec![0.0; own.len()];
    // z is allocated unconditionally; the CG instantiation never touches it
    // (resilient_iterations sizes its use by `relations.preconditioned()`).
    let mut z = vec![0.0; own.len()];
    let d_full = vec![0.0; n];

    // Pre-loop scrub: faults injected before the solve land on the known
    // initial state, so the blank page *is* the correct data (x = d = q = 0)
    // or is refilled trivially (g = b; z is recomputed before first use).
    if protected {
        for p in scrub_blank(registry, ids::X, pages, &mut x_full[own.clone()]) {
            mark_page(registry, ids::X, p);
        }
        for p in scrub_blank(registry, ids::D, pages, &mut d) {
            mark_page(registry, ids::D, p);
        }
        for p in scrub_blank(registry, ids::Q, pages, &mut q) {
            mark_page(registry, ids::Q, p);
        }
        if registry.num_vectors() > ids::Z.0 {
            for p in scrub_blank(registry, ids::Z, pages, &mut z) {
                mark_page(registry, ids::Z, p);
            }
        }
        for p in scrub_blank(registry, ids::G, pages, &mut g) {
            let local = pages.range(p);
            let global = global_rows(own.start, pages, p);
            g[local].copy_from_slice(&ctx.b[global]);
            mark_page(registry, ids::G, p);
        }
    }

    let store = match ctx.policy {
        RecoveryPolicy::Checkpoint { .. } => Some(CheckpointStore::new(CheckpointTarget::Memory)),
        _ => None,
    };

    SolveState {
        x_full,
        g,
        d,
        q,
        z,
        d_full,
        store,
        norm_b: 1.0,
        eps: 0.0,
        // For CG `ρ = ε` and this is the ε of the previous iteration; for
        // PCG it is the previous `⟨z, g⟩`. Both start from the ∞ sentinel
        // (β = 0).
        rho_old: f64::INFINITY,
        t: 0,
        iterations: 0,
        history: Vec::new(),
        pages_recovered: 0,
        pages_ignored: 0,
        pages_coupled: 0,
        cross_rank_values: 0,
        rollbacks: 0,
        restarts: 0,
    }
}

/// One coupled cross-rank recovery round plus the re-validation exchange
/// that follows it: the candidates' union is gathered, solved and installed
/// (see [`crate::coupled`]), then every fetched index round 1 flagged
/// invalid is re-requested once — its owner may just have received an exact
/// coupled reconstruction for it, in which case the refreshed value and
/// verdict keep the local planner from abandoning a now-solvable page. A
/// neighbourhood collective like its two halves; every rank calls it once
/// per faulty iteration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn coupled_round<F>(
    comm: &RankComm,
    a: &CsrMatrix,
    pages: &BlockPartition,
    own: &Range<usize>,
    rec: &[usize],
    lost: &[usize],
    own_blank: &[usize],
    requests: &HashMap<usize, Vec<usize>>,
    invalid_fetched: &[usize],
    rhs_local: &[f64],
    target_full: &mut [f64],
    solve: F,
) -> Result<(crate::coupled::CoupledOutcome, Vec<usize>, usize), CommError>
where
    F: Fn(&[usize], &[f64], &[f64]) -> Option<Vec<f64>>,
{
    let outcome = crate::coupled::coupled_cross_rank_recovery(
        comm,
        a,
        pages,
        own,
        rec,
        own_blank,
        invalid_fetched,
        rhs_local,
        target_full,
        solve,
    )?;
    let mut revalidate: HashMap<usize, Vec<usize>> = HashMap::new();
    for (peer, indices) in requests {
        let still: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|i| invalid_fetched.binary_search(i).is_ok())
            .collect();
        if !still.is_empty() {
            revalidate.insert(*peer, still);
        }
    }
    // Rows of pages the coupled round did not repair are still blank here
    // (local planning happens after this), so they stay unserviceable.
    let unserviceable: Vec<usize> = lost
        .iter()
        .filter(|p| outcome.recovered_pages.binary_search(p).is_err())
        .flat_map(|&p| global_rows(own.start, pages, p))
        .collect();
    let (fetched, invalid) = comm.recovery_exchange(&revalidate, target_full, &unserviceable)?;
    Ok((outcome, invalid, fetched))
}

/// The two opening collectives of the solve: ‖b‖ and the initial ε.
pub(crate) fn init_collectives(
    ctx: &RankCtx<'_>,
    comm: &RankComm,
    state: &mut SolveState,
) -> Result<(), CommError> {
    state.norm_b = kernels::global_rhs_norm(comm, &ctx.b[ctx.own.clone()])?;
    state.eps = comm.allreduce_sum(kernels::norm2_squared(&state.g))?;
    Ok(())
}

/// The iteration phase: runs from `state.t` until convergence, breakdown or
/// the iteration cap, mutating `state` in place. A transport failure
/// surfaces as the typed [`CommError`] with `state` intact at the failed
/// iteration — which is exactly what the elastic rejoin path needs.
#[allow(clippy::too_many_lines)]
pub(crate) fn resilient_iterations<S: RecoverableIteration>(
    ctx: &RankCtx<'_>,
    relations: &S,
    comm: &RankComm,
    state: &mut SolveState,
) -> Result<(), CommError> {
    let a = ctx.a;
    let b = ctx.b;
    let own = ctx.own.clone();
    let protected = ctx.policy.needs_protection();
    let forward = ctx.policy.is_forward_exact();
    let preconditioned = relations.preconditioned();
    let registry = &ctx.registry;
    let pages = &ctx.pages;
    // Rank-local storage backend (CSR or SELL-C-σ) for the forward matvec
    // and the residual recomputations; per-page recovery matvecs build
    // their own backend over the lost rows on demand (the analyzer's row
    // floor keeps page-sized blocks on CSR under `auto`).
    let op = SpmvBackend::select_rows(a, own.clone());

    let SolveState {
        x_full,
        g,
        d,
        q,
        z,
        d_full,
        store,
        norm_b,
        eps,
        rho_old,
        t,
        iterations,
        history,
        pages_recovered,
        pages_ignored,
        pages_coupled,
        cross_rank_values,
        rollbacks,
        restarts,
    } = state;

    while *t < ctx.max_iterations {
        let rel = eps.max(0.0).sqrt() / *norm_b;
        history.push(rel);
        if rel <= ctx.tolerance {
            break;
        }
        *iterations = *t + 1;
        let _it = feir_trace::span(feir_trace::Phase::Iteration);

        if !ctx.throttle.is_zero() {
            std::thread::sleep(ctx.throttle);
        }

        // Scripted faults for this iteration land now, before any touch.
        if protected {
            for fault in &ctx.scripted {
                if fault.iteration == *t {
                    registry.inject(fault.vector.id(), fault.page);
                }
            }
        }

        // Periodic local checkpoint of (x, d, scalars).
        if let (RecoveryPolicy::Checkpoint { interval }, Some(store)) = (ctx.policy, store.as_mut())
        {
            if *t % interval.max(1) == 0 {
                store.checkpoint(*t, &x_full[own.clone()], d, &[*eps, *rho_old]);
            }
        }

        // ---- preconditioner application (PCG only) ------------------------
        // z ⇐ M⁻¹ g, one coupled block solve per page. For the forward
        // policies the reapplication is also the *recovery relation* for z:
        // a lost page is simply re-solved from the factorized diagonal
        // block, so the scrub here heals every z loss exactly. The baseline
        // policies must not get that exact recovery for free — their z
        // faults surface at the end-of-iteration sweeps and pay the
        // policy's own price (blanking, rollback, restart).
        let rho = if preconditioned {
            let lost_z = if forward {
                scrub_blank(registry, ids::Z, pages, z)
            } else {
                Vec::new()
            };
            for p in 0..pages.num_blocks() {
                let local = pages.range(p);
                relations.reapply_preconditioner(p, &g[local.clone()], &mut z[local]);
            }
            for &p in &lost_z {
                mark_page(registry, ids::Z, p);
            }
            *pages_recovered += lost_z.len();
            let rho = comm.allreduce_sum(kernels::dot(z, g))?;
            if kernels::is_breakdown(rho) {
                break;
            }
            rho
        } else {
            *eps
        };

        let beta = kernels::beta_ratio(rho, *rho_old);
        let src: &[f64] = if preconditioned { z } else { g };

        // ---- direction protection (FEIR/AFEIR; purely rank-local) --------
        // d still holds d(t−1) here and q holds A·d(t−1), so a lost page of
        // the direction is reconstructed from the inverse matvec relation
        // before the in-place update consumes it.
        let lost_d = if forward {
            scrub_blank(registry, ids::D, pages, d)
        } else {
            Vec::new()
        };
        if lost_d.is_empty() {
            // Fault-free fast path: the exact arithmetic of the plain loop.
            kernels::xpay(src, beta, d);
        } else {
            // Refresh the owned range of the retained snapshot (blanks
            // included — the lost values must not be readable) while the halo
            // keeps the d(t−1) entries of the neighbours.
            d_full[own.clone()].copy_from_slice(d);
            // A lost direction page is recoverable only if its q page
            // survived (simultaneous loss of d_R and q_R is the "related
            // data" case the paper ignores).
            let mut recoverable = Vec::new();
            let mut abandoned = Vec::new();
            for &p in &lost_d {
                if matches!(registry.on_access(ids::Q, p), AccessOutcome::Ok) {
                    recoverable.push(p);
                } else {
                    abandoned.push(p);
                }
            }
            let rows: Vec<usize> = recoverable
                .iter()
                .flat_map(|&p| global_rows(own.start, pages, p))
                .collect();
            let q_at_rows: Vec<f64> = recoverable
                .iter()
                .flat_map(|&p| pages.range(p))
                .map(|i| q[i])
                .collect();
            let recover = || {
                if rows.is_empty() {
                    None
                } else {
                    relations.reconstruct_direction(&rows, &q_at_rows, d_full)
                }
            };
            let update_surviving = |d: &mut [f64]| {
                for p in 0..pages.num_blocks() {
                    if !lost_d.contains(&p) {
                        for i in pages.range(p) {
                            d[i] = src[i] + beta * d[i];
                        }
                    }
                }
            };
            // AFEIR reconstructs the lost pages while the surviving pages
            // run their update on the work-stealing pool; FEIR runs the same
            // two steps in the critical path.
            let values = overlap(ctx.policy == RecoveryPolicy::Afeir, recover, || {
                update_surviving(&mut d[..])
            })
            .0;
            // Finish the update on the lost pages with the reconstructed
            // d(t−1) (or the blank, when unrecoverable).
            match values {
                Some(values) => {
                    for (&r, v) in rows.iter().zip(&values) {
                        let i = r - own.start;
                        d[i] = src[i] + beta * v;
                    }
                    *pages_recovered += recoverable.len();
                }
                None => {
                    for &p in &recoverable {
                        for i in pages.range(p) {
                            d[i] = src[i];
                        }
                    }
                    *pages_ignored += recoverable.len();
                }
            }
            for &p in &abandoned {
                for i in pages.range(p) {
                    d[i] = src[i];
                }
            }
            *pages_ignored += abandoned.len();
            for &p in &lost_d {
                mark_page(registry, ids::D, p);
            }
        }

        d_full[own.clone()].copy_from_slice(d);
        comm.exchange_halo(d_full)?;
        {
            let _probe = feir_trace::span(feir_trace::Phase::Spmv);
            op.spmv(a, d_full, q);
        }

        // ---- q protection (FEIR/AFEIR; local recompute, r1 of Figure 1) ---
        let dq = if forward {
            let lost_q = scrub_blank(registry, ids::Q, pages, q);
            if lost_q.is_empty() {
                comm.allreduce_sum(kernels::dot(d, q))?
            } else if ctx.policy == RecoveryPolicy::Feir {
                // Critical path: recompute, then reduce over clean data.
                for &p in &lost_q {
                    let rows = global_rows(own.start, pages, p);
                    let local = pages.range(p);
                    SpmvBackend::select_rows(a, rows).spmv(a, d_full, &mut q[local]);
                    mark_page(registry, ids::Q, p);
                }
                *pages_recovered += lost_q.len();
                comm.allreduce_sum(kernels::dot(d, q))?
            } else {
                // AFEIR: the recomputation overlaps the partial reduction,
                // the skipped contributions are patched into the partial
                // from the *planned* values, and the split-phase allreduce
                // then keeps the collective in flight while the pages are
                // installed — the reduction wait absorbs the installation.
                let (fixes, partial) = overlap(
                    true,
                    || {
                        lost_q
                            .iter()
                            .map(|&p| {
                                let rows = global_rows(own.start, pages, p);
                                let mut out = vec![0.0; rows.len()];
                                SpmvBackend::select_rows(a, rows).spmv(a, d_full, &mut out);
                                (p, out)
                            })
                            .collect::<Vec<_>>()
                    },
                    || {
                        let mut sum = 0.0;
                        for p in 0..pages.num_blocks() {
                            if !lost_q.contains(&p) {
                                let local = pages.range(p);
                                sum += kernels::dot(&d[local.clone()], &q[local]);
                            }
                        }
                        sum
                    },
                );
                let mut sum = partial;
                for (p, values) in &fixes {
                    let local = pages.range(*p);
                    sum += kernels::dot(&d[local], values);
                }
                let pending = comm.start_allreduce(sum)?;
                for (p, values) in fixes {
                    let local = pages.range(p);
                    q[local].copy_from_slice(&values);
                    mark_page(registry, ids::Q, p);
                }
                *pages_recovered += lost_q.len();
                pending.finish()?
            }
        } else {
            comm.allreduce_sum(kernels::dot(d, q))?
        };
        if kernels::is_breakdown(dq) {
            break;
        }
        let alpha = rho / dq;
        kernels::axpy(alpha, d, &mut x_full[own.clone()]);
        kernels::axpy(-alpha, q, g);

        // ---- iterate/residual protection + ε reduction --------------------
        match ctx.policy {
            RecoveryPolicy::Ideal => {
                *rho_old = rho;
                *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
            }
            RecoveryPolicy::Feir | RecoveryPolicy::Afeir => {
                let lost_x = scrub_blank(registry, ids::X, pages, &mut x_full[own.clone()]);
                let lost_g = scrub_blank(registry, ids::G, pages, g);
                // Cross-rank round request set: the remote stencil entries
                // of every lost row (x is never exchanged by CG, so this is
                // the only way to evaluate the off-diagonal terms). Computed
                // before the fault flag so the AFEIR path can post it inside
                // the flag's own reduction window.
                let lost_rows: Vec<usize> = lost_x
                    .iter()
                    .chain(&lost_g)
                    .flat_map(|&p| global_rows(own.start, pages, p))
                    .collect();
                let requests = if lost_rows.is_empty() {
                    HashMap::new()
                } else {
                    remote_stencil_requests(a, &ctx.partition, ctx.rank, &lost_rows)
                };
                // This rank's own scrubbed x rows are post-blank garbage: a
                // neighbour recovering at the same time must not treat them
                // as authoritative, so they travel as the unserviceable set.
                let own_blank_x: Vec<usize> = lost_x
                    .iter()
                    .flat_map(|&p| global_rows(own.start, pages, p))
                    .collect();
                // In-window AFEIR: a rank that already knows it lost pages
                // posts its round-1 recovery requests while the global fault
                // flag is still in flight, so the peers' replies overlap the
                // reduction wait. A local loss forces the flag true, so a
                // posted request is always consumed; the fault-free path
                // posts nothing and performs the identical scalar collective.
                let posted = ctx.policy == RecoveryPolicy::Afeir && !lost_rows.is_empty();
                let faulty = if ctx.policy == RecoveryPolicy::Afeir {
                    let pending = comm.start_allreduce((lost_x.len() + lost_g.len()) as f64)?;
                    if posted {
                        comm.post_recovery_requests(&requests)?;
                    }
                    pending.finish()? > 0.0
                } else {
                    comm.fault_flag(lost_x.len() + lost_g.len())?
                };
                *rho_old = rho;
                if !faulty {
                    *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
                    *t += 1;
                    continue;
                }
                let (fetched, invalid_fetched) =
                    comm.complete_recovery_exchange(&requests, x_full, &own_blank_x, posted)?;
                *cross_rank_values += fetched;
                // Pages lost in both x and g are the unrecoverable
                // related-loss case: blank-accepted. Remote entries the
                // owner flagged invalid would poison a purely local solve —
                // but before giving up on them, the coupled cross-rank round
                // below tries to solve the boundary-spanning union exactly.
                let (rec_x, rec_g, conflicted) = split_related(&lost_x, &lost_g);
                let mut counters = InstallCounters::default();
                let reconstruct = |rows: &[usize], rhs: &[f64], view: &[f64]| -> Option<Vec<f64>> {
                    relations.reconstruct_iterate(rows, rhs, view)
                };
                let blanks_from = |invalid2: Vec<usize>| -> Vec<usize> {
                    let mut blank_x: Vec<usize> = conflicted
                        .iter()
                        .flat_map(|&p| global_rows(own.start, pages, p))
                        .chain(invalid2)
                        .collect();
                    blank_x.sort_unstable();
                    blank_x.dedup();
                    blank_x
                };
                if ctx.policy == RecoveryPolicy::Afeir && lost_g.is_empty() {
                    // AFEIR with only iterate losses: ε does not depend on x,
                    // so the local partial is final immediately and the
                    // *entire* reconstruction — coupled waves, re-validation,
                    // planning and installation — overlaps the reduction
                    // wait through the split-phase allreduce.
                    let mut sum = 0.0;
                    for p in 0..pages.num_blocks() {
                        sum += kernels::norm2_squared(&g[pages.range(p)]);
                    }
                    let pending = comm.start_allreduce(sum)?;
                    let (coupled, invalid2, fetched2) = coupled_round(
                        comm,
                        a,
                        pages,
                        &own,
                        &rec_x,
                        &lost_x,
                        &own_blank_x,
                        &requests,
                        &invalid_fetched,
                        g,
                        x_full,
                        reconstruct,
                    )?;
                    *cross_rank_values += fetched2 + coupled.values_gathered;
                    let blank_x = blanks_from(invalid2);
                    let plan = plan_state_fixes(
                        relations,
                        a,
                        pages,
                        own.start,
                        StateLosses {
                            rec_x: &rec_x,
                            rec_g: &rec_g,
                            blank_x: &blank_x,
                            cross_rank: &coupled.recovered_pages,
                        },
                        g,
                        x_full,
                    );
                    install_state_plan(
                        &plan,
                        pages,
                        registry,
                        &conflicted,
                        x_full,
                        g,
                        &mut counters,
                    );
                    *eps = pending.finish()?;
                } else {
                    // Coupled cross-rank round in the critical path (FEIR)
                    // or ahead of the overlapped planning (AFEIR with
                    // residual losses, whose ε needs the repaired g first).
                    let (coupled, invalid2, fetched2) = coupled_round(
                        comm,
                        a,
                        pages,
                        &own,
                        &rec_x,
                        &lost_x,
                        &own_blank_x,
                        &requests,
                        &invalid_fetched,
                        g,
                        x_full,
                        reconstruct,
                    )?;
                    *cross_rank_values += fetched2 + coupled.values_gathered;
                    let blank_x = blanks_from(invalid2);
                    if ctx.policy == RecoveryPolicy::Feir {
                        // Critical path: reconstruct, install, reduce over
                        // the repaired residual.
                        let plan = plan_state_fixes(
                            relations,
                            a,
                            pages,
                            own.start,
                            StateLosses {
                                rec_x: &rec_x,
                                rec_g: &rec_g,
                                blank_x: &blank_x,
                                cross_rank: &coupled.recovered_pages,
                            },
                            g,
                            x_full,
                        );
                        install_state_plan(
                            &plan,
                            pages,
                            registry,
                            &conflicted,
                            x_full,
                            g,
                            &mut counters,
                        );
                        *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
                    } else {
                        // AFEIR with residual losses: plan beside the partial
                        // ε reduction, patch the recovered pages'
                        // contributions from the planned values, then install
                        // during the reduction wait.
                        let (plan, partial) = overlap(
                            true,
                            || {
                                plan_state_fixes(
                                    relations,
                                    a,
                                    pages,
                                    own.start,
                                    StateLosses {
                                        rec_x: &rec_x,
                                        rec_g: &rec_g,
                                        blank_x: &blank_x,
                                        cross_rank: &coupled.recovered_pages,
                                    },
                                    g,
                                    x_full,
                                )
                            },
                            || {
                                let mut sum = 0.0;
                                for p in 0..pages.num_blocks() {
                                    if !lost_g.contains(&p) {
                                        sum += kernels::norm2_squared(&g[pages.range(p)]);
                                    }
                                }
                                sum
                            },
                        );
                        let mut sum = partial;
                        for &p in &lost_g {
                            // Conflicted and abandoned pages stay blank and
                            // contribute an exact zero, which adding would not
                            // change the bits of a non-negative partial sum.
                            if let Some((_, values)) = plan.g_fixes.iter().find(|(fp, _)| *fp == p)
                            {
                                sum += kernels::norm2_squared(values);
                            }
                        }
                        let pending = comm.start_allreduce(sum)?;
                        install_state_plan(
                            &plan,
                            pages,
                            registry,
                            &conflicted,
                            x_full,
                            g,
                            &mut counters,
                        );
                        *eps = pending.finish()?;
                    }
                }
                *pages_recovered += counters.recovered;
                *pages_ignored += counters.ignored;
                *pages_coupled += counters.coupled;
            }
            RecoveryPolicy::Trivial => {
                // Blank every lost page and keep going (Section 4.1): purely
                // local, no collectives beyond the ε reduction. z (when
                // present) is blank-accepted like everything else; the next
                // iteration's reapplication overwrites it anyway.
                let mut sweep: Vec<(_, &mut [f64])> = vec![
                    (ids::X, &mut x_full[own.clone()]),
                    (ids::G, &mut g[..]),
                    (ids::D, &mut d[..]),
                    (ids::Q, &mut q[..]),
                ];
                if preconditioned {
                    sweep.push((ids::Z, &mut z[..]));
                }
                *pages_ignored += blank_sweep(registry, pages, sweep);
                *rho_old = rho;
                *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
            }
            RecoveryPolicy::TrivialReplace => {
                // Trivial blank-accept plus a residual-replacement rebuild:
                // lost pages are blanked exactly as Trivial does, but when
                // anything was lost anywhere the Krylov state is made
                // mutually consistent again — g is recomputed from the
                // blanked iterate and the direction recurrence restarts —
                // so the solve keeps converging at the price of a restart
                // instead of silently drifting on inconsistent vectors.
                let mut sweep: Vec<(_, &mut [f64])> = vec![
                    (ids::X, &mut x_full[own.clone()]),
                    (ids::G, &mut g[..]),
                    (ids::D, &mut d[..]),
                    (ids::Q, &mut q[..]),
                ];
                if preconditioned {
                    sweep.push((ids::Z, &mut z[..]));
                }
                let lost_total = blank_sweep(registry, pages, sweep);
                *pages_ignored += lost_total;
                if comm.fault_flag(lost_total)? {
                    comm.exchange_halo(x_full)?;
                    op.spmv(a, x_full, g);
                    for (k, r) in own.clone().enumerate() {
                        g[k] = b[r] - g[k];
                    }
                    d.iter_mut().for_each(|v| *v = 0.0);
                    *restarts += 1;
                    *rho_old = f64::INFINITY;
                    *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
                    *t += 1;
                    continue;
                }
                *rho_old = rho;
                *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
            }
            RecoveryPolicy::Checkpoint { .. } => {
                let mut sweep: Vec<(_, &mut [f64])> = vec![
                    (ids::X, &mut x_full[own.clone()]),
                    (ids::G, &mut g[..]),
                    (ids::D, &mut d[..]),
                    (ids::Q, &mut q[..]),
                ];
                if preconditioned {
                    sweep.push((ids::Z, &mut z[..]));
                }
                let lost_total = blank_sweep(registry, pages, sweep);
                if comm.fault_flag(lost_total)? {
                    // Global rollback: every rank restores its local
                    // checkpoint, then the residual is recomputed from the
                    // restored iterate (one extra halo exchange of x).
                    let store = store.as_mut().expect("checkpoint store exists");
                    let mut scalars = Vec::new();
                    if store
                        .rollback(&mut x_full[own.clone()], d, &mut scalars)
                        .is_some()
                    {
                        *rollbacks += 1;
                    }
                    comm.exchange_halo(x_full)?;
                    op.spmv(a, x_full, g);
                    for (k, r) in own.clone().enumerate() {
                        g[k] = b[r] - g[k];
                    }
                    *rho_old = scalars.get(1).copied().unwrap_or(f64::INFINITY);
                    *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
                    *t += 1;
                    continue;
                }
                *rho_old = rho;
                *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
            }
            RecoveryPolicy::LossyRestart => {
                let lost_x = scrub_blank(registry, ids::X, pages, &mut x_full[own.clone()]);
                let mut sweep: Vec<(_, &mut [f64])> = vec![
                    (ids::G, &mut g[..]),
                    (ids::D, &mut d[..]),
                    (ids::Q, &mut q[..]),
                ];
                if preconditioned {
                    sweep.push((ids::Z, &mut z[..]));
                }
                let lost_total = lost_x.len() + blank_sweep(registry, pages, sweep);
                if comm.fault_flag(lost_total)? {
                    // Interpolate the lost iterate pages (block-Jacobi step,
                    // no residual term), fetching the remote stencil entries
                    // first, then restart globally. Lossy interpolation has
                    // no exactness claim, so flagged-invalid fetches are
                    // used as-is (they are part of what makes it lossy).
                    let lost_rows: Vec<usize> = lost_x
                        .iter()
                        .flat_map(|&p| global_rows(own.start, pages, p))
                        .collect();
                    let requests = remote_stencil_requests(a, &ctx.partition, ctx.rank, &lost_rows);
                    let (fetched, _) = comm.recovery_exchange(&requests, x_full, &lost_rows)?;
                    *cross_rank_values += fetched;
                    for &p in &lost_x {
                        let rows: Vec<usize> = global_rows(own.start, pages, p).collect();
                        match relations.lossy_iterate_rows(&rows, x_full) {
                            Some(values) => {
                                for (&r, v) in rows.iter().zip(&values) {
                                    x_full[r] = *v;
                                }
                                *pages_recovered += 1;
                            }
                            None => *pages_ignored += 1,
                        }
                        mark_page(registry, ids::X, p);
                    }
                    // Restart: recompute g from the interpolated iterate and
                    // discard the Krylov space.
                    comm.exchange_halo(x_full)?;
                    op.spmv(a, x_full, g);
                    for (k, r) in own.clone().enumerate() {
                        g[k] = b[r] - g[k];
                    }
                    d.iter_mut().for_each(|v| *v = 0.0);
                    *restarts += 1;
                    *rho_old = f64::INFINITY;
                    *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
                    *t += 1;
                    continue;
                }
                *rho_old = rho;
                *eps = comm.allreduce_sum(kernels::norm2_squared(g))?;
            }
        }
        *t += 1;
    }
    Ok(())
}

/// Packages the finished state as the rank's outcome.
pub(crate) fn finish_outcome(ctx: &RankCtx<'_>, comm: &RankComm, state: SolveState) -> RankOutcome {
    RankOutcome {
        rank: ctx.rank,
        x_own: state.x_full[ctx.own.clone()].to_vec(),
        iterations: state.iterations,
        history: state.history,
        pages_recovered: state.pages_recovered,
        pages_ignored: state.pages_ignored,
        pages_coupled: state.pages_coupled,
        cross_rank_values: state.cross_rank_values,
        rollbacks: state.rollbacks,
        restarts: state.restarts,
        allreduces: comm.collectives(),
    }
}

/// The generic per-rank resilient loop (see the module docs): the four
/// phases composed back into the original single-shot solve. Like the plain
/// rank loops it is backend-agnostic and surfaces any transport failure as
/// a typed [`CommError`].
pub(crate) fn rank_resilient_solve<S: RecoverableIteration>(
    ctx: RankCtx<'_>,
    relations: &S,
    comm: RankComm,
) -> Result<RankOutcome, CommError> {
    let mut state = alloc_state(&ctx);
    init_collectives(&ctx, &comm, &mut state)?;
    resilient_iterations(&ctx, relations, &comm, &mut state)?;
    Ok(finish_outcome(&ctx, &comm, state))
}
