//! Rank elasticity: resuming a distributed resilient solve after a worker
//! process dies and is respawned.
//!
//! The transport layer turns a dead peer into a typed
//! [`CommError::Disconnected`] (never a hang — see the ack/retransmit
//! sublayer in [`crate::process`]). This module is the policy layer above
//! that signal: survivors park at a **rejoin barrier**, the elastic
//! endpoint re-handshakes the respawned newcomer at a bumped link epoch,
//! every rank agrees on the resume iteration (the maximum any survivor
//! reached), and the solve state is repaired in lockstep before the
//! iteration phase re-enters.
//!
//! The repair treats the newcomer's pages exactly like the memory-fault
//! model treats lost pages at a scrub point, restricted to what survives a
//! process death (nothing — so only relations with a local reconstruction
//! that needs no prior state apply):
//!
//! * every policy recomputes the two restart invariants — ‖b‖ and the
//!   residual `g = b − A·x` — from the post-repair iterate, zeroes the
//!   search direction, and resets `ρ_old` to the ∞ sentinel (a Krylov
//!   restart, same as [`RecoveryPolicy::LossyRestart`] after a fault);
//! * [`RecoveryPolicy::Checkpoint`] survivors roll back to their last
//!   local checkpoint first, so the global iterate is the checkpointed one
//!   everywhere except the newcomer's rows;
//! * the newcomer interpolates its own rows with the lossy block-Jacobi
//!   relation (`lossy_iterate_rows`) from the neighbours' fetched stencil
//!   entries — under Checkpoint/FEIR/AFEIR this rebuilds a usable iterate
//!   page-by-page, counted in `pages_recovered`;
//! * [`RecoveryPolicy::Trivial`] honestly degrades: the newcomer's rows
//!   restart from zero and are counted in `pages_ignored`.
//!
//! Restarting the Krylov space costs iterations but keeps every policy
//! convergent; the overhead shows up in the
//! [`NetFaultCampaign`](crate::campaign::NetFaultCampaign) tables rather
//! than being hidden. Rank 0 is the result collector and cannot be
//! respawned; one failed rank at a time is supported (the paper's fault
//! model, Section 2).

use feir_recovery::{RecoverableIteration, RecoveryPolicy};

use crate::comm::{CommError, RankComm};
use crate::kernels;
use crate::rank_loop::{
    alloc_state, finish_outcome, global_rows, init_collectives, remote_stencil_requests,
    resilient_iterations, RankCtx, RankOutcome, SolveState,
};

/// How the elastic harness behaves for this process.
pub(crate) struct ElasticCfg {
    /// True when this worker is a respawned replacement (its link epoch is
    /// non-zero): it skips the opening collectives and goes straight to the
    /// rejoin barrier the survivors are parked at.
    pub newcomer: bool,
    /// Upper bound on rejoin rounds before a disconnect is propagated as
    /// fatal; guards against a crash-looping replacement.
    pub max_rejoins: usize,
}

/// The elastic wrapper around the resilient iteration phase: runs the solve,
/// and on a recoverable peer disconnect re-links the mesh, agrees on the
/// resume iteration at the rejoin barrier, repairs the state and re-enters.
pub(crate) fn rank_elastic_solve<S: RecoverableIteration>(
    ctx: &RankCtx<'_>,
    relations: &S,
    comm: RankComm,
    cfg: &ElasticCfg,
) -> Result<RankOutcome, CommError> {
    let mut state = alloc_state(ctx);
    if cfg.newcomer {
        // The survivors are already parked at the barrier waiting for this
        // process; `rejoin(None, ..)` connects the fresh mesh and joins them.
        let _probe = feir_trace::span(feir_trace::Phase::Rejoin);
        let t_resume = comm.rejoin(None, 0)?;
        rejoin_repair(ctx, relations, &comm, &mut state, t_resume, true)?;
    } else {
        init_collectives(ctx, &comm, &mut state)?;
    }
    let mut rejoins = 0usize;
    loop {
        match resilient_iterations(ctx, relations, &comm, &mut state) {
            Ok(()) => return Ok(finish_outcome(ctx, &comm, state)),
            Err(CommError::Disconnected { peer: Some(k), .. })
                if k != 0 && k != ctx.rank && rejoins < cfg.max_rejoins =>
            {
                rejoins += 1;
                let _probe = feir_trace::span(feir_trace::Phase::Rejoin);
                let t_resume = comm.rejoin(Some(k), state.t as u64)?;
                rejoin_repair(ctx, relations, &comm, &mut state, t_resume, false)?;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The lockstep post-rejoin repair. Every rank — survivors and newcomer —
/// runs the same sequence of collectives in the same order, so the repaired
/// mesh leaves this function with a globally consistent restart state.
fn rejoin_repair<S: RecoverableIteration>(
    ctx: &RankCtx<'_>,
    relations: &S,
    comm: &RankComm,
    state: &mut SolveState,
    t_resume: u64,
    newcomer: bool,
) -> Result<(), CommError> {
    let own = ctx.own.clone();

    // 1. ‖b‖ first: the cheapest collective doubles as a mesh liveness
    //    check right after the barrier, and the newcomer needs it anyway.
    state.norm_b = kernels::global_rhs_norm(comm, &ctx.b[own.clone()])?;

    // 2. Checkpoint survivors roll back to their last local checkpoint; the
    //    newcomer's store is empty, so `rollback` is a harmless no-op there.
    if let Some(store) = state.store.as_mut() {
        let mut scalars = Vec::new();
        if store
            .rollback(&mut state.x_full[own.clone()], &mut state.d, &mut scalars)
            .is_some()
        {
            state.rollbacks += 1;
        }
    }

    // 3. One recovery exchange, entered by every rank (the collective is
    //    all-to-all). The newcomer requests the remote stencil entries of
    //    all its rows for the interpolation below; survivors request
    //    nothing but still serve their side.
    let requests = if newcomer && ctx.policy != RecoveryPolicy::Trivial {
        let rows: Vec<usize> = own.clone().collect();
        remote_stencil_requests(ctx.a, &ctx.partition, ctx.rank, &rows)
    } else {
        Default::default()
    };
    let (fetched, _) = comm.recovery_exchange(&requests, &mut state.x_full, &[])?;
    state.cross_rank_values += fetched;

    // 4. The newcomer rebuilds its iterate rows page-by-page with the lossy
    //    interpolation (Trivial skips this and honestly restarts from zero).
    if newcomer {
        if ctx.policy == RecoveryPolicy::Trivial {
            state.pages_ignored += ctx.pages.num_blocks();
        } else {
            for p in 0..ctx.pages.num_blocks() {
                let rows: Vec<usize> = global_rows(own.start, &ctx.pages, p).collect();
                match relations.lossy_iterate_rows(&rows, &state.x_full) {
                    Some(values) => {
                        for (&r, v) in rows.iter().zip(&values) {
                            state.x_full[r] = *v;
                        }
                        state.pages_recovered += 1;
                    }
                    None => state.pages_ignored += 1,
                }
            }
        }
    }

    // 5–6. Propagate the repaired iterate and recompute the true residual.
    comm.exchange_halo(&mut state.x_full)?;
    ctx.a
        .spmv_rows(own.start, own.end, &state.x_full, &mut state.g);
    for (k, r) in own.clone().enumerate() {
        state.g[k] = ctx.b[r] - state.g[k];
    }

    // 7–9. Krylov restart at the agreed iteration.
    state.d.iter_mut().for_each(|v| *v = 0.0);
    state.rho_old = f64::INFINITY;
    state.eps = comm.allreduce_sum(kernels::norm2_squared(&state.g))?;
    state.t = t_resume as usize;
    state.restarts += 1;
    Ok(())
}
