//! Fault campaigns: solver × policy × rank-count × fault-rate sweeps over
//! the distributed resilient solvers, producing the per-policy overhead
//! tables of the paper's scaling study (Section 5 / Figure 5's measured
//! points). The solver axis ([`CampaignSolver`]) covers both engine
//! instantiations — plain CG and block-Jacobi PCG — in one sweep driver.
//!
//! For every solver × rank count the campaign first measures the fault-free
//! ideal distributed solve as the baseline, then runs every `(policy,
//! frequency)` cell with one live injector stream per rank (frequency is
//! machine-wide,
//! in expected DUEs per fault-free solve, and is split evenly over the
//! ranks). Each cell records wall time, iteration count, the overhead
//! against the baseline, and the per-rank fault attribution from
//! [`DistributedFaultReport`] — so a report can say not just *how many*
//! errors occurred but *which ranks* absorbed and recovered them.

use std::path::Path;
use std::time::{Duration, Instant};

use feir_pagemem::InjectionPlan;
use feir_recovery::report::{DistributedFaultReport, RankFaultStats};
use feir_recovery::RecoveryPolicy;
use feir_sparse::CsrMatrix;
use feir_wire::chaos::FaultRates;

use crate::process::{
    spawn_workers_with, ChaosConfig, ProcessError, ProcessSpec, Transport, WorkerOptions,
    WorkerSolver,
};
use crate::resilient::{DistResilienceConfig, DistResilientSolver, InjectionDriver};

/// The solver axis of a campaign: which engine instantiation runs the
/// sweep's cells. Every variant measures its overhead against its *own*
/// ideal distributed baseline, so the overhead tables are directly
/// comparable across solvers without a second sweep driver. The merged
/// variants are the single-reduction (pipelined Chronopoulos–Gear) hot
/// path; sweeping them against the classic loops shows what the collapsed
/// collective costs — or saves — under each recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignSolver {
    /// Plain distributed CG.
    Cg,
    /// Block-Jacobi preconditioned distributed CG (rank-local page blocks).
    Pcg,
    /// Merged-reduction CG: one vector allreduce per iteration.
    CgMerged,
    /// Merged-reduction block-Jacobi PCG: one vector allreduce per
    /// iteration (versus classic PCG's three).
    PcgMerged,
}

impl CampaignSolver {
    /// Short name used in the overhead tables.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignSolver::Cg => "cg",
            CampaignSolver::Pcg => "pcg",
            CampaignSolver::CgMerged => "cg_m",
            CampaignSolver::PcgMerged => "pcg_m",
        }
    }

    fn build<'a>(
        &self,
        a: &'a CsrMatrix,
        b: &'a [f64],
        ranks: usize,
        config: DistResilienceConfig,
    ) -> DistResilientSolver<'a> {
        match self {
            CampaignSolver::Cg => DistResilientSolver::cg(a, b, ranks, config),
            CampaignSolver::Pcg => DistResilientSolver::pcg(a, b, ranks, config),
            CampaignSolver::CgMerged => DistResilientSolver::cg_merged(a, b, ranks, config),
            CampaignSolver::PcgMerged => DistResilientSolver::pcg_merged(a, b, ranks, config),
        }
    }
}

/// A solver × policy × rank-count × fault-rate sweep.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    /// Solver variants to sweep (CG, PCG or both).
    pub solvers: Vec<CampaignSolver>,
    /// Policies to compare.
    pub policies: Vec<RecoveryPolicy>,
    /// Simulated rank counts to run at.
    pub rank_counts: Vec<usize>,
    /// Machine-wide error frequencies, in expected DUEs per fault-free solve
    /// (the paper's normalized error frequency). `0.0` measures the pure
    /// protection overhead.
    pub error_frequencies: Vec<f64>,
    /// Page size in doubles of the per-rank fault domains.
    pub page_doubles: usize,
    /// Convergence tolerance.
    pub tolerance: f64,
    /// Iteration cap per solve.
    pub max_iterations: usize,
    /// Base RNG seed; every cell derives an independent deterministic seed.
    pub seed: u64,
}

impl Default for FaultCampaign {
    fn default() -> Self {
        Self {
            solvers: vec![CampaignSolver::Cg],
            policies: vec![
                RecoveryPolicy::Afeir,
                RecoveryPolicy::Feir,
                RecoveryPolicy::LossyRestart,
                RecoveryPolicy::Checkpoint { interval: 50 },
                RecoveryPolicy::Trivial,
                RecoveryPolicy::TrivialReplace,
            ],
            rank_counts: vec![1, 2, 4],
            error_frequencies: vec![0.0, 2.0],
            page_doubles: 64,
            tolerance: 1e-8,
            max_iterations: 50_000,
            seed: 0xC0FF_EE00,
        }
    }
}

/// Fault-free ideal distributed baseline at one solver × rank count.
#[derive(Debug, Clone, Copy)]
pub struct CampaignBaseline {
    /// Solver variant of this baseline.
    pub solver: CampaignSolver,
    /// Rank count.
    pub ranks: usize,
    /// Wall time of the ideal (unprotected) distributed solve.
    pub elapsed: Duration,
    /// Iterations of the ideal solve.
    pub iterations: usize,
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Solver variant of this cell.
    pub solver: CampaignSolver,
    /// Policy of this cell.
    pub policy: RecoveryPolicy,
    /// Rank count of this cell.
    pub ranks: usize,
    /// Machine-wide error frequency of this cell.
    pub frequency: f64,
    /// Iterations performed (including re-done work).
    pub iterations: usize,
    /// Wall time of the solve.
    pub elapsed: Duration,
    /// True if the explicit residual met the tolerance.
    pub converged: bool,
    /// Wall-time overhead versus the same-rank-count ideal baseline, in
    /// percent (Figure 4/5's y-axis).
    pub overhead_percent: f64,
    /// Iteration overhead versus the baseline, in percent (timing-noise-free
    /// work measure, useful on loaded CI machines).
    pub iteration_overhead_percent: f64,
    /// Per-rank fault attribution.
    pub faults: DistributedFaultReport,
    /// Pages reconstructed across all ranks.
    pub pages_recovered: usize,
    /// Values fetched across rank boundaries during recovery.
    pub cross_rank_values: usize,
    /// Rollbacks (checkpoint policy).
    pub rollbacks: usize,
    /// Restarts (Lossy Restart policy).
    pub restarts: usize,
    /// Per-phase trace summary of the solve, present when `FEIR_TRACE=spans`
    /// was active while the cell ran.
    pub trace: Option<feir_trace::TraceSummary>,
}

impl CampaignCell {
    /// Total time the cell spent inside the recovery phases (plan +
    /// reconstruct + install), from the trace; `None` without tracing.
    pub fn recovery_ns(&self) -> Option<u64> {
        use feir_trace::Phase;
        self.trace.as_ref().map(|t| {
            t.phase_total_ns(Phase::RecoveryPlan)
                + t.phase_total_ns(Phase::RecoveryReconstruct)
                + t.phase_total_ns(Phase::RecoveryInstall)
        })
    }
}

impl CampaignCell {
    /// Number of ranks that absorbed at least one effective DUE.
    pub fn faulty_ranks(&self) -> usize {
        self.faults.faulty_ranks()
    }

    /// Per-rank statistics, in rank order.
    pub fn per_rank(&self) -> &[RankFaultStats] {
        &self.faults.per_rank
    }
}

/// All measurements of one campaign run.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Ideal baseline per rank count.
    pub baselines: Vec<CampaignBaseline>,
    /// Every measured cell, in sweep order (rank count, then policy, then
    /// frequency).
    pub cells: Vec<CampaignCell>,
}

impl CampaignReport {
    /// The baseline for a solver × rank count, if it was measured.
    pub fn baseline(&self, solver: CampaignSolver, ranks: usize) -> Option<&CampaignBaseline> {
        self.baselines
            .iter()
            .find(|b| b.solver == solver && b.ranks == ranks)
    }

    /// Renders the fixed-width overhead table (one row per cell).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "solver  ranks  policy   freq  conv  iters    time_ms  overhd%  it_ovh%  inj/disc/rec  hit_ranks  xrank  rec_ms\n",
        );
        for cell in &self.cells {
            let rec_ms = match cell.recovery_ns() {
                Some(ns) => format!("{:>6.2}", ns as f64 / 1e6),
                None => format!("{:>6}", "-"),
            };
            out.push_str(&format!(
                "{:<6}  {:>5}  {:<7}  {:>4.1}  {:>4}  {:>5}  {:>9.2}  {:>7.1}  {:>7.1}  {:>4}/{:>4}/{:>3}  {:>9}  {:>5}  {}\n",
                cell.solver.name(),
                cell.ranks,
                cell.policy.name(),
                cell.frequency,
                if cell.converged { "yes" } else { "NO" },
                cell.iterations,
                cell.elapsed.as_secs_f64() * 1e3,
                cell.overhead_percent,
                cell.iteration_overhead_percent,
                cell.faults.total_injected(),
                cell.faults.total_discovered(),
                cell.faults.total_recovered(),
                cell.faulty_ranks(),
                cell.cross_rank_values,
                rec_ms,
            ));
        }
        out
    }
}

impl FaultCampaign {
    /// Runs the sweep on `A x = b`.
    pub fn run(&self, a: &CsrMatrix, b: &[f64]) -> CampaignReport {
        let mut report = CampaignReport::default();
        for (si, &solver_kind) in self.solvers.iter().enumerate() {
            for (ri, &ranks) in self.rank_counts.iter().enumerate() {
                // Fault-free ideal distributed baseline at this solver ×
                // rank count.
                let ideal = solver_kind
                    .build(a, b, ranks, self.cell_config(RecoveryPolicy::Ideal))
                    .solve();
                let baseline = CampaignBaseline {
                    solver: solver_kind,
                    ranks: ideal.ranks,
                    elapsed: ideal.elapsed,
                    iterations: ideal.iterations,
                };
                report.baselines.push(baseline);

                for (pi, &policy) in self.policies.iter().enumerate() {
                    for (fi, &frequency) in self.error_frequencies.iter().enumerate() {
                        let solver = solver_kind.build(a, b, ranks, self.cell_config(policy));
                        let driver = (frequency > 0.0).then(|| {
                            // The frequency is machine-wide: split the error
                            // rate evenly over the per-rank streams.
                            let per_rank = frequency / solver.ranks() as f64;
                            let seed = self
                                .seed
                                .wrapping_add(100_000_000 * si as u64)
                                .wrapping_add(1_000_000 * ri as u64)
                                .wrapping_add(10_000 * pi as u64)
                                .wrapping_add(100 * fi as u64);
                            let plan = InjectionPlan::normalized(
                                per_rank,
                                baseline.elapsed.max(Duration::from_millis(1)),
                                seed,
                            );
                            InjectionDriver::start_uniform(solver.domains(), &plan)
                        });
                        let mut solve = solver.solve();
                        if let Some(driver) = driver {
                            solve.absorb_injection_reports(&driver.stop());
                        }
                        let overhead = |value: f64, base: f64| {
                            if base > 0.0 {
                                (value / base - 1.0) * 100.0
                            } else {
                                0.0
                            }
                        };
                        report.cells.push(CampaignCell {
                            solver: solver_kind,
                            policy,
                            ranks: solve.ranks,
                            frequency,
                            iterations: solve.iterations,
                            elapsed: solve.elapsed,
                            converged: solve.converged,
                            overhead_percent: overhead(
                                solve.elapsed.as_secs_f64(),
                                baseline.elapsed.as_secs_f64(),
                            ),
                            iteration_overhead_percent: overhead(
                                solve.iterations as f64,
                                baseline.iterations as f64,
                            ),
                            faults: solve.faults,
                            pages_recovered: solve.pages_recovered,
                            cross_rank_values: solve.cross_rank_values,
                            rollbacks: solve.rollbacks,
                            restarts: solve.restarts,
                            trace: solve.trace.as_ref().map(feir_trace::SolveTrace::summary),
                        });
                    }
                }
            }
        }
        report
    }

    fn cell_config(&self, policy: RecoveryPolicy) -> DistResilienceConfig {
        DistResilienceConfig::for_policy(policy)
            .with_page_doubles(self.page_doubles)
            .with_tolerance(self.tolerance)
            .with_max_iterations(self.max_iterations)
    }
}

/// Process-failure schedule of one [`NetFaultCampaign`] cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillSchedule {
    /// No process failure: the cell measures the pure frame-fault overhead.
    None,
    /// Kill the worker of `rank` after `after` of wall clock, then respawn
    /// it immediately; the elastic mesh rejoins it mid-solve. Rank 0 hosts
    /// the collectives and cannot be scheduled.
    KillRespawn {
        /// Victim rank (`0 < rank < ranks`).
        rank: usize,
        /// Wall-clock delay before the kill.
        after: Duration,
    },
}

impl KillSchedule {
    fn label(&self) -> String {
        match self {
            KillSchedule::None => "-".into(),
            KillSchedule::KillRespawn { rank, after } => {
                format!("r{rank}@{}ms", after.as_millis())
            }
        }
    }
}

/// The transport-fault counterpart of [`FaultCampaign`]: a policy ×
/// frame-fault-rate × kill/respawn-schedule sweep over the **real
/// multi-process mesh**. Where [`FaultCampaign`] injects memory DUEs into
/// simulated ranks, this campaign subjects worker processes to a hostile
/// network — chaos-injected frames absorbed by the ack/retransmit sublayer
/// — and to whole-process loss healed by the elastic rejoin protocol, and
/// reports the overhead of each against the same clean-mesh ideal baseline.
///
/// Cells time the complete spawn → solve → join round trip (process
/// start-up included — it is part of what a respawn costs), and every cell
/// including the baseline runs under the same [`NetFaultCampaign::spin`]
/// throttle so kill schedules land mid-solve without skewing the
/// comparison.
#[derive(Debug, Clone)]
pub struct NetFaultCampaign {
    /// Rank loop the workers run (classic `cg`/`pcg` only — the resilient
    /// loop does not cover the merged variants).
    pub solver: WorkerSolver,
    /// Policies to compare.
    pub policies: Vec<RecoveryPolicy>,
    /// Aggregate frame-fault rates to sweep; each is split over the fault
    /// kinds (40% drop, 20% duplicate, 20% delay, 10% corrupt, 10%
    /// truncate) with retransmissions travelling clean. `0.0` measures the
    /// pure reliability-layer overhead.
    pub frame_fault_rates: Vec<f64>,
    /// Kill/respawn schedules to sweep. Schedules other than
    /// [`KillSchedule::None`] run the workers elastic.
    pub schedules: Vec<KillSchedule>,
    /// Poisson grid side (`grid²` unknowns).
    pub grid: usize,
    /// Seed of the manufactured right-hand side.
    pub rhs_seed: u64,
    /// Worker process count.
    pub ranks: usize,
    /// Convergence tolerance.
    pub tolerance: f64,
    /// Iteration cap per solve.
    pub max_iterations: usize,
    /// Page size in doubles of the per-rank fault domains.
    pub page_doubles: usize,
    /// Base chaos seed; every cell derives an independent deterministic
    /// per-link plan from it.
    pub seed: u64,
    /// Per-iteration worker throttle applied to *every* cell and the
    /// baseline alike; dilates the solve so a kill schedule reliably lands
    /// mid-iteration.
    pub spin: Duration,
}

impl Default for NetFaultCampaign {
    fn default() -> Self {
        Self {
            solver: WorkerSolver::Cg,
            policies: vec![
                RecoveryPolicy::Afeir,
                RecoveryPolicy::Feir,
                RecoveryPolicy::Checkpoint { interval: 25 },
                RecoveryPolicy::Trivial,
                RecoveryPolicy::TrivialReplace,
            ],
            frame_fault_rates: vec![0.0, 0.02],
            schedules: vec![KillSchedule::None],
            grid: 24,
            rhs_seed: 9,
            ranks: 2,
            tolerance: 1e-8,
            max_iterations: 50_000,
            page_doubles: 64,
            seed: 0x00D1_CE00,
            spin: Duration::ZERO,
        }
    }
}

/// Clean-mesh ideal baseline of a net campaign.
#[derive(Debug, Clone, Copy)]
pub struct NetCampaignBaseline {
    /// Spawn → join wall time of the clean ideal solve.
    pub elapsed: Duration,
    /// Iterations of the clean ideal solve.
    pub iterations: usize,
}

/// One measured cell of a net campaign.
#[derive(Debug, Clone)]
pub struct NetCampaignCell {
    /// Policy of this cell.
    pub policy: RecoveryPolicy,
    /// Aggregate frame-fault rate of this cell.
    pub fault_rate: f64,
    /// Kill/respawn schedule of this cell.
    pub schedule: KillSchedule,
    /// True if the assembled solution met the tolerance.
    pub converged: bool,
    /// Explicit relative residual of the assembled solution.
    pub relative_residual: f64,
    /// Iterations performed (restart re-work included).
    pub iterations: usize,
    /// Spawn → join wall time.
    pub elapsed: Duration,
    /// Wall-time overhead versus the clean ideal baseline, in percent.
    pub overhead_percent: f64,
    /// Iteration overhead versus the baseline, in percent — the
    /// timing-noise-free cost of the Krylov restart a rejoin forces.
    pub iteration_overhead_percent: f64,
    /// Reliability-layer retransmissions summed over every link of the mesh.
    pub retransmits: u64,
    /// Chaos-injected frame faults summed over every link of the mesh.
    pub frame_faults: u64,
    /// Per-phase trace summary of the solve, present when the workers ran
    /// with `FEIR_TRACE=spans` in their environment.
    pub trace: Option<feir_trace::TraceSummary>,
}

/// All measurements of one [`NetFaultCampaign`] run.
#[derive(Debug, Clone)]
pub struct NetCampaignReport {
    /// The clean-mesh ideal baseline.
    pub baseline: NetCampaignBaseline,
    /// Every measured cell, in sweep order (policy, then rate, then
    /// schedule).
    pub cells: Vec<NetCampaignCell>,
}

impl NetCampaignReport {
    /// Renders the fixed-width overhead table (one row per cell).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "policy   rate   kill      conv  iters    time_ms  overhd%  it_ovh%  retrans  faults\n",
        );
        for cell in &self.cells {
            out.push_str(&format!(
                "{:<7}  {:>5.3}  {:<8}  {:>4}  {:>5}  {:>9.2}  {:>7.1}  {:>7.1}  {:>7}  {:>6}\n",
                cell.policy.name(),
                cell.fault_rate,
                cell.schedule.label(),
                if cell.converged { "yes" } else { "NO" },
                cell.iterations,
                cell.elapsed.as_secs_f64() * 1e3,
                cell.overhead_percent,
                cell.iteration_overhead_percent,
                cell.retransmits,
                cell.frame_faults,
            ));
        }
        out
    }
}

impl NetFaultCampaign {
    /// Runs the sweep. `worker` is the rank-worker executable (any binary
    /// whose main calls [`crate::process::worker_main`]). Every cell runs
    /// over Unix domain sockets in its own fresh rendezvous directory.
    pub fn run(&self, worker: &Path) -> Result<NetCampaignReport, ProcessError> {
        for schedule in &self.schedules {
            if let KillSchedule::KillRespawn { rank, .. } = schedule {
                if *rank == 0 || *rank >= self.ranks {
                    return Err(ProcessError::Spawn(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!(
                            "kill schedule targets rank {rank} of {} (rank 0 hosts the \
                             collectives and cannot be respawned)",
                            self.ranks
                        ),
                    )));
                }
            }
        }
        let spec = ProcessSpec {
            solver: self.solver,
            grid: self.grid,
            rhs_seed: self.rhs_seed,
            ranks: self.ranks,
            tolerance: self.tolerance,
            max_iterations: self.max_iterations,
            page_doubles: self.page_doubles,
        };
        let (baseline_solve, baseline_elapsed) = self.run_cell(
            worker,
            &spec,
            RecoveryPolicy::Ideal,
            0.0,
            KillSchedule::None,
            0,
        )?;
        let baseline = NetCampaignBaseline {
            elapsed: baseline_elapsed,
            iterations: baseline_solve.iterations,
        };
        let overhead = |value: f64, base: f64| {
            if base > 0.0 {
                (value / base - 1.0) * 100.0
            } else {
                0.0
            }
        };
        let mut cells = Vec::new();
        for (pi, &policy) in self.policies.iter().enumerate() {
            for (fi, &rate) in self.frame_fault_rates.iter().enumerate() {
                for (si, &schedule) in self.schedules.iter().enumerate() {
                    let cell_seed = self
                        .seed
                        .wrapping_add(1_000_000 * pi as u64)
                        .wrapping_add(10_000 * fi as u64)
                        .wrapping_add(100 * si as u64);
                    let (solve, elapsed) =
                        self.run_cell(worker, &spec, policy, rate, schedule, cell_seed)?;
                    cells.push(NetCampaignCell {
                        policy,
                        fault_rate: rate,
                        schedule,
                        converged: solve.converged,
                        relative_residual: solve.relative_residual,
                        iterations: solve.iterations,
                        elapsed,
                        overhead_percent: overhead(
                            elapsed.as_secs_f64(),
                            baseline.elapsed.as_secs_f64(),
                        ),
                        iteration_overhead_percent: overhead(
                            solve.iterations as f64,
                            baseline.iterations as f64,
                        ),
                        retransmits: solve.net.retransmits,
                        frame_faults: solve.net.injected_faults,
                        trace: solve.trace.as_ref().map(feir_trace::SolveTrace::summary),
                    });
                }
            }
        }
        Ok(NetCampaignReport { baseline, cells })
    }

    fn run_cell(
        &self,
        worker: &Path,
        spec: &ProcessSpec,
        policy: RecoveryPolicy,
        rate: f64,
        schedule: KillSchedule,
        cell_seed: u64,
    ) -> Result<(crate::cg::DistSolveResult, Duration), ProcessError> {
        let dir = crate::process::fresh_run_dir().map_err(ProcessError::Spawn)?;
        let options = WorkerOptions {
            policy: Some(policy),
            elastic: !matches!(schedule, KillSchedule::None),
            chaos: (rate > 0.0).then_some(ChaosConfig {
                seed: cell_seed,
                rates: FaultRates {
                    drop: 0.4 * rate,
                    duplicate: 0.2 * rate,
                    delay: 0.2 * rate,
                    corrupt: 0.1 * rate,
                    truncate: 0.1 * rate,
                },
                fault_retransmits: false,
            }),
            spin: (!self.spin.is_zero()).then_some(self.spin),
            ..WorkerOptions::default()
        };
        let started = Instant::now();
        let mut handles = spawn_workers_with(worker, spec, &Transport::Uds { dir }, &options)?;
        if let KillSchedule::KillRespawn { rank, after } = schedule {
            std::thread::sleep(after);
            handles.kill_rank(rank).map_err(ProcessError::Spawn)?;
            // Give the survivors a moment to notice and park at the barrier.
            std::thread::sleep(Duration::from_millis(30));
            handles.respawn_rank(rank).map_err(ProcessError::Spawn)?;
        }
        let solve = handles.join()?;
        Ok((solve, started.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feir_sparse::generators::{manufactured_rhs, poisson_2d};

    #[test]
    fn campaign_sweeps_and_attributes_faults_to_ranks() {
        let a = poisson_2d(12);
        let (_, b) = manufactured_rhs(&a, 7);
        let campaign = FaultCampaign {
            solvers: vec![CampaignSolver::Cg],
            policies: vec![RecoveryPolicy::Afeir, RecoveryPolicy::Feir],
            rank_counts: vec![1, 3],
            error_frequencies: vec![0.0, 2.0],
            page_doubles: 16,
            tolerance: 1e-8,
            max_iterations: 20_000,
            seed: 42,
        };
        let report = campaign.run(&a, &b);
        assert_eq!(report.baselines.len(), 2);
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        assert!(report.baseline(CampaignSolver::Cg, 3).is_some());
        for cell in &report.cells {
            assert!(cell.converged, "{:?} did not converge", cell.policy);
            assert!(cell.overhead_percent.is_finite());
            assert_eq!(cell.per_rank().len(), cell.ranks);
            // Totals must be consistent with the per-rank breakdown.
            let sum: usize = cell.per_rank().iter().map(|s| s.injected).sum();
            assert_eq!(sum, cell.faults.total_injected());
            if cell.frequency == 0.0 {
                assert_eq!(cell.faults.total_injected(), 0);
                assert_eq!(cell.faulty_ranks(), 0);
            }
        }
        let table = campaign.run(&a, &b).table();
        assert!(table.contains("AFEIR") && table.contains("FEIR"));
        assert!(table.lines().count() >= 9);
    }

    #[test]
    fn solver_axis_covers_the_merged_variants() {
        let a = poisson_2d(10);
        let (_, b) = manufactured_rhs(&a, 5);
        let campaign = FaultCampaign {
            solvers: vec![
                CampaignSolver::Cg,
                CampaignSolver::CgMerged,
                CampaignSolver::PcgMerged,
            ],
            policies: vec![RecoveryPolicy::Afeir, RecoveryPolicy::Feir],
            rank_counts: vec![2],
            error_frequencies: vec![0.0, 1.5],
            page_doubles: 10,
            tolerance: 1e-8,
            max_iterations: 20_000,
            seed: 11,
        };
        let report = campaign.run(&a, &b);
        assert_eq!(report.baselines.len(), 3);
        assert_eq!(report.cells.len(), 3 * 2 * 2);
        let classic = report.baseline(CampaignSolver::Cg, 2).unwrap();
        let merged = report.baseline(CampaignSolver::CgMerged, 2).unwrap();
        // Same Krylov space: the merged baseline's iteration count stays
        // within ±10% of classic CG's.
        let allowed = (classic.iterations as f64 * 0.10).ceil() as i64 + 1;
        assert!((merged.iterations as i64 - classic.iterations as i64).abs() <= allowed);
        for cell in &report.cells {
            assert!(cell.converged, "{:?} {:?}", cell.solver, cell.policy);
            if cell.frequency == 0.0 {
                assert_eq!(cell.iteration_overhead_percent, 0.0);
            }
        }
        let table = report.table();
        assert!(table.contains("cg_m") && table.contains("pcg_m"));
    }

    #[test]
    fn solver_axis_covers_cg_and_pcg_in_one_sweep() {
        let a = poisson_2d(10);
        let (_, b) = manufactured_rhs(&a, 3);
        let campaign = FaultCampaign {
            solvers: vec![CampaignSolver::Cg, CampaignSolver::Pcg],
            policies: vec![RecoveryPolicy::Feir],
            rank_counts: vec![2],
            error_frequencies: vec![0.0, 1.5],
            page_doubles: 10,
            tolerance: 1e-8,
            max_iterations: 20_000,
            seed: 7,
        };
        let report = campaign.run(&a, &b);
        // One baseline and one cell row per solver × frequency.
        assert_eq!(report.baselines.len(), 2);
        assert_eq!(report.cells.len(), 2 * 2);
        let cg_base = report.baseline(CampaignSolver::Cg, 2).unwrap();
        let pcg_base = report.baseline(CampaignSolver::Pcg, 2).unwrap();
        // Block-Jacobi preconditioning must pay off in iterations.
        assert!(pcg_base.iterations < cg_base.iterations);
        for cell in &report.cells {
            assert!(cell.converged, "{:?} {:?}", cell.solver, cell.policy);
            // Each cell's iteration overhead is against its own solver's
            // baseline, so fault-free cells sit at exactly zero.
            if cell.frequency == 0.0 {
                assert_eq!(cell.iteration_overhead_percent, 0.0);
            }
        }
        let table = report.table();
        assert!(table.contains("pcg") && table.contains("cg"));
    }
}
