//! The calibrated analytic weak/strong-scaling model behind Figure 5.
//!
//! The paper measures the resilient MPI+OmpSs CG on a 512³ 27-point Poisson
//! problem from 64 to 1024 cores with one or two DUEs per run. This module
//! reproduces the *shape* of those curves from four effects:
//!
//! 1. ideal strong scaling degraded by a communication/imbalance drag
//!    calibrated so the fault-free parallel efficiency at 1024 cores matches
//!    the paper's 80.17%;
//! 2. a per-iteration protection overhead per policy (the Table-2 overheads:
//!    AFEIR's overlapped recovery tasks cost less than FEIR's critical-path
//!    ones);
//! 3. a per-error recovery cost, expressed as a fraction of the run;
//! 4. an error-cost amplification with core count — a stall holds more cores
//!    idle at scale. AFEIR's exponent is the smallest because its recoveries
//!    overlap the reductions instead of stalling them.
//!
//! Speedups are reported relative to the fault-free ideal CG on
//! [`ScalingModel::baseline_cores`] cores, as in the paper's Figure 5.

use feir_recovery::RecoveryPolicy;

/// One point of a Figure-5 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Core count of this point.
    pub cores: usize,
    /// Speedup versus the fault-free ideal run on the baseline core count.
    pub speedup: f64,
}

/// Calibrated analytic model of the Figure-5 scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingModel {
    /// Core count the speedups are normalised to (the paper's 64).
    pub baseline_cores: usize,
    /// Linear efficiency drag per baseline multiple; calibrated so the ideal
    /// parallel efficiency at 1024 cores is the paper's 80.17%.
    pub efficiency_drag: f64,
    /// Fault-free per-iteration overhead of AFEIR, as a fraction of the
    /// iteration (recovery planning overlapped with the reductions).
    pub afeir_iteration_overhead: f64,
    /// Fault-free per-iteration overhead of FEIR (recovery checks in the
    /// critical path) — strictly larger than AFEIR's.
    pub feir_iteration_overhead: f64,
    /// Fault-free per-iteration overhead of the Lossy Restart bookkeeping.
    pub lossy_iteration_overhead: f64,
    /// Fault-free per-iteration overhead of periodic checkpointing.
    pub checkpoint_iteration_overhead: f64,
    /// Fault-free per-iteration overhead of trivial forward recovery.
    pub trivial_iteration_overhead: f64,
    /// Per-error cost at the baseline core count, as a fraction of the run.
    pub afeir_error_cost: f64,
    /// FEIR per-error cost (critical-path reconstruction).
    pub feir_error_cost: f64,
    /// Lossy Restart per-error cost (interpolation + discarded Krylov space).
    pub lossy_error_cost: f64,
    /// Checkpoint per-error cost (rollback plus re-executed iterations).
    pub checkpoint_error_cost: f64,
    /// Trivial per-error cost (extra iterations after accepting blank pages).
    pub trivial_error_cost: f64,
    /// Exponent of the error-cost growth with `cores / baseline_cores`.
    pub afeir_error_scale_exponent: f64,
    /// FEIR error-cost exponent (stalls serialise more work at scale).
    pub feir_error_scale_exponent: f64,
    /// Lossy Restart error-cost exponent.
    pub lossy_error_scale_exponent: f64,
    /// Checkpoint error-cost exponent (global rollback).
    pub checkpoint_error_scale_exponent: f64,
    /// Trivial error-cost exponent.
    pub trivial_error_scale_exponent: f64,
}

impl Default for ScalingModel {
    fn default() -> Self {
        Self {
            baseline_cores: 64,
            // eff(1024) = 1 / (1 + drag·15) = 0.8017.
            efficiency_drag: 0.016_489,
            afeir_iteration_overhead: 0.004,
            feir_iteration_overhead: 0.018,
            lossy_iteration_overhead: 0.006,
            checkpoint_iteration_overhead: 0.035,
            trivial_iteration_overhead: 0.003,
            afeir_error_cost: 0.12,
            feir_error_cost: 0.15,
            lossy_error_cost: 0.20,
            checkpoint_error_cost: 0.45,
            trivial_error_cost: 0.35,
            afeir_error_scale_exponent: 0.25,
            feir_error_scale_exponent: 0.55,
            lossy_error_scale_exponent: 0.35,
            checkpoint_error_scale_exponent: 0.60,
            trivial_error_scale_exponent: 0.50,
        }
    }
}

impl ScalingModel {
    /// The paper's Figure-5 core counts.
    pub const CORE_COUNTS: [usize; 5] = [64, 128, 256, 512, 1024];

    /// Fault-free parallel efficiency at `cores` relative to the baseline
    /// (1.0 at [`Self::baseline_cores`], 0.8017 at 1024 with defaults).
    pub fn ideal_efficiency(&self, cores: usize) -> f64 {
        let u = cores as f64 / self.baseline_cores as f64;
        1.0 / (1.0 + self.efficiency_drag * (u - 1.0).max(0.0))
    }

    /// Fault-free ideal speedup versus the baseline core count.
    pub fn ideal_speedup(&self, cores: usize) -> f64 {
        (cores as f64 / self.baseline_cores as f64) * self.ideal_efficiency(cores)
    }

    /// Fault-free per-iteration overhead fraction of `policy`.
    pub fn iteration_overhead(&self, policy: RecoveryPolicy) -> f64 {
        match policy {
            RecoveryPolicy::Ideal => 0.0,
            RecoveryPolicy::Afeir => self.afeir_iteration_overhead,
            RecoveryPolicy::Feir => self.feir_iteration_overhead,
            RecoveryPolicy::LossyRestart => self.lossy_iteration_overhead,
            RecoveryPolicy::Checkpoint { .. } => self.checkpoint_iteration_overhead,
            RecoveryPolicy::Trivial => self.trivial_iteration_overhead,
            // Same fault-free cost as Trivial: the rebuild only runs on an
            // actual loss.
            RecoveryPolicy::TrivialReplace => self.trivial_iteration_overhead,
        }
    }

    /// Per-error cost fraction of `policy` at the baseline core count.
    pub fn error_cost(&self, policy: RecoveryPolicy) -> f64 {
        match policy {
            RecoveryPolicy::Ideal => 0.0,
            RecoveryPolicy::Afeir => self.afeir_error_cost,
            RecoveryPolicy::Feir => self.feir_error_cost,
            RecoveryPolicy::LossyRestart => self.lossy_error_cost,
            RecoveryPolicy::Checkpoint { .. } => self.checkpoint_error_cost,
            RecoveryPolicy::Trivial => self.trivial_error_cost,
            // Blank-accept loses more information than Lossy's interpolation
            // but the rebuild restores convergence, unlike plain Trivial.
            RecoveryPolicy::TrivialReplace => {
                0.5 * (self.lossy_error_cost + self.trivial_error_cost)
            }
        }
    }

    /// Error-cost amplification exponent of `policy`.
    pub fn error_scale_exponent(&self, policy: RecoveryPolicy) -> f64 {
        match policy {
            RecoveryPolicy::Ideal => 0.0,
            RecoveryPolicy::Afeir => self.afeir_error_scale_exponent,
            RecoveryPolicy::Feir => self.feir_error_scale_exponent,
            RecoveryPolicy::LossyRestart => self.lossy_error_scale_exponent,
            RecoveryPolicy::Checkpoint { .. } => self.checkpoint_error_scale_exponent,
            RecoveryPolicy::Trivial => self.trivial_error_scale_exponent,
            // Restart-like global rebuild: scales like Lossy Restart.
            RecoveryPolicy::TrivialReplace => self.lossy_error_scale_exponent,
        }
    }

    /// Modelled run time of `policy` on `cores` cores with `errors` DUEs per
    /// run, normalised so the fault-free ideal run on the baseline is 1.0.
    pub fn run_time(&self, policy: RecoveryPolicy, cores: usize, errors: usize) -> f64 {
        let t_ideal = 1.0 / self.ideal_speedup(cores);
        let amplification =
            (cores as f64 / self.baseline_cores as f64).powf(self.error_scale_exponent(policy));
        t_ideal
            * (1.0
                + self.iteration_overhead(policy)
                + errors as f64 * self.error_cost(policy) * amplification)
    }

    /// Figure-5 speedup of `policy` on `cores` cores with `errors` DUEs per
    /// run, versus the fault-free ideal run on the baseline core count.
    pub fn speedup(&self, policy: RecoveryPolicy, cores: usize, errors: usize) -> f64 {
        1.0 / self.run_time(policy, cores, errors)
    }

    /// The full Figure-5 sweep for `errors` DUEs per run: one speedup curve
    /// over [`Self::CORE_COUNTS`] for each compared policy, in the paper's
    /// plotting order.
    pub fn figure5_series(&self, errors: usize) -> Vec<(RecoveryPolicy, Vec<ScalingPoint>)> {
        RecoveryPolicy::COMPARED
            .iter()
            .map(|&policy| {
                let points = Self::CORE_COUNTS
                    .iter()
                    .map(|&cores| ScalingPoint {
                        cores,
                        speedup: self.speedup(policy, cores, errors),
                    })
                    .collect();
                (policy, points)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_calibrated_to_the_paper() {
        let model = ScalingModel::default();
        assert!((model.ideal_efficiency(64) - 1.0).abs() < 1e-12);
        let eff_1024 = model.ideal_efficiency(1024);
        assert!((eff_1024 - 0.8017).abs() < 1e-3, "eff(1024) = {eff_1024}");
    }

    #[test]
    fn afeir_overhead_is_below_feir() {
        let model = ScalingModel::default();
        assert!(model.afeir_iteration_overhead < model.feir_iteration_overhead);
        assert!(
            model.speedup(RecoveryPolicy::Afeir, 1024, 1)
                > model.speedup(RecoveryPolicy::Feir, 1024, 1)
        );
    }

    #[test]
    fn speedups_are_monotone_in_core_count() {
        let model = ScalingModel::default();
        for errors in [0usize, 1, 2] {
            for policy in RecoveryPolicy::COMPARED {
                let mut last = 0.0;
                for cores in ScalingModel::CORE_COUNTS {
                    let s = model.speedup(policy, cores, errors);
                    assert!(
                        s > last,
                        "{} with {errors} errors not monotone at {cores} cores: {s} <= {last}",
                        policy.name()
                    );
                    last = s;
                }
            }
        }
    }

    #[test]
    fn errors_always_cost_time() {
        let model = ScalingModel::default();
        for policy in RecoveryPolicy::COMPARED {
            for cores in ScalingModel::CORE_COUNTS {
                assert!(
                    model.speedup(policy, cores, 1) < model.ideal_speedup(cores),
                    "{}",
                    policy.name()
                );
                assert!(model.speedup(policy, cores, 2) < model.speedup(policy, cores, 1));
            }
        }
    }

    #[test]
    fn figure5_ordering_matches_the_paper_at_scale() {
        // Paper, 1024 cores, 1 error: AFEIR 10.01 > Lossy 8.17 > FEIR 7.50.
        let model = ScalingModel::default();
        let afeir = model.speedup(RecoveryPolicy::Afeir, 1024, 1);
        let lossy = model.speedup(RecoveryPolicy::LossyRestart, 1024, 1);
        let feir = model.speedup(RecoveryPolicy::Feir, 1024, 1);
        assert!(afeir > lossy && lossy > feir, "{afeir} / {lossy} / {feir}");
        // And the magnitudes are in the paper's ballpark.
        assert!((afeir - 10.0).abs() < 1.5, "AFEIR speedup {afeir}");
        assert!((feir - 7.5).abs() < 1.5, "FEIR speedup {feir}");
        assert!((lossy - 8.2).abs() < 1.5, "Lossy speedup {lossy}");
    }

    #[test]
    fn series_cover_all_policies_and_core_counts() {
        let model = ScalingModel::default();
        let series = model.figure5_series(2);
        assert_eq!(series.len(), RecoveryPolicy::COMPARED.len());
        for (_, points) in &series {
            assert_eq!(points.len(), ScalingModel::CORE_COUNTS.len());
            assert_eq!(points[0].cores, 64);
            assert_eq!(points.last().unwrap().cores, 1024);
        }
    }
}
