//! Contiguous block-row ownership of a matrix across simulated ranks.

use std::ops::Range;

/// Assignment of contiguous row blocks to `ranks` simulated ranks.
///
/// Rows are split as evenly as possible: the first `n % ranks` ranks own one
/// extra row. This mirrors the block-row distribution the paper uses for the
/// 27-point Poisson operator of the scaling study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPartition {
    n: usize,
    starts: Vec<usize>,
}

impl RankPartition {
    /// Partitions `n` rows over `ranks` ranks.
    ///
    /// # Panics
    /// Panics if `ranks == 0`.
    pub fn new(n: usize, ranks: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        let base = n / ranks;
        let extra = n % ranks;
        let mut starts = Vec::with_capacity(ranks + 1);
        let mut at = 0;
        for r in 0..ranks {
            starts.push(at);
            at += base + usize::from(r < extra);
        }
        starts.push(n);
        Self { n, starts }
    }

    /// Total number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the partition covers no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Row range owned by `rank`.
    pub fn range(&self, rank: usize) -> Range<usize> {
        self.starts[rank]..self.starts[rank + 1]
    }

    /// The rank owning `row`.
    pub fn owner_of(&self, row: usize) -> usize {
        debug_assert!(row < self.n);
        match self.starts.binary_search(&row) {
            Ok(r) => r.min(self.num_ranks() - 1),
            Err(insert) => insert - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_all_rows_contiguously() {
        for (n, ranks) in [(10, 3), (16, 4), (7, 7), (5, 2), (100, 8)] {
            let p = RankPartition::new(n, ranks);
            assert_eq!(p.num_ranks(), ranks);
            assert_eq!(p.len(), n);
            let mut at = 0;
            for r in 0..ranks {
                let range = p.range(r);
                assert_eq!(range.start, at);
                at = range.end;
                for row in range {
                    assert_eq!(p.owner_of(row), r, "row {row} of ({n}, {ranks})");
                }
            }
            assert_eq!(at, n);
        }
    }

    #[test]
    fn load_is_balanced_within_one_row() {
        let p = RankPartition::new(103, 8);
        let sizes: Vec<usize> = (0..8).map(|r| p.range(r).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_is_rejected() {
        let _ = RankPartition::new(4, 0);
    }
}
